//! ShadowDB wire messages and configurations.

use shadowdb_eventml::{cached_header, Msg, Value};
use shadowdb_loe::Loc;
use shadowdb_workloads::TxnRequest;

/// Client submission to a replica: body `<client, <cseq, txn>>`.
pub const SUBMIT_HEADER: &str = "sdb/submit";
/// Primary → backup transaction forwarding:
/// body `<config, <index, <client, <cseq, txn>>>>`.
pub const FORWARD_HEADER: &str = "sdb/forward";
/// Backup → primary execution acknowledgment: body `<config, <index, from>>`.
pub const ACK_HEADER: &str = "sdb/ack";
/// Replica → client answer: body `<cseq, <committed, results>>`.
pub const REPLY_HEADER: &str = "sdb/reply";
/// Heartbeat between replicas: body `<config, from>`.
pub const HEARTBEAT_HEADER: &str = "sdb/hb";
/// A replica's periodic self-check timer: body `<config>`.
pub const HB_TIMER_HEADER: &str = "sdb/hbtimer";
/// Election message during recovery: body `<config, <from, executed>>`.
pub const ELECT_HEADER: &str = "sdb/elect";
/// Missing-transaction catch-up: body `<config, <start_index, [txn entries]>>`.
pub const CATCHUP_HEADER: &str = "sdb/catchup";
/// Snapshot chunk during state transfer:
/// body `<config, <chunk_index, <total_chunks, bytes>>>`.
pub const SNAPSHOT_HEADER: &str = "sdb/snapshot";
/// Snapshot chunk carrying sharded-deployment protocol state alongside the
/// rows: body `<config, <chunk_index, <<total, executed>, <state, bytes>>>>`.
pub const SNAPSHOT2_HEADER: &str = "sdb/snapshot2";
/// Backup → primary recovery acknowledgment: body `<config, from>`.
pub const RECOVERY_ACK_HEADER: &str = "sdb/recack";

/// A replica-group configuration ("Each configuration is identified by a
/// sequence number. The initial configuration has sequence number 0.").
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ReplicaConfig {
    /// The configuration sequence number.
    pub seq: i64,
    /// Member replicas; the first is the primary under PBR.
    pub members: Vec<Loc>,
}

impl ReplicaConfig {
    /// The initial configuration (sequence number 0).
    pub fn initial(members: Vec<Loc>) -> ReplicaConfig {
        ReplicaConfig { seq: 0, members }
    }

    /// The primary of this configuration.
    pub fn primary(&self) -> Loc {
        self.members[0]
    }

    /// The backups of this configuration.
    pub fn backups(&self) -> &[Loc] {
        &self.members[1..]
    }

    /// Whether `loc` is a member.
    pub fn contains(&self, loc: Loc) -> bool {
        self.members.contains(&loc)
    }

    /// Wire encoding.
    pub fn to_value(&self) -> Value {
        Value::pair(
            Value::Int(self.seq),
            Value::list(self.members.iter().map(|m| Value::Loc(*m))),
        )
    }

    /// Wire decoding.
    pub fn from_value(v: &Value) -> Option<ReplicaConfig> {
        let (seq, members) = v.fst().zip(v.snd())?;
        let members: Option<Vec<Loc>> = members.as_list()?.iter().map(Value::as_loc).collect();
        Some(ReplicaConfig {
            seq: seq.as_int()?,
            members: members?,
        })
    }
}

/// A transaction tagged with its submitting client and client sequence
/// number (the duplicate-suppression key).
#[derive(Clone, Debug, PartialEq)]
pub struct TxnEnvelope {
    /// Submitting client.
    pub client: Loc,
    /// Client sequence number ("the sequence number of the last transaction
    /// submitted by each client" drives dedup).
    pub cseq: i64,
    /// The transaction.
    pub txn: TxnRequest,
}

impl TxnEnvelope {
    /// Wire encoding.
    pub fn to_value(&self) -> Value {
        Value::pair(
            Value::Loc(self.client),
            Value::pair(Value::Int(self.cseq), self.txn.to_value()),
        )
    }

    /// Wire decoding.
    pub fn from_value(v: &Value) -> Option<TxnEnvelope> {
        let (client, rest) = v.fst().zip(v.snd())?;
        let (cseq, txn) = rest.fst().zip(rest.snd())?;
        Some(TxnEnvelope {
            client: client.as_loc()?,
            cseq: cseq.as_int()?,
            txn: TxnRequest::from_value(txn)?,
        })
    }
}

/// Builds a client submission message.
pub fn submit_msg(env: &TxnEnvelope) -> Msg {
    Msg::new(cached_header!(SUBMIT_HEADER), env.to_value())
}

/// Builds a reply message; `from` tells the client who answered, so it can
/// redirect future submissions to the current primary.
pub fn reply_msg(
    from: Loc,
    cseq: i64,
    committed: bool,
    results: &[shadowdb_sqldb::SqlValue],
) -> Msg {
    Msg::new(
        cached_header!(REPLY_HEADER),
        Value::pair(
            Value::Loc(from),
            Value::pair(
                Value::Int(cseq),
                Value::pair(
                    Value::Bool(committed),
                    Value::list(results.iter().map(sql_to_value)),
                ),
            ),
        ),
    )
}

/// A parsed reply.
#[derive(Clone, Debug, PartialEq)]
pub struct Reply {
    /// The replica that answered.
    pub from: Loc,
    /// Client sequence number being answered.
    pub cseq: i64,
    /// Whether the transaction committed.
    pub committed: bool,
    /// Procedure results.
    pub results: Vec<shadowdb_sqldb::SqlValue>,
}

/// Parses a reply message.
pub fn parse_reply(msg: &Msg) -> Option<Reply> {
    if msg.header != cached_header!(REPLY_HEADER) {
        return None;
    }
    let (from, rest) = msg.body.fst().zip(msg.body.snd())?;
    let (cseq, rest) = rest.fst().zip(rest.snd())?;
    let (committed, results) = rest.fst().zip(rest.snd())?;
    let results: Option<Vec<shadowdb_sqldb::SqlValue>> =
        results.as_list()?.iter().map(value_to_sql).collect();
    Some(Reply {
        from: from.as_loc()?,
        cseq: cseq.as_int()?,
        committed: committed.as_bool()?,
        results: results?,
    })
}

/// Encodes a SQL value into the transport universe.
pub fn sql_to_value(v: &shadowdb_sqldb::SqlValue) -> Value {
    use shadowdb_sqldb::SqlValue;
    match v {
        SqlValue::Null => Value::Unit,
        SqlValue::Int(i) => Value::Int(*i),
        // Reals travel as their bit pattern to stay exact.
        SqlValue::Real(r) => Value::pair(Value::str("#real"), Value::Int(r.to_bits() as i64)),
        SqlValue::Text(s) => Value::str(s),
    }
}

/// Decodes a SQL value from the transport universe.
pub fn value_to_sql(v: &Value) -> Option<shadowdb_sqldb::SqlValue> {
    use shadowdb_sqldb::SqlValue;
    Some(match v {
        Value::Unit => SqlValue::Null,
        Value::Int(i) => SqlValue::Int(*i),
        Value::Str(s) => SqlValue::Text(s.to_string()),
        Value::Pair(p) if p.0.as_str() == Some("#real") => {
            SqlValue::Real(f64::from_bits(p.1.as_int()? as u64))
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadowdb_sqldb::SqlValue;

    #[test]
    fn config_roundtrip_and_roles() {
        let c = ReplicaConfig::initial(vec![Loc::new(5), Loc::new(6), Loc::new(7)]);
        assert_eq!(c.primary(), Loc::new(5));
        assert_eq!(c.backups(), &[Loc::new(6), Loc::new(7)]);
        assert!(c.contains(Loc::new(6)));
        assert_eq!(ReplicaConfig::from_value(&c.to_value()), Some(c));
    }

    #[test]
    fn envelope_roundtrip() {
        let env = TxnEnvelope {
            client: Loc::new(1),
            cseq: 42,
            txn: TxnRequest::BankDeposit {
                account: 7,
                amount: 5,
            },
        };
        assert_eq!(TxnEnvelope::from_value(&env.to_value()), Some(env));
    }

    #[test]
    fn reply_roundtrip_including_reals() {
        let results = vec![
            SqlValue::Int(3),
            SqlValue::Real(2.75),
            SqlValue::Null,
            SqlValue::from("x"),
        ];
        let m = reply_msg(Loc::new(4), 9, true, &results);
        assert_eq!(
            parse_reply(&m),
            Some(Reply {
                from: Loc::new(4),
                cseq: 9,
                committed: true,
                results
            })
        );
    }
}
