//! EventML-style constructive specifications, compiled to runnable programs.
//!
//! The paper's methodology (Fig. 2) revolves around EventML, an ML-like
//! event-based language: one source artifact — the *constructive
//! specification* — is compiled both to a **Logic of Events** specification
//! for formal reasoning and to a **General Process Model** program that
//! actually runs. This crate embeds that architecture in Rust:
//!
//! * [`ast`] — the combinator AST ([`ClassExpr`], [`Spec`]): base classes,
//!   `State`, simultaneous composition `o`, parallel `||`, `Once`;
//! * [`denote`] — the LoE reading: what a class produces at each event of a
//!   trace, defined without any process state (arrow *a* of Fig. 2);
//! * [`compile`] — the GPM program: an interpreted process evaluating the
//!   combinator tree per message (arrow *b*);
//! * [`optimize`] — the program optimizer: fusion + common-subexpression
//!   elimination, the paper's ≥2× transformation (arrow *e*);
//! * [`bisim`] — executable versions of the two proof obligations: GPM ⊑
//!   LoE (arrow *c*) and optimized ∼ original;
//! * [`process`] — the [`Process`] trait every runnable node implements;
//! * [`value`] — the untyped value universe and message format;
//! * [`codec`] — the binary wire format and length-prefixed framing every
//!   byte-crossing transport shares (TCP links, wire-framed livenet,
//!   state-transfer batches);
//! * [`clk`] — the paper's running example, Lamport clocks (Fig. 3).
//!
//! # Quick start
//!
//! ```
//! use shadowdb_eventml::{clk, optimize, InterpretedProcess, Value};
//! use shadowdb_eventml::bisim::check_bisimilar;
//! use shadowdb_loe::Loc;
//!
//! let spec = clk::clk_spec(clk::ring_handle(3));
//! let mut interpreted = InterpretedProcess::compile_spec(&spec);
//! let mut optimized = optimize::optimize_spec(&spec);
//! let msgs = vec![clk::clk_msg(Value::str("hello"), 0)];
//! check_bisimilar(&mut interpreted, &mut optimized, Loc::new(0), &msgs)
//!     .expect("optimizer must preserve behaviour");
//! ```

pub mod ast;
pub mod bisim;
pub mod clk;
pub mod codec;
pub mod compile;
pub mod denote;
pub mod fxhash;
pub mod optimize;
pub mod patterns;
pub mod process;
pub mod symbol;
pub mod value;

pub use ast::{ClassExpr, HandlerFn, Spec, UpdateFn};
pub use codec::{DecodeError, FrameEncoder, FrameReader};
pub use compile::InterpretedProcess;
pub use fxhash::{fxhash, FxBuildHasher, FxHashMap, FxHasher};
pub use optimize::FusedProcess;
pub use process::{fingerprint, Ctx, FnProcess, Halt, Process};
pub use symbol::Symbol;
pub use value::{as_send_value, send_value, Header, Msg, SendInstr, SharedStr, Value};
