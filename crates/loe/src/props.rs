//! Reusable correctness properties over traces.
//!
//! These are the checkable counterparts of the properties the paper states
//! in Nuprl: the `progress` (`strict_inc`) property of Sec. II-C2 and
//! Lamport's Clock Condition (Fig. 6). A violation is reported with the
//! offending pair of events so tests can print a counterexample.

use crate::classes::EventClass;
use crate::event::EventOrder;
use crate::ids::EventId;

/// A violation of a trace property: the pair of events that witnesses it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The earlier event of the offending pair.
    pub first: EventId,
    /// The later event of the offending pair.
    pub second: EventId,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "property violated by events {} and {}",
            self.first, self.second
        )
    }
}

/// Checks the EventML `progress … strict_inc` property: at every location,
/// successive outputs of `class` strictly increase.
///
/// Returns the first violating pair, or `None` if the property holds.
pub fn check_strictly_increasing<M, C>(eo: &EventOrder<M>, class: &C) -> Option<Violation>
where
    C: EventClass<M>,
    C::Out: Ord,
{
    let locs: std::collections::BTreeSet<_> = eo.iter().map(|e| e.loc()).collect();
    for loc in locs {
        let mut last: Option<(EventId, C::Out)> = None;
        for ev in eo.at(loc) {
            for v in class.observe(eo, ev.id()) {
                if let Some((pid, pv)) = &last {
                    if *pv >= v {
                        return Some(Violation {
                            first: *pid,
                            second: ev.id(),
                        });
                    }
                }
                last = Some((ev.id(), v));
            }
        }
    }
    None
}

/// Checks Lamport's Clock Condition: for every pair of events where `lc`
/// assigns a clock, `e1 → e2` implies `lc(e1) < lc(e2)`.
///
/// `lc` returns `None` for events without a clock (e.g. events the protocol
/// does not recognize). Quadratic in trace length; intended for tests.
pub fn check_clock_condition<M, T, F>(eo: &EventOrder<M>, lc: F) -> Option<Violation>
where
    T: Ord,
    F: Fn(&EventOrder<M>, EventId) -> Option<T>,
{
    let clocked: Vec<(EventId, T)> = (0..eo.len() as u32)
        .map(EventId::new)
        .filter_map(|e| lc(eo, e).map(|v| (e, v)))
        .collect();
    for (i, (e1, c1)) in clocked.iter().enumerate() {
        for (e2, c2) in &clocked[i + 1..] {
            if eo.happens_before(*e1, *e2) && c1 >= c2 {
                return Some(Violation {
                    first: *e1,
                    second: *e2,
                });
            }
            if eo.happens_before(*e2, *e1) && c2 >= c1 {
                return Some(Violation {
                    first: *e2,
                    second: *e1,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{Base, StateClass};
    use crate::ids::{Loc, VTime};

    type ClkMsg = (&'static str, i64);

    fn l(i: u32) -> Loc {
        Loc::new(i)
    }
    fn t(us: u64) -> VTime {
        VTime::from_micros(us)
    }

    // `impl Trait` is not allowed in type aliases on stable, so no alias.
    #[allow(clippy::type_complexity)]
    fn clock(
    ) -> StateClass<Base<impl Fn(&ClkMsg) -> Option<ClkMsg>>, i64, impl Fn(Loc, &ClkMsg, &i64) -> i64>
    {
        StateClass::new(
            0i64,
            |_l, (_v, ts): &ClkMsg, clk: &i64| (*ts).max(*clk) + 1,
            Base::new(|m: &ClkMsg| Some(*m)),
        )
    }

    /// A causally consistent exchange: clocks satisfy both properties.
    #[test]
    fn lamport_clocks_satisfy_both_properties() {
        let mut eo: EventOrder<ClkMsg> = EventOrder::new();
        // loc0 receives external input (ts 0), then sends to loc1 with its
        // clock; loc1's receive event carries that timestamp, and so on.
        let e0 = eo.record(l(0), t(1), ("init", 0), None, None);
        let e1 = eo.record(l(1), t(2), ("fwd", 1), Some(e0), Some(l(0)));
        let e2 = eo.record(l(0), t(3), ("back", 2), Some(e1), Some(l(1)));
        let _ = e2;
        let c = clock();
        assert_eq!(check_strictly_increasing(&eo, &c), None);
        let cond = check_clock_condition(&eo, |eo, e| c.observe(eo, e).into_iter().next());
        assert_eq!(cond, None);
    }

    /// A "broken clock" that ignores message timestamps violates the Clock
    /// Condition — the checker must find the witness pair.
    #[test]
    fn broken_clock_detected() {
        let mut eo: EventOrder<ClkMsg> = EventOrder::new();
        let e0 = eo.record(l(0), t(1), ("a", 0), None, None);
        let e1 = eo.record(l(0), t(2), ("b", 0), None, None);
        let e2 = eo.record(l(1), t(3), ("c", 0), Some(e1), Some(l(0)));
        // Broken: clock = number of local events, ignoring timestamps.
        let broken = StateClass::new(
            0i64,
            |_l, _m: &ClkMsg, clk: &i64| clk + 1,
            Base::new(|m: &ClkMsg| Some(*m)),
        );
        // loc1's first event yields clock 1 although e0 → e1 → e2 and e0
        // already has clock 1; the checker reports the first such pair.
        let violation =
            check_clock_condition(&eo, |eo, e| broken.observe(eo, e).into_iter().next());
        assert_eq!(
            violation,
            Some(Violation {
                first: e0,
                second: e2
            })
        );
        let _ = e1;
    }

    #[test]
    fn non_monotone_state_detected() {
        let mut eo: EventOrder<ClkMsg> = EventOrder::new();
        let e0 = eo.record(l(0), t(1), ("a", 10), None, None);
        let e1 = eo.record(l(0), t(2), ("b", 0), None, None);
        // A "clock" that just echoes the message timestamp can go backwards.
        let echo = StateClass::new(
            0i64,
            |_l, (_v, ts): &ClkMsg, _clk: &i64| *ts,
            Base::new(|m: &ClkMsg| Some(*m)),
        );
        assert_eq!(
            check_strictly_increasing(&eo, &echo),
            Some(Violation {
                first: e0,
                second: e1
            })
        );
    }
}
