//! Engine personalities.
//!
//! ShadowDB "allows to easily plug in any JDBC-enabled database by
//! specifying the database driver and the connection URL" and deploys a
//! *different* engine per replica for diversity (H2, HSQLDB, Apache Derby),
//! with MySQL variants as baselines. An [`EngineProfile`] captures how
//! those engines differ for the behaviours the paper measures:
//!
//! * **lock granularity** — table-level (H2, HSQLDB, MySQL-memory) vs
//!   row-level (InnoDB); under contention, table locking causes the
//!   timeout-abort collapse of Fig. 9(a);
//! * **lock timeout** — how long a blocked statement waits before aborting;
//! * **cost coefficients** — virtual CPU microseconds per operation, used
//!   by the simulator's cost models (calibrated against Fig. 9/10; the
//!   paper measures H2 as "the fastest database among H2, Derby, and
//!   HSQLDB", with state transfer bottlenecked on row insertion).

use crate::lock::LockGranularity;
use std::time::Duration;

/// Virtual CPU cost coefficients for an engine (microseconds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostCoefficients {
    /// Fixed cost per statement.
    pub per_statement_us: u64,
    /// Cost per row read through an index.
    pub point_read_us: u64,
    /// Cost per row written (insert, update, delete).
    pub write_us: u64,
    /// Cost per row visited by a scan.
    pub scan_row_us: u64,
    /// Cost per row inserted during bulk state transfer (the paper finds
    /// "row insertion speed constitutes the bottleneck of state transfer").
    pub bulk_insert_us: u64,
    /// Additional bulk-insert cost per row byte, in nanoseconds (large rows
    /// insert slower).
    pub bulk_insert_byte_ns: u64,
    /// Serialization cost per column when encoding a row for transfer
    /// ("serialization overhead is proportional to the number of table
    /// columns").
    pub serialize_col_us: u64,
}

/// An engine personality: name, locking behaviour, and cost model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineProfile {
    /// Engine name (diagnostics and experiment labels).
    pub name: &'static str,
    /// Lock granularity.
    pub granularity: LockGranularity,
    /// How long a blocked statement waits before the transaction aborts.
    pub lock_timeout: Duration,
    /// Virtual cost coefficients.
    pub costs: CostCoefficients,
}

impl EngineProfile {
    /// H2-like: in-memory, table locks, fastest of the embedded trio.
    pub fn h2() -> EngineProfile {
        EngineProfile {
            name: "h2",
            granularity: LockGranularity::Table,
            lock_timeout: Duration::from_millis(1_000),
            costs: CostCoefficients {
                per_statement_us: 25,
                point_read_us: 3,
                write_us: 8,
                scan_row_us: 1,
                bulk_insert_us: 28,
                bulk_insert_byte_ns: 90,
                serialize_col_us: 5,
            },
        }
    }

    /// HSQLDB-like: table locks, somewhat slower than H2.
    pub fn hsqldb() -> EngineProfile {
        EngineProfile {
            name: "hsqldb",
            granularity: LockGranularity::Table,
            lock_timeout: Duration::from_millis(1_000),
            costs: CostCoefficients {
                per_statement_us: 32,
                point_read_us: 4,
                write_us: 10,
                scan_row_us: 1,
                bulk_insert_us: 52,
                bulk_insert_byte_ns: 90,
                serialize_col_us: 10,
            },
        }
    }

    /// Apache-Derby-like: the slowest of the embedded trio.
    pub fn derby() -> EngineProfile {
        EngineProfile {
            name: "derby",
            granularity: LockGranularity::Row,
            lock_timeout: Duration::from_millis(1_000),
            costs: CostCoefficients {
                per_statement_us: 45,
                point_read_us: 6,
                write_us: 14,
                scan_row_us: 2,
                bulk_insert_us: 60,
                bulk_insert_byte_ns: 90,
                serialize_col_us: 11,
            },
        }
    }

    /// MySQL with the MEMORY storage engine: table locks only; "suffers
    /// from a similar issue" to H2 under contention.
    pub fn mysql_memory() -> EngineProfile {
        EngineProfile {
            name: "mysql-memory",
            granularity: LockGranularity::Table,
            lock_timeout: Duration::from_millis(500),
            costs: CostCoefficients {
                per_statement_us: 30,
                point_read_us: 3,
                write_us: 9,
                scan_row_us: 1,
                bulk_insert_us: 50,
                bulk_insert_byte_ns: 90,
                serialize_col_us: 9,
            },
        }
    }

    /// MySQL with InnoDB (synchronous writes disabled): row-level locks
    /// lower the abort rate, but peak throughput is below the memory
    /// engine's, and index operations ("less than", "order by") are better
    /// optimized than the memory engine's.
    pub fn innodb() -> EngineProfile {
        EngineProfile {
            name: "mysql-innodb",
            granularity: LockGranularity::Row,
            lock_timeout: Duration::from_millis(5_000),
            costs: CostCoefficients {
                per_statement_us: 40,
                point_read_us: 5,
                write_us: 14,
                scan_row_us: 1,
                bulk_insert_us: 55,
                bulk_insert_byte_ns: 90,
                serialize_col_us: 10,
            },
        }
    }

    /// The diverse trio the paper deploys across ShadowDB replicas.
    pub fn diverse_trio() -> [EngineProfile; 3] {
        [
            EngineProfile::h2(),
            EngineProfile::hsqldb(),
            EngineProfile::derby(),
        ]
    }

    /// Looks a profile up by its URL-ish name (the connector's
    /// "driver + connection URL" plug-in point).
    pub fn by_name(name: &str) -> Option<EngineProfile> {
        match name {
            "h2" => Some(EngineProfile::h2()),
            "hsqldb" => Some(EngineProfile::hsqldb()),
            "derby" => Some(EngineProfile::derby()),
            "mysql-memory" => Some(EngineProfile::mysql_memory()),
            "mysql-innodb" => Some(EngineProfile::innodb()),
            _ => None,
        }
    }
}

impl Default for EngineProfile {
    fn default() -> Self {
        EngineProfile::h2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h2_is_fastest_embedded_engine() {
        // "the fastest database among H2, Derby, and HSQLDB" (Sec. IV-B).
        let h2 = EngineProfile::h2().costs;
        let hsql = EngineProfile::hsqldb().costs;
        let derby = EngineProfile::derby().costs;
        assert!(h2.per_statement_us < hsql.per_statement_us);
        assert!(hsql.per_statement_us < derby.per_statement_us);
    }

    #[test]
    fn granularities_match_the_paper() {
        assert_eq!(EngineProfile::h2().granularity, LockGranularity::Table);
        assert_eq!(
            EngineProfile::mysql_memory().granularity,
            LockGranularity::Table
        );
        assert_eq!(EngineProfile::innodb().granularity, LockGranularity::Row);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(EngineProfile::by_name("h2"), Some(EngineProfile::h2()));
        assert_eq!(EngineProfile::by_name("oracle"), None);
    }
}
