//! Ablation: horizontal sharding — replica groups × clients × cross-shard
//! fraction.
//!
//! Sweeps a bank workload over [`ShardedDeployment`] (PBR groups): each
//! configuration partitions the same keyspace across `shards` independent
//! replica groups and offers a closed-loop load in which `cross_pct`
//! percent of transactions are transfers between accounts on *different*
//! shards (routed through deterministic 2PC-over-TOB) and the rest are
//! single-shard deposits (routed straight to the owning group). Virtual
//! time makes every number deterministic.
//!
//! Emits a human-readable table plus one JSON line per configuration
//! (`{"shards":s,"clients":c,"cross_pct":p,"throughput_per_sec":t,
//! "latency_ms":l,"cross_committed":n}`) for the record in
//! `BENCH_hotpaths.json` (group `sharding`).

use parking_lot::Mutex;
use shadowdb::deploy::{ShardedDeployment, ShardedOptions};
use shadowdb::pbr::PbrOptions;
use shadowdb::shard::check_two_pc_atomicity;
use shadowdb_bench::{output, scaled};
use shadowdb_loe::VTime;
use shadowdb_simnet::{NetworkConfig, SimBuilder};
use shadowdb_workloads::{bank, TxnRequest};
use std::sync::Arc;
use std::time::Duration;

const ROWS: usize = 256;

/// Deterministic account mixer. A *linear* account formula would walk
/// every client through the shards with the same stride, so clients that
/// queue together at one primary move to the next group together — a
/// stable rotating convoy that serializes the groups and hides the
/// parallelism being measured. Hashing `(k, client)` decorrelates the
/// walks.
fn mix(k: usize, client: usize) -> usize {
    let mut x = (k as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((client as u64) << 32 | 0xDEAD_BEEF);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x as usize
}

/// The per-client transaction list: `cross_pct`% cross-shard transfers
/// (the destination account lives on the next shard over, so at
/// `shards == 1` the same mix degenerates to single-group transfers and
/// never runs 2PC), the rest single-shard deposits. Transfers are spread
/// evenly through the list (Bresenham-style, so the fraction holds at any
/// `n`), and the whole list is deterministic in `(client, k)` so every
/// shard count sees the *same* offered load.
fn txns(client: usize, n: usize, cross_pct: usize) -> Vec<TxnRequest> {
    (0..n)
        .map(|k| {
            let from = (mix(k, client) % ROWS) as i64;
            if (k + 1) * cross_pct / 100 > k * cross_pct / 100 {
                // `from + 1` is on a different shard whenever `shards > 1`
                // (ROWS is a multiple of every swept shard count).
                TxnRequest::BankTransfer {
                    from,
                    to: (from + 1) % ROWS as i64,
                    amount: 1 + (k % 7) as i64,
                }
            } else {
                TxnRequest::BankDeposit {
                    account: from,
                    amount: 1 + (k % 50) as i64,
                }
            }
        })
        .collect()
}

/// Runs one configuration to quiescence; returns
/// `(throughput/s, mean latency ms, cross-shard commits observed)`.
fn run(shards: usize, n_clients: usize, cross_pct: usize, txns_each: usize) -> (f64, f64, usize) {
    // LAN latency, unlike the window ablation's 2 ms hops: sharding buys
    // *CPU* parallelism (one primary and one broadcast service per
    // group), so the network must be fast enough for the engine cost
    // model — not the round trip — to be the binding resource. On a WAN
    // every closed-loop client is latency-bound and no shard count can
    // help.
    let net = NetworkConfig::lan();
    let seed = (shards * 1_000 + n_clients * 10 + cross_pct) as u64;
    let mut sim = SimBuilder::new(seed).network(net).build();
    let probe = Arc::new(Mutex::new(Vec::new()));
    let mut options = ShardedOptions::new(
        shards,
        n_clients,
        move |c| txns(c, txns_each, cross_pct),
        move |shard, db| bank::load_shard(db, ROWS, shards, shard).expect("loads"),
    );
    options.client_timeout = Duration::from_secs(60);
    options.probe = Some(probe.clone());
    let d = ShardedDeployment::build_pbr(&mut sim, &options, PbrOptions::default());
    sim.run_until_quiescent(VTime::from_secs(36_000));
    assert_eq!(
        d.committed(),
        n_clients * txns_each,
        "shards {shards} clients {n_clients} cross {cross_pct}%: every txn must commit"
    );
    let events = probe.lock();
    check_two_pc_atomicity(&events).expect("cross-shard commits are atomic");
    // Distinct transactions that committed through 2PC (the probe logs
    // one `Decided` per replica per participant shard).
    let cross = events
        .iter()
        .filter_map(|e| match e {
            shadowdb::shard::TwoPcEvent::Decided {
                txnid,
                commit: true,
                ..
            } => Some(*txnid),
            _ => None,
        })
        .collect::<std::collections::BTreeSet<_>>()
        .len();

    let mut all: Vec<(VTime, VTime)> = Vec::new();
    for s in &d.stats {
        let s = s.lock();
        let warm = s.completed.len() / 10;
        all.extend(s.completed.iter().skip(warm).map(|(a, b, _)| (*a, *b)));
    }
    let first = all.iter().map(|(a, _)| *a).min().expect("commits");
    let last = all.iter().map(|(_, b)| *b).max().expect("commits");
    let span = last.saturating_since(first).as_secs_f64().max(1e-9);
    let lat = all
        .iter()
        .map(|(a, b)| b.saturating_since(*a).as_secs_f64() * 1e3)
        .sum::<f64>()
        / all.len() as f64;
    (all.len() as f64 / span, lat, cross)
}

fn main() {
    output::banner(
        "Ablation — replica groups × clients × cross-shard fraction",
        "horizontal sharding with deterministic 2PC-over-TOB",
    );
    let txns_each = scaled(100, 5);
    output::kv("accounts", ROWS);
    output::kv("transactions per client", txns_each);
    let mut json = Vec::new();
    for &clients in &[8usize, 32] {
        for &cross in &[0usize, 10, 30] {
            let rows: Vec<(String, String)> = [1usize, 2, 4]
                .iter()
                .map(|&s| {
                    let (tput, lat, ncross) = run(s, clients, cross, txns_each);
                    json.push(format!(
                        "{{\"shards\":{s},\"clients\":{clients},\"cross_pct\":{cross},\
                         \"throughput_per_sec\":{tput:.1},\"latency_ms\":{lat:.2},\
                         \"cross_committed\":{ncross}}}"
                    ));
                    (
                        format!("shards {s}"),
                        format!("{tput:>8.1}/s   {lat:>8.2} ms   {ncross:>4} cross"),
                    )
                })
                .collect();
            output::pairs(
                &format!("{clients} clients, {cross}% cross-shard"),
                "shards",
                "committed/s, latency, 2PC commits",
                &rows,
            );
        }
    }
    println!();
    for line in &json {
        println!("{line}");
    }
    println!();
    println!("single-shard transactions scale with the group count: each group");
    println!("runs its own broadcast service and primary, so at 0% cross-shard");
    println!("four groups carry roughly four single-group loads in parallel.");
    println!("cross-shard transfers pay the extra 2PC hops (prepare, votes,");
    println!("decision — all through the participants' own TOB services), so");
    println!("as the cross fraction grows the speedup flattens: the ablation");
    println!("quantifies how far the fraction can rise before coordination");
    println!("overhead eats the parallelism.");
}
