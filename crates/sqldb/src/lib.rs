//! An embedded SQL-subset database.
//!
//! ShadowDB layers replication over *unmodified* embedded SQL databases
//! reached through JDBC — H2, HSQLDB, and Apache Derby in the paper, plus
//! MySQL as a baseline. This crate is the from-scratch substitute for that
//! entire layer: a single storage/execution engine with pluggable
//! **personalities** that differ exactly where the paper's engines differ —
//! lock granularity (H2 and MySQL's memory engine lock whole tables;
//! InnoDB locks rows), lock-timeout behaviour (timeouts abort, producing
//! the contention collapse of Fig. 9a), and per-operation cost
//! coefficients used by the simulator.
//!
//! Features: `CREATE TABLE` / `CREATE INDEX`, `INSERT`, `UPDATE`, `DELETE`,
//! `SELECT` with `WHERE`, `ORDER BY`, `LIMIT` and aggregates, composite
//! primary keys with B-tree indexes, secondary indexes, strict two-phase
//! locking with timeout-abort, rollback via undo logging, and full-database
//! snapshots streamed as ~50 KB row batches (the paper's state-transfer
//! mechanism, Fig. 10b).
//!
//! # Example
//!
//! ```
//! use shadowdb_sqldb::{Database, EngineProfile, SqlValue};
//!
//! let db = Database::new(EngineProfile::h2());
//! let mut txn = db.begin()?;
//! txn.execute("CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, balance INT)")?;
//! txn.execute("INSERT INTO accounts VALUES (1, 'alice', 100)")?;
//! txn.execute("UPDATE accounts SET balance = balance + 20 WHERE id = 1")?;
//! let rows = txn.query("SELECT balance FROM accounts WHERE id = 1")?;
//! assert_eq!(rows.rows[0][0], SqlValue::Int(120));
//! txn.commit()?;
//! # Ok::<(), shadowdb_sqldb::SqlError>(())
//! ```

pub mod connector;
pub mod engine;
pub mod expr;
pub mod lock;
pub mod profile;
pub mod schema;
pub mod snapshot;
pub mod sql;
pub mod table;
pub mod value;

pub use connector::{ConnUrl, Driver};
pub use engine::{Database, ResultSet, Transaction};
pub use lock::{LockGranularity, ShardScope};
pub use profile::EngineProfile;
pub use schema::{Column, DataType, TableSchema};
pub use snapshot::{RowBatch, Snapshot};
pub use value::SqlValue;

use std::fmt;

/// Errors produced by the database.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SqlError {
    /// Syntax error while parsing a statement.
    Parse(String),
    /// Reference to an unknown table, column, or index.
    Unknown(String),
    /// Schema violation: duplicate primary key, arity mismatch, type error.
    Constraint(String),
    /// A lock could not be acquired within the engine's timeout; the
    /// transaction has been rolled back (H2's "timeout trying to lock
    /// table" — the failure mode behind the paper's contention plots).
    LockTimeout {
        /// The contended table.
        table: String,
    },
    /// The transaction was already finished (committed or rolled back).
    TransactionClosed,
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::Unknown(m) => write!(f, "unknown object: {m}"),
            SqlError::Constraint(m) => write!(f, "constraint violation: {m}"),
            SqlError::LockTimeout { table } => {
                write!(f, "timeout trying to lock table {table}")
            }
            SqlError::TransactionClosed => write!(f, "transaction already finished"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Shorthand result type.
pub type Result<T> = std::result::Result<T, SqlError>;
