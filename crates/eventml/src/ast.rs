//! The combinator AST of an EventML constructive specification.
//!
//! An EventML program is built from *base classes* (message recognizers) and
//! a small algebra of combinators. A [`ClassExpr`] is that program as data:
//! the unit of compilation (to a GPM process), of optimization, of
//! denotational interpretation (LoE semantics), and of the size statistics
//! reported in Table I.
//!
//! Leaf computations (state-update and handler functions — the `let`-bound
//! ML functions of an EventML source file) are host-language closures tagged
//! with a name and a declared size. Two leaves with the same name are
//! considered the same function; this drives common-subexpression
//! elimination, so names must be unique per function within a specification.

use crate::value::{Header, Value};
use shadowdb_loe::Loc;
use std::fmt;
use std::sync::Arc;

/// Shared implementation of an update-function body.
type UpdateImpl = Arc<dyn Fn(Loc, &Value, &Value) -> Value + Send + Sync>;

/// Shared implementation of a handler-function body.
type HandlerImpl = Arc<dyn Fn(Loc, &[Value]) -> Vec<Value> + Send + Sync>;

/// A named state-update function: `(slf, input, state) -> state`.
#[derive(Clone)]
pub struct UpdateFn {
    name: &'static str,
    nodes: usize,
    f: UpdateImpl,
}

impl UpdateFn {
    /// Wraps an update function. `nodes` approximates the AST size of the
    /// function body (used only for Table I statistics).
    pub fn new(
        name: &'static str,
        nodes: usize,
        f: impl Fn(Loc, &Value, &Value) -> Value + Send + Sync + 'static,
    ) -> Self {
        UpdateFn {
            name,
            nodes,
            f: Arc::new(f),
        }
    }

    /// The function's name (its identity for optimization purposes).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Declared AST-node weight of the function body.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Applies the function.
    pub fn apply(&self, slf: Loc, input: &Value, state: &Value) -> Value {
        (self.f)(slf, input, state)
    }
}

impl fmt::Debug for UpdateFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// A named handler function over simultaneous inputs:
/// `(slf, args) -> bag of outputs`.
///
/// The bag result subsumes filtering (empty bag) and multi-output handlers.
#[derive(Clone)]
pub struct HandlerFn {
    name: &'static str,
    nodes: usize,
    f: HandlerImpl,
}

impl HandlerFn {
    /// Wraps a handler function; see [`UpdateFn::new`] for `nodes`.
    pub fn new(
        name: &'static str,
        nodes: usize,
        f: impl Fn(Loc, &[Value]) -> Vec<Value> + Send + Sync + 'static,
    ) -> Self {
        HandlerFn {
            name,
            nodes,
            f: Arc::new(f),
        }
    }

    /// The function's name (its identity for optimization purposes).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Declared AST-node weight of the function body.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Applies the function.
    pub fn apply(&self, slf: Loc, args: &[Value]) -> Vec<Value> {
        (self.f)(slf, args)
    }
}

impl fmt::Debug for HandlerFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// An event-class expression: the AST of an EventML specification body.
#[derive(Clone, Debug)]
pub enum ClassExpr {
    /// `hdr'base` — recognizes messages with the given header and outputs
    /// their body.
    Base(Header),
    /// A constant class: outputs the value at every event.
    Constant(Value),
    /// `State (init, upd, input)` — a state machine over the inputs of an
    /// inner class; outputs the updated state at recognized events.
    State {
        /// Initial state.
        init: Value,
        /// The update function.
        update: UpdateFn,
        /// The class producing this machine's inputs.
        input: Box<ClassExpr>,
    },
    /// `f o (a₁, …, aₖ)` — simultaneous composition: at events where every
    /// argument class produces, outputs `f(slf, v₁…vₖ)` for each combination.
    Compose {
        /// The handler applied to simultaneous outputs.
        handler: HandlerFn,
        /// Argument classes.
        args: Vec<ClassExpr>,
    },
    /// `a₁ || … || aₖ` — parallel composition: the bag union of outputs.
    Parallel(Vec<ClassExpr>),
    /// `Once a` — only the first output (per location) of the inner class.
    Once(Box<ClassExpr>),
}

impl ClassExpr {
    /// A base class for the given header.
    pub fn base(header: impl Into<Header>) -> ClassExpr {
        ClassExpr::Base(header.into())
    }

    /// A state machine over this class's outputs.
    pub fn state(self, init: Value, update: UpdateFn) -> ClassExpr {
        ClassExpr::State {
            init,
            update,
            input: Box::new(self),
        }
    }

    /// Simultaneous composition of `args` through `handler`.
    pub fn compose(handler: HandlerFn, args: Vec<ClassExpr>) -> ClassExpr {
        ClassExpr::Compose { handler, args }
    }

    /// Parallel composition.
    pub fn parallel(args: Vec<ClassExpr>) -> ClassExpr {
        ClassExpr::Parallel(args)
    }

    /// At most one (first) output per location.
    pub fn once(self) -> ClassExpr {
        ClassExpr::Once(Box::new(self))
    }

    /// Counts the AST nodes of this expression, including the declared
    /// weights of leaf functions and the size of constant values.
    ///
    /// This is the "EventML spec" column of our Table I reproduction.
    pub fn ast_nodes(&self) -> usize {
        match self {
            ClassExpr::Base(_) => 1,
            ClassExpr::Constant(v) => 1 + value_nodes(v),
            ClassExpr::State {
                init,
                update,
                input,
            } => 1 + value_nodes(init) + update.nodes() + input.ast_nodes(),
            ClassExpr::Compose { handler, args } => {
                1 + handler.nodes() + args.iter().map(ClassExpr::ast_nodes).sum::<usize>()
            }
            ClassExpr::Parallel(args) => 1 + args.iter().map(ClassExpr::ast_nodes).sum::<usize>(),
            ClassExpr::Once(inner) => 1 + inner.ast_nodes(),
        }
    }

    /// A structural key identifying this expression up to leaf-function
    /// names: equal keys mean the same class. Drives common-subexpression
    /// elimination in the optimizer.
    pub fn structural_key(&self) -> String {
        match self {
            ClassExpr::Base(h) => format!("base({})", h.name()),
            ClassExpr::Constant(v) => format!("const({v:?})"),
            ClassExpr::State {
                init,
                update,
                input,
            } => {
                format!(
                    "state({:?},{},{})",
                    init,
                    update.name(),
                    input.structural_key()
                )
            }
            ClassExpr::Compose { handler, args } => {
                let args: Vec<_> = args.iter().map(ClassExpr::structural_key).collect();
                format!("comp({},[{}])", handler.name(), args.join(","))
            }
            ClassExpr::Parallel(args) => {
                let args: Vec<_> = args.iter().map(ClassExpr::structural_key).collect();
                format!("par([{}])", args.join(","))
            }
            ClassExpr::Once(inner) => format!("once({})", inner.structural_key()),
        }
    }
}

fn value_nodes(v: &Value) -> usize {
    match v {
        Value::Pair(p) => 1 + value_nodes(&p.0) + value_nodes(&p.1),
        Value::List(l) => 1 + l.iter().map(value_nodes).sum::<usize>(),
        _ => 1,
    }
}

/// A complete EventML specification: a named main class deployed at a bag of
/// locations (`main Handler @ locs`).
#[derive(Clone, Debug)]
pub struct Spec {
    name: String,
    main: ClassExpr,
}

impl Spec {
    /// Creates a specification.
    pub fn new(name: impl Into<String>, main: ClassExpr) -> Spec {
        Spec {
            name: name.into(),
            main,
        }
    }

    /// The specification's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The main class.
    pub fn main(&self) -> &ClassExpr {
        &self.main
    }

    /// AST node count (Table I, "EventML spec" column).
    pub fn ast_nodes(&self) -> usize {
        // +2 for the `specification` and `main … @ locs` declarations.
        2 + self.main.ast_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ClassExpr {
        let upd = UpdateFn::new("inc", 3, |_l, _i, s| Value::Int(s.int() + 1));
        let h = HandlerFn::new("echo", 2, |_l, args| vec![args[0].clone()]);
        ClassExpr::compose(
            h,
            vec![
                ClassExpr::base("msg"),
                ClassExpr::base("msg").state(Value::Int(0), upd),
            ],
        )
    }

    #[test]
    fn ast_nodes_counts_structure_and_leaves() {
        // compose(1) + echo(2) + base(1) + state(1) + init(1) + inc(3) + base(1) = 10
        assert_eq!(tiny().ast_nodes(), 10);
    }

    #[test]
    fn spec_adds_declarations() {
        assert_eq!(Spec::new("TINY", tiny()).ast_nodes(), 12);
    }

    #[test]
    fn structural_keys_identify_shared_subtrees() {
        let a = ClassExpr::base("msg");
        let b = ClassExpr::base("msg");
        assert_eq!(a.structural_key(), b.structural_key());
        assert_ne!(
            a.structural_key(),
            ClassExpr::base("other").structural_key()
        );
    }

    #[test]
    fn structural_keys_distinguish_update_fns() {
        let u1 = UpdateFn::new("u1", 1, |_l, _i, s| s.clone());
        let u2 = UpdateFn::new("u2", 1, |_l, _i, s| s.clone());
        let s1 = ClassExpr::base("m").state(Value::Unit, u1);
        let s2 = ClassExpr::base("m").state(Value::Unit, u2);
        assert_ne!(s1.structural_key(), s2.structural_key());
    }

    #[test]
    fn parallel_and_once_counted() {
        let e = ClassExpr::parallel(vec![ClassExpr::base("a"), ClassExpr::base("b").once()]);
        // par(1) + base(1) + once(1) + base(1)
        assert_eq!(e.ast_nodes(), 4);
    }
}
