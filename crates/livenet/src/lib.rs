//! A real-time, thread-per-node runtime for GPM processes.
//!
//! The same [`Process`] objects that run under the deterministic simulator
//! run here on operating-system threads with real clocks — the repository's
//! counterpart of the paper running its generated programs in actual
//! interpreters over TCP. Nodes exchange messages through crossbeam
//! channels; a router thread implements delayed sends (timers) and an
//! optional artificial link latency.
//!
//! Intended for demos and end-to-end examples; experiments use
//! `shadowdb-simnet`, which is deterministic and measures virtual time.
//!
//! # Example
//!
//! ```
//! use shadowdb_eventml::{Ctx, FnProcess, Msg, SendInstr, Value};
//! use shadowdb_livenet::LiveNet;
//!
//! let mut net = LiveNet::builder()
//!     .node(Box::new(FnProcess::new((), |_s, _c: &Ctx, m: &Msg| {
//!         match m.body.as_loc() {
//!             Some(from) => vec![SendInstr::now(from, Msg::new("pong", Value::Unit))],
//!             None => vec![],
//!         }
//!     })))
//!     .spawn();
//! let (port, rx) = net.port();
//! net.send(shadowdb_loe::Loc::new(0), Msg::new("ping", Value::Loc(port)));
//! let reply = rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
//! assert_eq!(reply.header.name(), "pong");
//! net.shutdown();
//! ```

use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use shadowdb_eventml::{Ctx, Msg, Process, SendInstr};
use shadowdb_loe::{Loc, VTime};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

enum Routed {
    Deliver { at: Instant, dest: Loc, msg: Msg },
    Shutdown,
}

struct Due {
    at: Instant,
    seq: u64,
    dest: Loc,
    msg: Msg,
}

impl PartialEq for Due {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Due {}
impl PartialOrd for Due {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Due {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Configures a [`LiveNet`].
pub struct LiveNetBuilder {
    processes: Vec<Box<dyn Process>>,
    latency: Duration,
}

impl LiveNetBuilder {
    /// Adds a node; nodes receive locations `0, 1, …` in insertion order.
    pub fn node(mut self, process: Box<dyn Process>) -> LiveNetBuilder {
        self.processes.push(process);
        self
    }

    /// Adds an artificial one-way latency to every inter-node message.
    pub fn latency(mut self, latency: Duration) -> LiveNetBuilder {
        self.latency = latency;
        self
    }

    /// Starts all node threads and the router.
    pub fn spawn(self) -> LiveNet {
        let n = self.processes.len() as u32;
        let start = Instant::now();
        let stop = Arc::new(AtomicBool::new(false));
        let (router_tx, router_rx) = channel::unbounded::<Routed>();

        // Ports occupy locations ≥ n + node channels.
        let mut node_txs: Vec<Sender<Msg>> = Vec::new();
        let mut handles: Vec<JoinHandle<()>> = Vec::new();
        for (i, mut process) in self.processes.into_iter().enumerate() {
            let (tx, rx) = channel::unbounded::<Msg>();
            node_txs.push(tx);
            let slf = Loc::new(i as u32);
            let router = router_tx.clone();
            let stop = stop.clone();
            let latency = self.latency;
            handles.push(std::thread::spawn(move || {
                let mut outs = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    match rx.recv_timeout(Duration::from_millis(50)) {
                        Ok(msg) => {
                            let now = VTime::from_micros(start.elapsed().as_micros() as u64);
                            outs.clear();
                            process.step_into(&Ctx::new(slf, now), &msg, &mut outs);
                            for SendInstr { dest, delay, msg } in outs.drain(..) {
                                let wire = if dest == slf { Duration::ZERO } else { latency };
                                let _ = router.send(Routed::Deliver {
                                    at: Instant::now() + delay + wire,
                                    dest,
                                    msg,
                                });
                            }
                        }
                        Err(channel::RecvTimeoutError::Timeout) => continue,
                        Err(channel::RecvTimeoutError::Disconnected) => break,
                    }
                }
            }));
        }

        let ports: Arc<Mutex<Vec<Sender<Msg>>>> = Arc::new(Mutex::new(Vec::new()));
        let router_ports = ports.clone();
        let stop_router = stop.clone();
        let router_handle = std::thread::spawn(move || {
            let mut heap: BinaryHeap<Due> = BinaryHeap::new();
            let mut seq = 0u64;
            loop {
                // Deliver everything due.
                let now = Instant::now();
                while heap.peek().map(|d| d.at <= now).unwrap_or(false) {
                    let due = heap.pop().expect("peeked");
                    let idx = due.dest.index() as usize;
                    if idx < node_txs.len() {
                        let _ = node_txs[idx].send(due.msg);
                    } else {
                        let ports = router_ports.lock();
                        if let Some(tx) = ports.get(idx - node_txs.len()) {
                            let _ = tx.send(due.msg);
                        }
                    }
                }
                let wait = heap
                    .peek()
                    .map(|d| d.at.saturating_duration_since(Instant::now()))
                    .unwrap_or(Duration::from_millis(20))
                    .min(Duration::from_millis(20));
                match router_rx.recv_timeout(wait) {
                    Ok(Routed::Deliver { at, dest, msg }) => {
                        seq += 1;
                        heap.push(Due { at, seq, dest, msg });
                    }
                    Ok(Routed::Shutdown) => break,
                    Err(channel::RecvTimeoutError::Timeout) => {
                        if stop_router.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    Err(channel::RecvTimeoutError::Disconnected) => break,
                }
            }
        });
        handles.push(router_handle);

        LiveNet {
            n_nodes: n,
            router: router_tx,
            ports,
            stop,
            handles,
        }
    }
}

/// A running thread-per-node network.
pub struct LiveNet {
    n_nodes: u32,
    router: Sender<Routed>,
    ports: Arc<Mutex<Vec<Sender<Msg>>>>,
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl LiveNet {
    /// Starts building a network.
    pub fn builder() -> LiveNetBuilder {
        LiveNetBuilder {
            processes: Vec::new(),
            latency: Duration::from_micros(100),
        }
    }

    /// Number of process nodes.
    pub fn node_count(&self) -> u32 {
        self.n_nodes
    }

    /// Injects a message from outside the system.
    pub fn send(&self, dest: Loc, msg: Msg) {
        let _ = self.router.send(Routed::Deliver {
            at: Instant::now(),
            dest,
            msg,
        });
    }

    /// Creates an external mailbox: a fresh location whose messages are
    /// handed to the returned receiver (how a driver observes the network).
    pub fn port(&self) -> (Loc, Receiver<Msg>) {
        let (tx, rx) = channel::unbounded();
        let mut ports = self.ports.lock();
        let loc = Loc::new(self.n_nodes + ports.len() as u32);
        ports.push(tx);
        (loc, rx)
    }

    /// Stops every thread and waits for them.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.router.send(Routed::Shutdown);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for LiveNet {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.router.send(Routed::Shutdown);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadowdb_consensus::parse_decide;
    use shadowdb_consensus::twothird::{propose_msg, TwoThird, TwoThirdConfig};
    use shadowdb_eventml::{FnProcess, InterpretedProcess, Value};

    #[test]
    fn echo_roundtrip() {
        let net = LiveNet::builder()
            .node(Box::new(FnProcess::new(0u32, |n, _c: &Ctx, m: &Msg| {
                *n += 1;
                match m.body.as_loc() {
                    Some(from) => {
                        vec![SendInstr::now(
                            from,
                            Msg::new("pong", Value::Int(*n as i64)),
                        )]
                    }
                    None => vec![],
                }
            })))
            .spawn();
        let (port, rx) = net.port();
        net.send(Loc::new(0), Msg::new("ping", Value::Loc(port)));
        net.send(Loc::new(0), Msg::new("ping", Value::Loc(port)));
        let a = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let b = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(a.body, Value::Int(1));
        assert_eq!(b.body, Value::Int(2));
        net.shutdown();
    }

    #[test]
    fn delayed_self_send_fires_later() {
        let net = LiveNet::builder()
            .node(Box::new(FnProcess::new(
                (),
                |_s, ctx: &Ctx, m: &Msg| match m.header.name() {
                    "start" => vec![SendInstr::after(
                        Duration::from_millis(80),
                        ctx.slf,
                        Msg::new("timer", m.body.clone()),
                    )],
                    "timer" => vec![SendInstr::now(m.body.loc(), Msg::new("fired", Value::Unit))],
                    _ => vec![],
                },
            )))
            .spawn();
        let (port, rx) = net.port();
        let t0 = Instant::now();
        net.send(Loc::new(0), Msg::new("start", Value::Loc(port)));
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(
            t0.elapsed() >= Duration::from_millis(75),
            "{:?}",
            t0.elapsed()
        );
        net.shutdown();
    }

    /// The generated TwoThird consensus, on real threads: three members
    /// decide one value and notify the learner port.
    #[test]
    fn twothird_consensus_over_threads() {
        let members = Loc::first_n(3);
        // The learner port will be loc 3 (first port after 3 nodes).
        let config = TwoThirdConfig::new(members, vec![Loc::new(3)]).with_auto_adopt();
        let class = TwoThird::new(config).class();
        let mut builder = LiveNet::builder().latency(Duration::from_micros(200));
        for _ in 0..3 {
            builder = builder.node(Box::new(InterpretedProcess::compile(&class)));
        }
        let net = builder.spawn();
        let (port, rx) = net.port();
        assert_eq!(port, Loc::new(3));
        net.send(Loc::new(0), propose_msg(0, Value::Int(41)));
        net.send(Loc::new(1), propose_msg(0, Value::Int(42)));
        net.send(Loc::new(2), propose_msg(0, Value::Int(41)));
        let mut decisions = Vec::new();
        while decisions.len() < 3 {
            let m = rx
                .recv_timeout(Duration::from_secs(10))
                .expect("a decision");
            if let Some(d) = parse_decide(&m) {
                decisions.push(d);
            }
        }
        let first = decisions[0].1.clone();
        assert!(decisions.iter().all(|(i, v)| *i == 0 && *v == first));
        net.shutdown();
    }
}
