//! One deployment graph, interchangeable substrates.
//!
//! The same `SmrDeployment`/`PbrDeployment` builders that the simulator
//! tests exercise here run on real threads (`shadowdb-livenet`, in
//! wire-framed mode so every message round-trips through the byte codec)
//! and on real loopback sockets (`shadowdb-tcpnet`): the SMR bank workload
//! commits the same set of answers under all three runtimes and every
//! observed history is strictly serializable, and a PBR deployment on
//! threads survives a primary crash — the thread-runtime mirror of the
//! simulator's `pbr_primary_crash_recovers_and_resumes`.

use shadowdb::client::DbClientStats;
use shadowdb::deploy::{DeployOptions, PbrDeployment, SmrDeployment};
use shadowdb::pbr::PbrOptions;
use shadowdb::serializability::{check_bank_history, Observation};
use shadowdb_livenet::LiveNet;
use shadowdb_loe::VTime;
use shadowdb_workloads::{bank, TxnRequest};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

const ACCOUNTS: usize = 20;

/// Mixed deposits and reads, identical across runtimes.
fn scripts(n_clients: usize, txns_each: usize) -> Vec<Vec<TxnRequest>> {
    (0..n_clients)
        .map(|client| {
            (0..txns_each)
                .map(|i| {
                    if (i + client) % 3 == 0 {
                        TxnRequest::BankRead {
                            account: ((i * 7 + client) % ACCOUNTS) as i64,
                        }
                    } else {
                        TxnRequest::BankDeposit {
                            account: ((i * 5 + client) % ACCOUNTS) as i64,
                            amount: 1 + (i % 9) as i64,
                        }
                    }
                })
                .collect()
        })
        .collect()
}

fn bank_options(scripts: Vec<Vec<TxnRequest>>) -> DeployOptions {
    DeployOptions::new(
        scripts.len(),
        move |i| scripts[i].clone(),
        |db| bank::load(db, ACCOUNTS).expect("bank loads"),
    )
}

/// The committed `(client, cseq)` set and observations of a finished run.
fn harvest(
    stats: &[Arc<parking_lot::Mutex<DbClientStats>>],
    scripts: &[Vec<TxnRequest>],
) -> (BTreeSet<(usize, usize)>, Vec<Observation>) {
    let mut committed = BTreeSet::new();
    let mut observations = Vec::new();
    for (client, s) in stats.iter().enumerate() {
        let s = s.lock();
        for (cseq, (_, _, ok)) in s.completed.iter().enumerate() {
            if *ok {
                committed.insert((client, cseq));
            }
        }
        observations.extend(s.observations(&scripts[client]));
    }
    observations.sort_by_key(|o| o.answered);
    (committed, observations)
}

fn wait_for(deadline: Duration, mut done: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !done() {
        assert!(t0.elapsed() < deadline, "live run did not finish in time");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn smr_bank_commits_identically_on_simnet_livenet_and_tcpnet() {
    const N_CLIENTS: usize = 2;
    const TXNS_EACH: usize = 25;
    let scripts = scripts(N_CLIENTS, TXNS_EACH);

    // Substrate 1: the deterministic simulator.
    let mut sim = shadowdb_simnet::testing::default_net(17);
    let d_sim = SmrDeployment::build(&mut sim, &bank_options(scripts.clone()));
    sim.run_until_quiescent(VTime::from_secs(600));
    let (committed_sim, obs_sim) = harvest(&d_sim.stats, &scripts);

    // Substrate 2: real threads, seeded delivery for a reproducible
    // interleaving, wire-framed so every delivery round-trips through the
    // length-prefixed byte codec.
    let mut net = LiveNet::builder()
        .latency(Duration::from_micros(100))
        .seeded(17)
        .wire_framed()
        .spawn();
    let d_live = SmrDeployment::build(&mut net, &bank_options(scripts.clone()));
    wait_for(Duration::from_secs(60), || {
        d_live.committed() == N_CLIENTS * TXNS_EACH
    });
    let (committed_live, obs_live) = harvest(&d_live.stats, &scripts);
    net.shutdown();

    // Substrate 3: real loopback TCP sockets — the identical builder, the
    // identical codec, actual kernel byte streams between nodes.
    let mut tcp = shadowdb_tcpnet::TcpNet::new();
    let d_tcp = SmrDeployment::build(&mut tcp, &bank_options(scripts.clone()));
    wait_for(Duration::from_secs(60), || {
        d_tcp.committed() == N_CLIENTS * TXNS_EACH
    });
    let (committed_tcp, obs_tcp) = harvest(&d_tcp.stats, &scripts);
    tcp.shutdown();

    // All three substrates answer the same committed set…
    assert_eq!(committed_sim.len(), N_CLIENTS * TXNS_EACH);
    assert_eq!(committed_sim, committed_live);
    assert_eq!(committed_sim, committed_tcp);
    // …and each observed history is strictly serializable with the read
    // results the clients actually saw.
    check_bank_history(&obs_sim, 1_000).expect("simnet history serializable");
    check_bank_history(&obs_live, 1_000).expect("livenet history serializable");
    check_bank_history(&obs_tcp, 1_000).expect("tcpnet history serializable");
    // Deposits commute, so identical committed sets imply identical final
    // balances; assert the derived balances agree as a belt-and-braces
    // check on the harvested histories themselves.
    let final_balances = |obs: &[Observation]| {
        let mut b = std::collections::BTreeMap::new();
        for o in obs {
            if let TxnRequest::BankDeposit { account, amount } = &o.txn {
                *b.entry(*account).or_insert(1_000i64) += amount;
            }
        }
        b
    };
    assert_eq!(final_balances(&obs_sim), final_balances(&obs_live));
    assert_eq!(final_balances(&obs_sim), final_balances(&obs_tcp));
}

/// The thread-runtime mirror of the simulator's
/// `pbr_primary_crash_recovers_and_resumes`: kill the primary mid-run on
/// real threads; failover answers everything, with client retries during
/// the outage.
#[test]
fn livenet_pbr_primary_crash_recovers_and_resumes() {
    const N_CLIENTS: usize = 2;
    const TXNS_EACH: usize = 30;
    let scripts = scripts(N_CLIENTS, TXNS_EACH);
    let mut options = bank_options(scripts);
    options.client_timeout = Duration::from_millis(500);
    let pbr = PbrOptions {
        detect_after: Duration::from_millis(200),
        heartbeat_every: Duration::from_millis(50),
        ..PbrOptions::default()
    };

    let mut net = LiveNet::builder()
        .latency(Duration::from_micros(100))
        .spawn();
    let d = PbrDeployment::build(&mut net, &options, pbr);

    // Let some transactions through, then kill the primary mid-run.
    wait_for(Duration::from_secs(30), || d.committed() >= 5);
    assert!(
        d.committed() < N_CLIENTS * TXNS_EACH,
        "the crash must interrupt the run"
    );
    net.crash_at(net.now(), d.replicas[0]);

    wait_for(Duration::from_secs(60), || {
        d.committed() == N_CLIENTS * TXNS_EACH
    });
    let resends: u64 = d.stats.iter().map(|s| s.lock().resends).sum();
    assert!(resends > 0, "clients must have retried during the outage");
    net.shutdown();
}
