//! Bounded model checking of GPM protocols.
//!
//! The paper proves safety properties of its protocols semi-automatically in
//! Nuprl. This repository cannot embed a theorem prover; instead, this crate
//! systematically explores *every* schedule of a small protocol instance —
//! all message-delivery interleavings, optionally all message losses, and
//! all crash placements within a budget — checking a safety invariant in
//! every reachable state. Where the paper reports "we found the bug when we
//! were unable to prove the safety properties", here the explorer hands back
//! the violating schedule as a counterexample.
//!
//! Timers need no special treatment: a delayed self-send is just an
//! in-flight message, and exploring all delivery orders covers all timings.
//!
//! # Example
//!
//! ```
//! use shadowdb_eventml::{Ctx, FnProcess, Msg, Process, SendInstr, Value};
//! use shadowdb_loe::Loc;
//! use shadowdb_mck::{explore, Options, Spec, World};
//!
//! // Two nodes that each report to an observer; in every schedule the
//! // observer hears at most two messages.
//! let observer = Loc::new(2);
//! let reporter = || {
//!     Box::new(FnProcess::new((), move |_s, _c: &Ctx, m: &Msg| {
//!         vec![SendInstr::now(Loc::new(2), m.clone())]
//!     })) as Box<dyn Process>
//! };
//! let spec = Spec {
//!     procs: vec![reporter(), reporter()],
//!     env: vec![observer],
//!     init_msgs: vec![(Loc::new(0), Msg::new("go", Value::Unit)),
//!                     (Loc::new(1), Msg::new("go", Value::Unit))],
//! };
//! let outcome = explore(spec, Options::default(), |w: &World| {
//!     if w.observations.len() <= 2 { Ok(()) } else { Err("too many".into()) }
//! });
//! assert!(outcome.violation.is_none());
//! ```

use shadowdb_eventml::{Ctx, FxHasher, Msg, Process};
use shadowdb_loe::{Loc, VTime};
use shadowdb_runtime::{PortRx, Runtime};
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::time::Duration;

/// The initial configuration of a checking run.
pub struct Spec {
    /// One process per location `0..n`.
    pub procs: Vec<Box<dyn Process>>,
    /// Environment locations: messages sent to them become *observations*
    /// rather than deliverable messages (they model clients/learners).
    pub env: Vec<Loc>,
    /// Initially in-flight messages (external inputs).
    pub init_msgs: Vec<(Loc, Msg)>,
}

/// Exploration bounds and fault budgets.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Maximum schedule length (delivery + fault actions).
    pub max_depth: usize,
    /// Cap on distinct states visited; exceeded ⇒ exploration is truncated
    /// (reported in the outcome, never silent).
    pub max_states: usize,
    /// How many crash actions the adversary may take.
    pub crash_budget: usize,
    /// Whether the adversary may drop in-flight messages (lossy links).
    pub loss_budget: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_depth: 24,
            max_states: 200_000,
            crash_budget: 0,
            loss_budget: 0,
        }
    }
}

/// One step of a schedule (for counterexample reporting).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Choice {
    /// Deliver the in-flight message at this queue position.
    Deliver {
        /// Destination of the delivered message.
        dest: Loc,
        /// Header of the delivered message.
        header: String,
    },
    /// Crash this node.
    Crash(Loc),
    /// Drop the in-flight message at this queue position.
    Drop {
        /// Destination of the dropped message.
        dest: Loc,
        /// Header of the dropped message.
        header: String,
    },
}

/// The world state the invariant can inspect.
pub struct World {
    /// Messages delivered to environment locations, in emission order:
    /// `(env_loc, sender, msg)`.
    pub observations: Vec<(Loc, Loc, Msg)>,
    /// Which protocol nodes are crashed.
    pub crashed: Vec<bool>,
    /// Depth of the current schedule.
    pub depth: usize,
}

/// A violated invariant together with the schedule that reaches it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The invariant's error message.
    pub message: String,
    /// The schedule (root to violation).
    pub schedule: Vec<Choice>,
}

/// The result of an exploration.
#[derive(Debug, Default)]
pub struct Outcome {
    /// A counterexample, if the invariant can be violated within bounds.
    pub violation: Option<Violation>,
    /// Distinct states visited.
    pub states_visited: usize,
    /// Whether bounds truncated the search (if true and no violation, the
    /// result is "no violation found within bounds", not a proof).
    pub truncated: bool,
    /// The maximum schedule depth reached.
    pub max_depth_reached: usize,
}

struct Node {
    procs: Vec<Box<dyn Process>>,
    alive: Vec<bool>,
    inflight: Vec<(Loc, Loc, Msg)>, // (dest, src, msg)
    observations: Vec<(Loc, Loc, Msg)>,
    crash_budget: usize,
    loss_budget: usize,
}

impl Node {
    fn fingerprint(&self) -> u64 {
        // FxHasher: stable across runs and processes (DefaultHasher's
        // SipHash keys are randomized per process), and much cheaper —
        // every explored state is hashed.
        let mut h = FxHasher::new();
        for p in &self.procs {
            p.digest(&mut h);
        }
        self.alive.hash(&mut h);
        // In-flight messages as a multiset: hash a sorted projection.
        let mut keys: Vec<u64> = self
            .inflight
            .iter()
            .map(|(d, s, m)| {
                let mut mh = FxHasher::new();
                (d, s, m).hash(&mut mh);
                mh.finish()
            })
            .collect();
        keys.sort_unstable();
        keys.hash(&mut h);
        self.observations.hash(&mut h);
        (self.crash_budget, self.loss_budget).hash(&mut h);
        h.finish()
    }

    fn clone_node(&self) -> Node {
        Node {
            procs: self.procs.iter().map(|p| p.clone_box()).collect(),
            alive: self.alive.clone(),
            inflight: self.inflight.clone(),
            observations: self.observations.clone(),
            crash_budget: self.crash_budget,
            loss_budget: self.loss_budget,
        }
    }
}

/// Explores all schedules of `spec` within `options`, checking `invariant`
/// in every reachable state.
pub fn explore(
    spec: Spec,
    options: Options,
    invariant: impl Fn(&World) -> Result<(), String>,
) -> Outcome {
    let env: HashSet<Loc> = spec.env.iter().copied().collect();
    let n = spec.procs.len();
    let mut root = Node {
        procs: spec.procs,
        alive: vec![true; n],
        inflight: Vec::new(),
        observations: Vec::new(),
        crash_budget: options.crash_budget,
        loss_budget: options.loss_budget,
    };
    for (dest, msg) in spec.init_msgs {
        root.inflight.push((dest, dest, msg)); // external: src = dest
    }
    // Spec hosts process i at location i: the loc→slot map is the identity.
    let map: Vec<Option<usize>> = (0..n).map(Some).collect();
    let slot_locs = Loc::first_n(n as u32);
    run_dfs(root, env, map, slot_locs, options, invariant)
}

fn run_dfs(
    root: Node,
    env: HashSet<Loc>,
    map: Vec<Option<usize>>,
    slot_locs: Vec<Loc>,
    options: Options,
    invariant: impl Fn(&World) -> Result<(), String>,
) -> Outcome {
    let mut outcome = Outcome::default();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut schedule: Vec<Choice> = Vec::new();
    dfs(
        &root,
        &env,
        &map,
        &slot_locs,
        &options,
        &invariant,
        &mut visited,
        &mut schedule,
        &mut outcome,
    );
    outcome
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    node: &Node,
    env: &HashSet<Loc>,
    map: &[Option<usize>],
    slot_locs: &[Loc],
    options: &Options,
    invariant: &impl Fn(&World) -> Result<(), String>,
    visited: &mut HashSet<u64>,
    schedule: &mut Vec<Choice>,
    outcome: &mut Outcome,
) {
    if outcome.violation.is_some() {
        return;
    }
    let fp = node.fingerprint();
    if !visited.insert(fp) {
        return;
    }
    outcome.states_visited = visited.len();
    outcome.max_depth_reached = outcome.max_depth_reached.max(schedule.len());
    if visited.len() > options.max_states {
        outcome.truncated = true;
        return;
    }
    let world = World {
        observations: node.observations.clone(),
        crashed: node.alive.iter().map(|a| !a).collect(),
        depth: schedule.len(),
    };
    if let Err(message) = invariant(&world) {
        outcome.violation = Some(Violation {
            message,
            schedule: schedule.clone(),
        });
        return;
    }
    if schedule.len() >= options.max_depth {
        if !node.inflight.is_empty() {
            outcome.truncated = true;
        }
        return;
    }

    // Choice 1: deliver any in-flight message.
    let mut outputs = Vec::new();
    for i in 0..node.inflight.len() {
        let mut next = node.clone_node();
        // Take the message out of the fork's own queue: no extra clone of
        // the (potentially large) payload per branch.
        let (dest, _src, msg) = next.inflight.remove(i);
        let slot = map.get(dest.index() as usize).copied().flatten();
        if let Some(s) = slot {
            if next.alive[s] {
                let ctx = Ctx::new(dest, VTime::from_micros(schedule.len() as u64));
                outputs.clear();
                next.procs[s].step_into(&ctx, &msg, &mut outputs);
                for instr in outputs.drain(..) {
                    if env.contains(&instr.dest) {
                        next.observations.push((instr.dest, dest, instr.msg));
                    } else {
                        next.inflight.push((instr.dest, dest, instr.msg));
                    }
                }
            }
        }
        // Delivery to a crashed or unknown node silently consumes the message.
        schedule.push(Choice::Deliver {
            dest,
            header: msg.header.name().to_owned(),
        });
        dfs(
            &next, env, map, slot_locs, options, invariant, visited, schedule, outcome,
        );
        schedule.pop();
        if outcome.violation.is_some() {
            return;
        }
    }

    // Choice 2: crash any alive node (within budget).
    if node.crash_budget > 0 {
        for s in 0..node.procs.len() {
            if !node.alive[s] {
                continue;
            }
            let mut next = node.clone_node();
            next.alive[s] = false;
            next.crash_budget -= 1;
            schedule.push(Choice::Crash(slot_locs[s]));
            dfs(
                &next, env, map, slot_locs, options, invariant, visited, schedule, outcome,
            );
            schedule.pop();
            if outcome.violation.is_some() {
                return;
            }
        }
    }

    // Choice 3: drop any in-flight message (within budget).
    if node.loss_budget > 0 {
        for i in 0..node.inflight.len() {
            let mut next = node.clone_node();
            let (dest, _src, msg) = next.inflight.remove(i);
            next.loss_budget -= 1;
            schedule.push(Choice::Drop {
                dest,
                header: msg.header.name().to_owned(),
            });
            dfs(
                &next, env, map, slot_locs, options, invariant, visited, schedule, outcome,
            );
            schedule.pop();
            if outcome.violation.is_some() {
                return;
            }
        }
    }
}

/// Hosts a deployment graph for bounded checking: the [`Runtime`]
/// implementation of the model checker.
///
/// The same `PbrDeployment`/`SmrDeployment` builders that run under the
/// simulator and on real threads build *here*, and [`WorldBuilder::explore`]
/// then checks every delivery interleaving of the resulting graph — the
/// checker verifies the deployment code that actually ships, not a
/// hand-mirrored copy.
///
/// Time is abstracted away: the `at` arguments of [`Runtime::send_at`],
/// [`Runtime::crash_at`], and [`Runtime::restart_at`] are ignored, because
/// exploring all delivery orders subsumes all timings. Concretely:
/// `send_at` queues an initially in-flight message, `crash_at` marks the
/// node initially crashed, `restart_at` replaces its process (and revives
/// it) before exploration. [`Runtime::port`] allocates an *environment*
/// location — messages sent to it become [`World::observations`] visible to
/// the invariant, and the returned receiver stays empty.
pub struct WorldBuilder {
    procs: Vec<Box<dyn Process>>,
    alive: Vec<bool>,
    /// Location → process slot; `None` marks an environment (port) location.
    map: Vec<Option<usize>>,
    slot_locs: Vec<Loc>,
    env: Vec<Loc>,
    init_msgs: Vec<(Loc, Msg)>,
}

impl WorldBuilder {
    /// An empty deployment graph.
    pub fn new() -> WorldBuilder {
        WorldBuilder {
            procs: Vec::new(),
            alive: Vec::new(),
            map: Vec::new(),
            slot_locs: Vec::new(),
            env: Vec::new(),
            init_msgs: Vec::new(),
        }
    }

    /// Explores all schedules of the built graph within `options`, checking
    /// `invariant` in every reachable state.
    ///
    /// `World::crashed` is indexed by node *insertion order* (ports do not
    /// count), matching the order of `add_node` calls.
    pub fn explore(
        self,
        options: Options,
        invariant: impl Fn(&World) -> Result<(), String>,
    ) -> Outcome {
        let mut root = Node {
            procs: self.procs,
            alive: self.alive,
            inflight: Vec::new(),
            observations: Vec::new(),
            crash_budget: options.crash_budget,
            loss_budget: options.loss_budget,
        };
        for (dest, msg) in self.init_msgs {
            root.inflight.push((dest, dest, msg)); // external: src = dest
        }
        let env: HashSet<Loc> = self.env.into_iter().collect();
        run_dfs(root, env, self.map, self.slot_locs, options, invariant)
    }
}

impl Default for WorldBuilder {
    fn default() -> Self {
        WorldBuilder::new()
    }
}

impl Runtime for WorldBuilder {
    fn add_node(&mut self, process: Box<dyn Process>) -> Loc {
        let loc = Loc::new(self.map.len() as u32);
        self.map.push(Some(self.procs.len()));
        self.slot_locs.push(loc);
        self.procs.push(process);
        self.alive.push(true);
        loc
    }

    fn node_count(&self) -> u32 {
        self.map.len() as u32
    }

    fn now(&self) -> VTime {
        VTime::ZERO
    }

    fn send_at(&mut self, _at: VTime, dest: Loc, msg: Msg) {
        self.init_msgs.push((dest, msg));
    }

    fn crash_at(&mut self, _at: VTime, loc: Loc) {
        if let Some(Some(s)) = self.map.get(loc.index() as usize).copied() {
            self.alive[s] = false;
        }
    }

    fn restart_at(&mut self, _at: VTime, loc: Loc, process: Box<dyn Process>) {
        if let Some(Some(s)) = self.map.get(loc.index() as usize).copied() {
            self.procs[s] = process;
            self.alive[s] = true;
        }
    }

    fn port(&mut self) -> (Loc, PortRx) {
        let loc = Loc::new(self.map.len() as u32);
        self.map.push(None);
        self.env.push(loc);
        (loc, PortRx::closed())
    }

    fn run_for(&mut self, _duration: Duration) {
        // Exploration is driven by `WorldBuilder::explore`, not by time.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadowdb_eventml::{FnProcess, SendInstr, Value};

    /// Node 0 and node 1 both tell the observer (loc 2) their own id; the
    /// observer must never hear two different ids… which is false, so the
    /// checker must find a counterexample.
    #[test]
    fn finds_violation_with_schedule() {
        let teller = |id: i64| {
            Box::new(FnProcess::new((), move |_s, _c: &Ctx, m: &Msg| {
                if m.header.name() == "go" {
                    vec![SendInstr::now(Loc::new(2), Msg::new("id", Value::Int(id)))]
                } else {
                    vec![]
                }
            })) as Box<dyn Process>
        };
        let spec = Spec {
            procs: vec![teller(0), teller(1)],
            env: vec![Loc::new(2)],
            init_msgs: vec![
                (Loc::new(0), Msg::new("go", Value::Unit)),
                (Loc::new(1), Msg::new("go", Value::Unit)),
            ],
        };
        let outcome = explore(spec, Options::default(), |w| {
            let ids: HashSet<i64> = w
                .observations
                .iter()
                .filter_map(|(_, _, m)| m.body.as_int())
                .collect();
            if ids.len() <= 1 {
                Ok(())
            } else {
                Err(format!("observer heard {} different ids", ids.len()))
            }
        });
        let v = outcome.violation.as_ref().expect("must find the violation");
        assert_eq!(v.schedule.len(), 2); // both deliveries
    }

    /// A ping-pong pair under a crash budget: the total number of pongs the
    /// observer hears never exceeds the number of pings delivered.
    #[test]
    fn crash_budget_explored_without_violation() {
        let ponger = Box::new(FnProcess::new(0u32, move |n, _c: &Ctx, m: &Msg| {
            if m.header.name() == "ping" {
                *n += 1;
                vec![SendInstr::now(
                    Loc::new(1),
                    Msg::new("pong", Value::Int(*n as i64)),
                )]
            } else {
                vec![]
            }
        })) as Box<dyn Process>;
        let spec = Spec {
            procs: vec![ponger],
            env: vec![Loc::new(1)],
            init_msgs: vec![
                (Loc::new(0), Msg::new("ping", Value::Unit)),
                (Loc::new(0), Msg::new("ping", Value::Unit)),
            ],
        };
        let outcome = explore(
            spec,
            Options {
                crash_budget: 1,
                ..Options::default()
            },
            |w| {
                if w.observations.len() <= 2 {
                    Ok(())
                } else {
                    Err("more pongs than pings".into())
                }
            },
        );
        assert!(outcome.violation.is_none());
        assert!(!outcome.truncated);
        // Crash placements multiply the state space: > the 4 states of the
        // crash-free run.
        assert!(
            outcome.states_visited > 4,
            "visited {}",
            outcome.states_visited
        );
    }

    /// Loss budget lets the adversary eat messages; an invariant demanding a
    /// reply for every request must then fail only if stated as a *safety*
    /// property incorrectly. Here we state a true safety property and check
    /// no violation is reported even with loss.
    #[test]
    fn loss_budget_preserves_safety_invariants() {
        let echo = Box::new(FnProcess::new((), move |_s, _c: &Ctx, m: &Msg| {
            if m.header.name() == "req" {
                vec![SendInstr::now(
                    Loc::new(1),
                    Msg::new("resp", m.body.clone()),
                )]
            } else {
                vec![]
            }
        })) as Box<dyn Process>;
        let spec = Spec {
            procs: vec![echo],
            env: vec![Loc::new(1)],
            init_msgs: vec![
                (Loc::new(0), Msg::new("req", Value::Int(1))),
                (Loc::new(0), Msg::new("req", Value::Int(2))),
            ],
        };
        let outcome = explore(
            spec,
            Options {
                loss_budget: 2,
                ..Options::default()
            },
            |w| {
                // Safety: responses only ever carry values that were requested.
                for (_, _, m) in &w.observations {
                    let v = m.body.as_int().unwrap_or(-1);
                    if v != 1 && v != 2 {
                        return Err(format!("spurious response {v}"));
                    }
                }
                Ok(())
            },
        );
        assert!(outcome.violation.is_none());
        assert!(!outcome.truncated);
    }

    /// Visited-state deduplication: two deliveries that commute lead to the
    /// same state, explored once.
    #[test]
    fn dedup_collapses_commuting_schedules() {
        let sink = || {
            Box::new(FnProcess::new(0i64, |n, _c: &Ctx, _m: &Msg| {
                *n += 1;
                vec![]
            })) as Box<dyn Process>
        };
        let spec = Spec {
            procs: vec![sink(), sink()],
            env: vec![],
            init_msgs: vec![
                (Loc::new(0), Msg::new("a", Value::Unit)),
                (Loc::new(1), Msg::new("b", Value::Unit)),
            ],
        };
        let outcome = explore(spec, Options::default(), |_| Ok(()));
        // States: init, a-done, b-done, both-done = 4 (not 1+2+2 paths = 5).
        assert_eq!(outcome.states_visited, 4);
    }

    #[test]
    fn depth_bound_truncates_and_reports() {
        // An infinite *counting* ping-pong: every hop changes state, so the
        // space is unbounded and the explorer must hit max_depth and say so.
        let bouncer = |other: u32| {
            Box::new(FnProcess::new(0i64, move |hops, _c: &Ctx, m: &Msg| {
                *hops += 1;
                vec![SendInstr::now(Loc::new(other), m.clone())]
            })) as Box<dyn Process>
        };
        let spec = Spec {
            procs: vec![bouncer(1), bouncer(0)],
            env: vec![],
            init_msgs: vec![(Loc::new(0), Msg::new("ball", Value::Unit))],
        };
        let outcome = explore(
            spec,
            Options {
                max_depth: 6,
                ..Options::default()
            },
            |_| Ok(()),
        );
        assert!(outcome.violation.is_none());
        assert!(outcome.truncated);
        assert_eq!(outcome.max_depth_reached, 6);
    }

    /// The Runtime-built world behaves like the equivalent Spec: a port
    /// created *before* the nodes shifts every location, and messages to it
    /// become observations.
    #[test]
    fn world_builder_hosts_ports_and_nodes() {
        let mut w = WorldBuilder::new();
        let (observer, rx) = Runtime::port(&mut w);
        assert_eq!(observer, Loc::new(0));
        let teller = |id: i64| {
            Box::new(FnProcess::new((), move |_s, _c: &Ctx, m: &Msg| {
                if m.header.name() == "go" {
                    vec![SendInstr::now(Loc::new(0), Msg::new("id", Value::Int(id)))]
                } else {
                    vec![]
                }
            })) as Box<dyn Process>
        };
        let a = w.add_node(teller(0));
        let b = w.add_node(teller(1));
        assert_eq!((a, b), (Loc::new(1), Loc::new(2)));
        assert_eq!(w.node_count(), 3);
        w.send_at(VTime::ZERO, a, Msg::new("go", Value::Unit));
        w.send_at(VTime::ZERO, b, Msg::new("go", Value::Unit));
        let outcome = w.explore(Options::default(), |world| {
            let ids: HashSet<i64> = world
                .observations
                .iter()
                .filter_map(|(_, _, m)| m.body.as_int())
                .collect();
            if ids.len() <= 1 {
                Ok(())
            } else {
                Err(format!("observer heard {} different ids", ids.len()))
            }
        });
        let v = outcome.violation.as_ref().expect("must find the violation");
        assert_eq!(v.schedule.len(), 2);
        // Port traffic is routed to the invariant, never to the receiver.
        assert_eq!(rx.try_recv(), None);
    }

    /// Pre-run fault injection: `crash_at` silences a node for the whole
    /// exploration; `restart_at` revives it with a fresh process.
    #[test]
    fn world_builder_crash_and_restart_before_run() {
        let build = |crash: bool, restart: bool| {
            let mut w = WorldBuilder::new();
            let (obs, _rx) = Runtime::port(&mut w);
            let echo = || {
                Box::new(FnProcess::new((), move |_s, _c: &Ctx, m: &Msg| {
                    vec![SendInstr::now(Loc::new(0), m.clone())]
                })) as Box<dyn Process>
            };
            let n = w.add_node(echo());
            assert_eq!(obs, Loc::new(0));
            if crash {
                w.crash_at(VTime::ZERO, n);
            }
            if restart {
                w.restart_at(VTime::ZERO, n, echo());
            }
            w.send_at(VTime::ZERO, n, Msg::new("x", Value::Unit));
            let mut heard = std::cell::Cell::new(false);
            let outcome = w.explore(Options::default(), |world| {
                if !world.observations.is_empty() {
                    heard.set(true);
                }
                Ok(())
            });
            assert!(outcome.violation.is_none());
            heard.get_mut().to_owned()
        };
        assert!(build(false, false), "healthy node echoes");
        assert!(!build(true, false), "crashed node stays silent");
        assert!(build(true, true), "restarted node echoes again");
    }

    /// A stateless ping-pong closes a 2-state cycle: the explorer proves the
    /// (trivial) invariant over the *entire* state space without truncation.
    #[test]
    fn cyclic_state_space_fully_explored() {
        let bouncer = |other: u32| {
            Box::new(FnProcess::new((), move |_s, _c: &Ctx, m: &Msg| {
                vec![SendInstr::now(Loc::new(other), m.clone())]
            })) as Box<dyn Process>
        };
        let spec = Spec {
            procs: vec![bouncer(1), bouncer(0)],
            env: vec![],
            init_msgs: vec![(Loc::new(0), Msg::new("ball", Value::Unit))],
        };
        let outcome = explore(
            spec,
            Options {
                max_depth: 50,
                ..Options::default()
            },
            |_| Ok(()),
        );
        assert!(outcome.violation.is_none());
        assert!(!outcome.truncated);
        // init (external ball), ball at node1, ball back at node0; the third
        // state differs from the first only in the recorded sender, after
        // which the cycle closes.
        assert_eq!(outcome.states_visited, 3);
    }
}
