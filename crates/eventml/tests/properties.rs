//! Property-based verification of the EventML toolchain.
//!
//! These are the repository's analogues of the paper's machine-checked
//! obligations: for *arbitrary* specifications and message streams,
//! the interpreted program, the optimized program, and the denotational
//! (LoE) semantics must agree.

use proptest::prelude::*;
use shadowdb_eventml::bisim::{check_bisimilar, check_complies_with_loe};
use shadowdb_eventml::codec::{decode_msg, decode_value, encode_msg, encode_value, encoded_len};
use shadowdb_eventml::optimize::optimize;
use shadowdb_eventml::{clk, ClassExpr, HandlerFn, InterpretedProcess, Msg, UpdateFn, Value};
use shadowdb_loe::Loc;

/// A pool of deterministic leaf functions the generator can pick from.
/// Names identify behaviour, as the optimizer requires.
fn update_fn(idx: usize) -> UpdateFn {
    match idx % 4 {
        0 => UpdateFn::new("u_count", 1, |_l, _v, s| {
            Value::Int(s.as_int().unwrap_or(0) + 1)
        }),
        1 => UpdateFn::new("u_last", 1, |_l, v, _s| v.clone()),
        2 => UpdateFn::new("u_pair", 1, |_l, v, s| Value::pair(s.clone(), v.clone())),
        _ => UpdateFn::new("u_max", 1, |_l, v, s| {
            Value::Int(v.as_int().unwrap_or(0).max(s.as_int().unwrap_or(0)))
        }),
    }
}

fn handler_fn(idx: usize) -> HandlerFn {
    match idx % 4 {
        0 => HandlerFn::new("h_first", 1, |_l, args| vec![args[0].clone()]),
        1 => HandlerFn::new("h_tuple", 1, |_l, args| vec![Value::list(args.to_vec())]),
        2 => HandlerFn::new("h_dup", 1, |_l, args| {
            vec![args[0].clone(), args[0].clone()]
        }),
        _ => HandlerFn::new("h_posint", 1, |_l, args| {
            // A filtering handler: only passes positive integers through.
            args.first()
                .and_then(Value::as_int)
                .filter(|i| *i > 0)
                .map(Value::Int)
                .into_iter()
                .collect()
        }),
    }
}

const HEADERS: [&str; 3] = ["alpha", "beta", "gamma"];

/// Generates an arbitrary class expression of bounded depth.
fn arb_expr(depth: u32) -> BoxedStrategy<ClassExpr> {
    let leaf = prop_oneof![
        (0..HEADERS.len()).prop_map(|i| ClassExpr::base(HEADERS[i])),
        (-3i64..4).prop_map(|i| ClassExpr::Constant(Value::Int(i))),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), 0..4usize, -2i64..3)
                .prop_map(|(e, u, init)| e.state(Value::Int(init), update_fn(u))),
            (proptest::collection::vec(inner.clone(), 1..3), 0..4usize)
                .prop_map(|(args, h)| ClassExpr::compose(handler_fn(h), args)),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(ClassExpr::parallel),
            inner.prop_map(ClassExpr::once),
        ]
    })
    .boxed()
}

fn arb_msgs() -> impl Strategy<Value = Vec<Msg>> {
    proptest::collection::vec(
        ((0..HEADERS.len()), -5i64..6).prop_map(|(h, v)| Msg::new(HEADERS[h], Value::Int(v))),
        1..25,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Optimized programs are bisimilar to their unoptimized originals
    /// (the paper's Fig. 7 obligation), for arbitrary specs and inputs.
    #[test]
    fn optimizer_preserves_behaviour(expr in arb_expr(4), msgs in arb_msgs()) {
        let mut interp = InterpretedProcess::compile(&expr);
        let mut fused = optimize(&expr);
        prop_assert!(check_bisimilar(&mut interp, &mut fused, Loc::new(0), &msgs).is_ok());
    }

    /// Generated programs comply with the LoE denotational semantics
    /// (the paper's arrow (c) obligation).
    #[test]
    fn gpm_complies_with_loe(expr in arb_expr(3), msgs in arb_msgs()) {
        prop_assert!(check_complies_with_loe(&expr, Loc::new(1), &msgs).is_ok());
    }

    /// Optimization never grows the program, and shrinks it whenever the
    /// spec repeats a subexpression.
    #[test]
    fn optimizer_never_grows_program(expr in arb_expr(4)) {
        let interp = InterpretedProcess::compile(&expr);
        let fused = optimize(&expr);
        prop_assert!(fused.program_nodes() <= interp.program_nodes());
    }

    /// Values survive an encode/decode roundtrip, and `encoded_len` is exact.
    #[test]
    fn codec_roundtrip(v in arb_value()) {
        let mut buf = bytes::BytesMut::new();
        encode_value(&v, &mut buf);
        prop_assert_eq!(buf.len(), encoded_len(&v));
        let mut bytes = buf.freeze();
        prop_assert_eq!(decode_value(&mut bytes).unwrap(), v);
        prop_assert!(bytes.is_empty());
    }

    /// Messages survive an encode/decode roundtrip.
    #[test]
    fn msg_codec_roundtrip(v in arb_value(), h in "[a-z]{1,12}") {
        let m = Msg::new(h.as_str(), v);
        prop_assert_eq!(decode_msg(encode_msg(&m)).unwrap(), m);
    }
}

fn arb_value() -> BoxedStrategy<Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (0u32..100).prop_map(|i| Value::Loc(Loc::new(i))),
        "[ -~]{0,20}".prop_map(|s| Value::str(&s)),
        proptest::collection::vec(any::<u8>(), 0..40)
            .prop_map(|b| Value::Bytes(bytes::Bytes::from(b))),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Value::pair(a, b)),
            proptest::collection::vec(inner, 0..5).prop_map(Value::list),
        ]
    })
    .boxed()
}

/// CLK end-to-end: running the compiled spec over a random multi-process
/// schedule yields clocks satisfying Lamport's Clock Condition.
#[test]
fn clk_satisfies_clock_condition_on_random_runs() {
    use shadowdb_eventml::{Ctx, Process};
    use shadowdb_loe::{props::check_clock_condition, EventOrder, VTime};

    let n = 4u32;
    let spec = clk::clk_spec(clk::ring_handle(n));
    // One process per location; drive a ring exchange plus random injections.
    let mut procs: Vec<InterpretedProcess> = (0..n)
        .map(|_| InterpretedProcess::compile_spec(&spec))
        .collect();
    let mut eo: EventOrder<Msg> = EventOrder::new();
    let mut now = 0u64;
    // queue of (dest, msg, cause)
    let mut queue = vec![
        (Loc::new(0), clk::clk_msg(Value::Int(0), 0), None),
        (Loc::new(2), clk::clk_msg(Value::Int(9), 0), None),
    ];
    let mut hops = 0;
    while let Some((dest, msg, cause)) = queue.pop() {
        if hops > 40 {
            break;
        }
        hops += 1;
        now += 1;
        let sender = cause.map(|c: shadowdb_loe::EventId| eo.event(c).loc());
        let e = eo.record(dest, VTime::from_micros(now), msg.clone(), cause, sender);
        let outs =
            procs[dest.index() as usize].step(&Ctx::new(dest, VTime::from_micros(now)), &msg);
        for o in outs {
            queue.push((o.dest, o.msg, Some(e)));
        }
    }
    assert!(eo.len() > 10, "the ring should keep forwarding");
    let clock = clk::clock_class();
    let mut checker = InterpretedProcess::compile(&clock);
    let _ = &mut checker;
    // Clock value at each event, via the denotational reading.
    let violation = check_clock_condition(&eo, |eo, e| {
        shadowdb_eventml::denote::denote(&clock, eo, e)
            .into_iter()
            .next()
            .map(|v| v.int())
    });
    assert_eq!(violation, None);
}
