//! The binary wire format for values and messages, plus length-prefixed
//! framing.
//!
//! This module is the **single codec boundary** of the system: everything
//! that crosses a byte boundary — TCP links in `shadowdb-tcpnet`, the
//! wire-framed mode of `shadowdb-livenet`, the ~50 KB state-transfer
//! batches of Fig. 10(b), and the 140-byte payloads of the
//! broadcast-service benchmark (Fig. 8) — goes through `encode_msg_into`
//! and `decode_msg` with [`FrameEncoder`]/[`FrameReader`] supplying frame
//! boundaries on top.
//!
//! # Robustness contract
//!
//! Decoding is **total** on arbitrary bytes: it never panics and never
//! sizes an allocation from an untrusted length prefix. Every claimed
//! length is checked against the bytes actually remaining before anything
//! is allocated ([`DecodeError::LengthOverflow`]), value nesting is
//! bounded by [`MAX_DEPTH`] ([`DecodeError::TooDeep`]), and frames are
//! bounded by the reader's configured maximum
//! ([`DecodeError::FrameTooLarge`]). Encoding of any [`Value`] the system
//! can construct within [`MAX_DEPTH`] round-trips exactly.
//!
//! # Allocation discipline
//!
//! [`FrameEncoder`] owns a per-connection scratch [`BytesMut`]; in steady
//! state an encode clears and refills it in place, so sending allocates
//! nothing (DESIGN §7). Decoding allocates only the `Value` tree it
//! returns.

use crate::value::{Header, Msg, Value};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use shadowdb_loe::Loc;
use std::fmt;
use std::sync::Arc;

/// Deepest value nesting the decoder accepts (and the encoder is expected
/// to produce). Protocol messages are a handful of levels deep; the bound
/// exists so adversarial input cannot trigger unbounded recursion.
pub const MAX_DEPTH: u32 = 128;

/// Longest header name the message decoder accepts. Headers name protocol
/// message kinds and are interned into a global, never-freed symbol table,
/// so unbounded attacker-chosen names would be a memory leak.
pub const MAX_HEADER_LEN: usize = 256;

/// Default cap on a single frame's payload, sized to fit the largest
/// legitimate message (state-transfer batches are ~50 KB) with two orders
/// of magnitude of headroom.
pub const DEFAULT_MAX_FRAME: usize = 16 * 1024 * 1024;

/// An error decoding a value, message, or frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// An unknown type tag was encountered.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A length prefix claims more bytes or elements than could possibly
    /// remain in the buffer — the decoder refuses before allocating.
    LengthOverflow {
        /// What the prefix claimed.
        claimed: u64,
        /// Bytes actually remaining after the prefix.
        remaining: usize,
    },
    /// Value nesting exceeded [`MAX_DEPTH`].
    TooDeep,
    /// A message header name exceeded [`MAX_HEADER_LEN`].
    HeaderTooLong(usize),
    /// A frame's length prefix exceeded the reader's configured maximum.
    FrameTooLarge {
        /// What the frame header claimed.
        claimed: usize,
        /// The reader's cap.
        max: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "buffer truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown type tag {t}"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in string"),
            DecodeError::LengthOverflow { claimed, remaining } => write!(
                f,
                "length prefix claims {claimed} with only {remaining} bytes remaining"
            ),
            DecodeError::TooDeep => write!(f, "value nesting exceeds {MAX_DEPTH}"),
            DecodeError::HeaderTooLong(n) => {
                write!(f, "header name of {n} bytes exceeds {MAX_HEADER_LEN}")
            }
            DecodeError::FrameTooLarge { claimed, max } => {
                write!(f, "frame of {claimed} bytes exceeds the {max}-byte cap")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

const TAG_UNIT: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_LOC: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_BYTES: u8 = 5;
const TAG_PAIR: u8 = 6;
const TAG_LIST: u8 = 7;

/// Appends the encoding of `v` to `buf`.
pub fn encode_value(v: &Value, buf: &mut BytesMut) {
    match v {
        Value::Unit => buf.put_u8(TAG_UNIT),
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(*b as u8);
        }
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            buf.put_i64_le(*i);
        }
        Value::Loc(l) => {
            buf.put_u8(TAG_LOC);
            buf.put_u32_le(l.index());
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            buf.put_u8(TAG_BYTES);
            buf.put_u32_le(b.len() as u32);
            buf.put_slice(b);
        }
        Value::Pair(p) => {
            buf.put_u8(TAG_PAIR);
            encode_value(&p.0, buf);
            encode_value(&p.1, buf);
        }
        Value::List(l) => {
            buf.put_u8(TAG_LIST);
            buf.put_u32_le(l.len() as u32);
            for item in l.iter() {
                encode_value(item, buf);
            }
        }
    }
}

/// Decodes one value from the front of `buf`, advancing it.
///
/// Total on arbitrary input: never panics, never allocates proportionally
/// to an unvalidated length prefix.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the buffer is truncated, malformed, claims
/// impossible lengths, or nests deeper than [`MAX_DEPTH`].
pub fn decode_value(buf: &mut Bytes) -> Result<Value, DecodeError> {
    decode_value_at(buf, 0)
}

fn decode_value_at(buf: &mut Bytes, depth: u32) -> Result<Value, DecodeError> {
    if depth >= MAX_DEPTH {
        return Err(DecodeError::TooDeep);
    }
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let tag = buf.get_u8();
    match tag {
        TAG_UNIT => Ok(Value::Unit),
        TAG_BOOL => {
            need(buf, 1)?;
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        TAG_INT => {
            need(buf, 8)?;
            Ok(Value::Int(buf.get_i64_le()))
        }
        TAG_LOC => {
            need(buf, 4)?;
            Ok(Value::Loc(Loc::new(buf.get_u32_le())))
        }
        TAG_STR => {
            // Borrowing decode: the string is a zero-copy UTF-8 view of
            // the input buffer (validated once), sharing its storage.
            let len = claimed_len(buf)?;
            let raw = buf.split_to(len);
            let s = crate::value::SharedStr::from_utf8(raw).map_err(|_| DecodeError::BadUtf8)?;
            Ok(Value::Str(s))
        }
        TAG_BYTES => {
            // Zero-copy: the payload body aliases the input buffer.
            let len = claimed_len(buf)?;
            Ok(Value::Bytes(buf.split_to(len)))
        }
        TAG_PAIR => {
            let a = decode_value_at(buf, depth + 1)?;
            let b = decode_value_at(buf, depth + 1)?;
            Ok(Value::pair(a, b))
        }
        TAG_LIST => {
            // Every element occupies at least one byte (its tag), so a
            // claimed element count above the remaining byte count is a lie;
            // reject it *before* anything is sized from it. Even a truthful
            // count only bounds *bytes*, not element slots (a Value slot is
            // larger than a byte), so the pre-reservation is additionally
            // clamped and large lists grow the honest way.
            let len = claimed_len(buf)?;
            let mut items = Vec::with_capacity(len.min(4096));
            for _ in 0..len {
                items.push(decode_value_at(buf, depth + 1)?);
            }
            Ok(Value::list(items))
        }
        other => Err(DecodeError::BadTag(other)),
    }
}

/// Reads a u32 length prefix and validates it against the bytes remaining,
/// so callers may use it both to slice and to size allocations.
fn claimed_len(buf: &mut Bytes) -> Result<usize, DecodeError> {
    need(buf, 4)?;
    let len = buf.get_u32_le() as usize;
    if len > buf.remaining() {
        return Err(DecodeError::LengthOverflow {
            claimed: len as u64,
            remaining: buf.remaining(),
        });
    }
    Ok(len)
}

/// Appends the encoding of `msg` (header + body) to `buf` — the
/// scratch-buffer entry point used by [`FrameEncoder`].
pub fn encode_msg_into(msg: &Msg, buf: &mut BytesMut) {
    buf.put_u32_le(msg.header.name().len() as u32);
    buf.put_slice(msg.header.name().as_bytes());
    encode_value(&msg.body, buf);
}

/// Encodes a message (header + body) to fresh bytes.
pub fn encode_msg(msg: &Msg) -> Bytes {
    let mut buf = BytesMut::new();
    encode_msg_into(msg, &mut buf);
    buf.freeze()
}

/// Decodes a message produced by [`encode_msg`]/[`encode_msg_into`].
///
/// # Errors
///
/// Returns a [`DecodeError`] if the buffer is truncated or malformed.
pub fn decode_msg(mut buf: Bytes) -> Result<Msg, DecodeError> {
    need(&buf, 4)?;
    let len = buf.get_u32_le() as usize;
    if len > MAX_HEADER_LEN {
        return Err(DecodeError::HeaderTooLong(len));
    }
    if len > buf.remaining() {
        return Err(DecodeError::LengthOverflow {
            claimed: len as u64,
            remaining: buf.remaining(),
        });
    }
    let raw = buf.split_to(len);
    let name = std::str::from_utf8(&raw).map_err(|_| DecodeError::BadUtf8)?;
    let header = Header::new(name);
    let body = decode_value(&mut buf)?;
    Ok(Msg { header, body })
}

/// The number of bytes [`encode_value`] would produce for `v`.
pub fn encoded_len(v: &Value) -> usize {
    match v {
        Value::Unit => 1,
        Value::Bool(_) => 2,
        Value::Int(_) => 9,
        Value::Loc(_) => 5,
        Value::Str(s) => 5 + s.len(),
        Value::Bytes(b) => 5 + b.len(),
        Value::Pair(p) => 1 + encoded_len(&p.0) + encoded_len(&p.1),
        Value::List(l) => 5 + l.iter().map(encoded_len).sum::<usize>(),
    }
}

fn need(buf: &impl Buf, n: usize) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(DecodeError::Truncated)
    } else {
        Ok(())
    }
}

/// Frames messages for a byte stream: `[u32_le payload_len][payload]`,
/// where the payload is [`encode_msg_into`]'s output.
///
/// One encoder per connection: it owns a scratch buffer that is cleared
/// and refilled in place, so steady-state sends allocate nothing once the
/// buffer has grown to the connection's working-set frame size.
#[derive(Default)]
pub struct FrameEncoder {
    scratch: BytesMut,
}

impl FrameEncoder {
    /// A fresh encoder with an empty scratch buffer.
    pub fn new() -> FrameEncoder {
        FrameEncoder::default()
    }

    /// Encodes `msg` as one frame and returns the wire bytes, valid until
    /// the next call. The caller writes the slice to its transport.
    pub fn encode(&mut self, msg: &Msg) -> &[u8] {
        self.scratch.clear();
        self.scratch.put_u32_le(0); // length, patched below
        encode_msg_into(msg, &mut self.scratch);
        let len = (self.scratch.len() - 4) as u32;
        self.scratch[..4].copy_from_slice(&len.to_le_bytes());
        &self.scratch
    }
}

/// Smallest reassembly-buffer allocation: one socket read's worth, so a
/// fresh connection does not crawl through doubling steps.
const MIN_STORAGE: usize = 16 * 1024;

/// A reassembly buffer larger than this is reclaimed once the live tail
/// fits in a quarter of it — a single oversized frame must not pin its
/// high-water allocation for the connection's lifetime.
const SHRINK_AT: usize = 256 * 1024;

fn oversized(cap: usize, needed: usize) -> bool {
    cap > SHRINK_AT && needed <= cap / 4
}

/// Reassembles frames from a byte stream fed in arbitrary chunks, the
/// receive half of [`FrameEncoder`].
///
/// Feed raw bytes with [`FrameReader::extend`] — or read straight from a
/// socket into [`FrameReader::spare_mut`] and [`FrameReader::commit`] the
/// byte count — then pull complete messages with
/// [`FrameReader::next_msg`]. A frame claiming more than the configured
/// cap is rejected *from its header alone* — the reader never buffers
/// toward an impossible length.
///
/// # Zero-copy ownership
///
/// The buffer is shared storage (`Arc<Vec<u8>>`): `next_msg` hands the
/// decoder a [`Bytes`] *view* of the frame in place, so decoded
/// `Value::Bytes`/`Value::Str` bodies alias the reassembly buffer rather
/// than copying out of it. Writing new bytes requires unique ownership
/// (`Arc::get_mut`): while any decoded view is still alive the next write
/// swaps in fresh storage and copies only the unconsumed tail, so views
/// remain valid forever and the steady state — views dropped before the
/// next read — reuses the buffer allocation-free.
pub struct FrameReader {
    storage: Arc<Vec<u8>>,
    /// First unconsumed byte; `storage[start..filled]` is live.
    start: usize,
    /// One past the last byte received.
    filled: usize,
    max_frame: usize,
}

impl FrameReader {
    /// A reader with the [`DEFAULT_MAX_FRAME`] payload cap.
    pub fn new() -> FrameReader {
        FrameReader::with_max_frame(DEFAULT_MAX_FRAME)
    }

    /// A reader capping frame payloads at `max_frame` bytes.
    pub fn with_max_frame(max_frame: usize) -> FrameReader {
        FrameReader {
            storage: Arc::new(Vec::new()),
            start: 0,
            filled: 0,
            max_frame,
        }
    }

    /// Appends raw bytes received from the transport.
    pub fn extend(&mut self, chunk: &[u8]) {
        if chunk.is_empty() {
            return;
        }
        let spare = self.spare_mut(chunk.len());
        spare[..chunk.len()].copy_from_slice(chunk);
        self.commit(chunk.len());
    }

    /// Writable spare room of at least `min` bytes, for reading from a
    /// socket directly into the reassembly buffer. Follow with
    /// [`FrameReader::commit`] for however many bytes landed.
    pub fn spare_mut(&mut self, min: usize) -> &mut [u8] {
        self.reserve(min.max(1));
        let filled = self.filled;
        let vec = Arc::get_mut(&mut self.storage).expect("reserve leaves storage unique");
        &mut vec[filled..]
    }

    /// Marks `n` bytes of [`FrameReader::spare_mut`] as received.
    pub fn commit(&mut self, n: usize) {
        assert!(self.filled + n <= self.storage.len(), "commit past spare");
        self.filled += n;
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.filled - self.start
    }

    /// Identity of the current backing allocation — lets tests observe
    /// when decoded views alias the reassembly buffer and when a write
    /// swapped in fresh storage.
    pub fn storage_id(&self) -> usize {
        Arc::as_ptr(&self.storage) as usize
    }

    /// Ensures unique storage with at least `extra` bytes of spare room,
    /// compacting in place when possible and reallocating right-sized
    /// when views pin the buffer, it is too small, or it ballooned past
    /// the working set.
    fn reserve(&mut self, extra: usize) {
        let live = self.filled - self.start;
        let needed = live + extra;
        if let Some(vec) = Arc::get_mut(&mut self.storage) {
            // Reclaim check first: a ballooned buffer is replaced even
            // when it has plenty of spare room — spare is exactly what an
            // oversized buffer has too much of.
            if !oversized(vec.len(), needed) {
                if vec.len() - self.filled >= extra {
                    return;
                }
                if vec.len() >= needed {
                    vec.copy_within(self.start..self.filled, 0);
                    self.start = 0;
                    self.filled = live;
                    return;
                }
            }
        }
        let new_cap = needed.next_power_of_two().max(MIN_STORAGE);
        let mut fresh = vec![0u8; new_cap];
        fresh[..live].copy_from_slice(&self.storage[self.start..self.filled]);
        self.storage = Arc::new(fresh);
        self.start = 0;
        self.filled = live;
    }

    /// Extracts the next complete message, if a full frame has arrived.
    ///
    /// `Ok(None)` means "need more bytes". After any `Err` the stream is
    /// unsynchronized and the connection should be dropped.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the frame header exceeds the cap or the
    /// payload fails to decode.
    pub fn next_msg(&mut self) -> Result<Option<Msg>, DecodeError> {
        if self.buffered() < 4 {
            return Ok(None);
        }
        let head = &self.storage[self.start..];
        let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]) as usize;
        if len > self.max_frame {
            return Err(DecodeError::FrameTooLarge {
                claimed: len,
                max: self.max_frame,
            });
        }
        if self.buffered() < 4 + len {
            return Ok(None);
        }
        let body = self.start + 4;
        let payload = Bytes::from_shared(self.storage.clone(), body, body + len);
        self.start = body + len;
        if self.start == self.filled {
            // Empty: rewind the indices. Writes stay safe regardless of
            // live views because they go through `reserve`'s uniqueness
            // check, not these offsets.
            self.start = 0;
            self.filled = 0;
        }
        decode_msg(payload).map(Some)
    }
}

impl Default for FrameReader {
    fn default() -> FrameReader {
        FrameReader::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) {
        let mut buf = BytesMut::new();
        encode_value(&v, &mut buf);
        assert_eq!(buf.len(), encoded_len(&v));
        let mut bytes = buf.freeze();
        assert_eq!(decode_value(&mut bytes).unwrap(), v);
        assert!(bytes.is_empty());
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(Value::Unit);
        roundtrip(Value::Bool(true));
        roundtrip(Value::Int(-42));
        roundtrip(Value::Loc(Loc::new(3)));
        roundtrip(Value::str("héllo"));
        roundtrip(Value::Bytes(Bytes::from_static(b"\x00\x01\x02")));
    }

    #[test]
    fn compound_roundtrips() {
        roundtrip(Value::pair(
            Value::Int(1),
            Value::list([Value::Unit, Value::Bool(false)]),
        ));
        roundtrip(Value::list((0..100).map(Value::from)));
    }

    #[test]
    fn msg_roundtrip() {
        let m = Msg::new("vote", Value::pair(Value::Int(1), Value::str("x")));
        assert_eq!(decode_msg(encode_msg(&m)).unwrap(), m);
    }

    #[test]
    fn truncation_detected() {
        let mut buf = BytesMut::new();
        encode_value(&Value::Int(5), &mut buf);
        let mut short = buf.freeze().slice(0..4);
        assert_eq!(decode_value(&mut short), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_tag_detected() {
        let mut bytes = Bytes::from_static(&[99]);
        assert_eq!(decode_value(&mut bytes), Err(DecodeError::BadTag(99)));
    }

    /// The satellite regression: a tiny buffer claiming a 2^31-element list
    /// must return a `DecodeError`, not size an allocation from the claim.
    #[test]
    fn huge_claimed_list_rejected_without_allocating() {
        let mut raw = vec![TAG_LIST];
        raw.extend_from_slice(&(1u32 << 31).to_le_bytes()); // 4-byte prefix
        let mut bytes = Bytes::from(raw);
        assert_eq!(
            decode_value(&mut bytes),
            Err(DecodeError::LengthOverflow {
                claimed: 1 << 31,
                remaining: 0,
            })
        );
    }

    #[test]
    fn huge_claimed_string_rejected() {
        let mut raw = vec![TAG_STR];
        raw.extend_from_slice(&u32::MAX.to_le_bytes());
        raw.extend_from_slice(b"abc");
        let mut bytes = Bytes::from(raw);
        assert!(matches!(
            decode_value(&mut bytes),
            Err(DecodeError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn nesting_bounded() {
        // A chain of MAX_DEPTH pair tags: each nests one level deeper, with
        // no terminal value — depth must trip before truncation.
        let raw = vec![TAG_PAIR; MAX_DEPTH as usize + 1];
        let mut bytes = Bytes::from(raw);
        assert_eq!(decode_value(&mut bytes), Err(DecodeError::TooDeep));

        // Just under the limit decodes fine.
        let mut deep = Value::Unit;
        for _ in 0..MAX_DEPTH - 1 {
            deep = Value::pair(deep, Value::Unit);
        }
        roundtrip(deep);
    }

    #[test]
    fn oversized_header_rejected() {
        let mut raw = Vec::new();
        raw.put_u32_le(MAX_HEADER_LEN as u32 + 1);
        raw.extend(std::iter::repeat_n(b'a', MAX_HEADER_LEN + 1));
        raw.push(TAG_UNIT);
        assert_eq!(
            decode_msg(Bytes::from(raw)),
            Err(DecodeError::HeaderTooLong(MAX_HEADER_LEN + 1))
        );
    }

    #[test]
    fn frame_roundtrip_and_reuse() {
        let mut enc = FrameEncoder::new();
        let mut rdr = FrameReader::new();
        let msgs = [
            Msg::new("vote", Value::pair(Value::Int(1), Value::str("x"))),
            Msg::new("ack", Value::Unit),
            Msg::new("batch", Value::list((0..50).map(Value::from))),
        ];
        for m in &msgs {
            rdr.extend(enc.encode(m));
        }
        for m in &msgs {
            assert_eq!(rdr.next_msg().unwrap().as_ref(), Some(m));
        }
        assert_eq!(rdr.next_msg().unwrap(), None);
        assert_eq!(rdr.buffered(), 0);
    }

    #[test]
    fn frames_reassemble_from_single_byte_chunks() {
        let mut enc = FrameEncoder::new();
        let mut rdr = FrameReader::new();
        let m = Msg::new("drip", Value::list((0..10).map(Value::from)));
        let wire: Vec<u8> = enc.encode(&m).to_vec();
        for (i, b) in wire.iter().enumerate() {
            rdr.extend(std::slice::from_ref(b));
            let got = rdr.next_msg().unwrap();
            if i + 1 < wire.len() {
                assert_eq!(got, None, "no frame before byte {}", i + 1);
            } else {
                assert_eq!(got, Some(m.clone()));
            }
        }
    }

    #[test]
    fn oversized_frame_rejected_from_header_alone() {
        let mut rdr = FrameReader::with_max_frame(1024);
        rdr.extend(&(2048u32).to_le_bytes());
        assert_eq!(
            rdr.next_msg(),
            Err(DecodeError::FrameTooLarge {
                claimed: 2048,
                max: 1024,
            })
        );
    }

    #[test]
    fn decoded_bytes_alias_reassembly_buffer() {
        let mut enc = FrameEncoder::new();
        let mut rdr = FrameReader::new();
        let m = Msg::new("blob", Value::Bytes(Bytes::from(vec![7u8; 512])));
        rdr.extend(enc.encode(&m));
        let before = rdr.storage_id();
        let got = rdr.next_msg().unwrap().unwrap();
        let Value::Bytes(view) = &got.body else {
            panic!("expected bytes body")
        };
        // Zero-copy: the decoded body is a view of the reader's storage.
        assert_eq!(view.storage_id(), before);
        // While the view lives, the next write must swap in fresh storage
        // rather than scribble under it.
        rdr.extend(enc.encode(&m));
        assert_ne!(rdr.storage_id(), before);
        assert_eq!(&view[..], &[7u8; 512][..]);
        drop(got);
        // With views gone, further writes reuse the buffer in place.
        let stable = rdr.storage_id();
        assert!(rdr.next_msg().unwrap().is_some());
        rdr.extend(enc.encode(&Msg::new("ack", Value::Unit)));
        assert_eq!(rdr.storage_id(), stable);
    }

    /// Satellite regression: one oversized frame must not pin its
    /// high-water allocation after it has been consumed.
    #[test]
    fn reassembly_buffer_reclaimed_after_oversized_frame() {
        let mut enc = FrameEncoder::new();
        let mut rdr = FrameReader::new();
        let big = Msg::new("big", Value::Bytes(Bytes::from(vec![1u8; 1 << 20])));
        rdr.extend(enc.encode(&big));
        assert!(rdr.next_msg().unwrap().is_some());
        let ballooned = rdr.storage_id();
        // Steady small traffic: the next reserve sees a live tail far
        // below the high-water mark and swaps in right-sized storage.
        let small = Msg::new("s", Value::Int(1));
        rdr.extend(enc.encode(&small));
        assert_ne!(rdr.storage_id(), ballooned, "storage not reclaimed");
        assert_eq!(rdr.next_msg().unwrap(), Some(small));
    }

    #[test]
    fn spare_mut_commit_matches_extend() {
        let mut enc = FrameEncoder::new();
        let mut rdr = FrameReader::new();
        let m = Msg::new("direct", Value::list((0..20).map(Value::from)));
        let wire = enc.encode(&m).to_vec();
        // Land the wire bytes in two uneven chunks via the socket path.
        let split = wire.len() / 3;
        for chunk in [&wire[..split], &wire[split..]] {
            let spare = rdr.spare_mut(chunk.len());
            spare[..chunk.len()].copy_from_slice(chunk);
            rdr.commit(chunk.len());
        }
        assert_eq!(rdr.next_msg().unwrap(), Some(m));
        assert_eq!(rdr.buffered(), 0);
    }

    #[test]
    fn payload_sizing_matches_fig8_setup() {
        // A 140-byte opaque payload, as in Sec. IV-A.
        let payload = Value::Bytes(Bytes::from(vec![0u8; 140]));
        assert_eq!(encoded_len(&payload), 145); // tag + len + 140
    }
}
