//! Model checking cross-shard atomic commitment.
//!
//! The *shipping* sharded builder — `ShardedDeployment::build_smr`, the
//! same function that assembles the multi-group deployment under the
//! simulator — here builds a 2-shard, window-2 instance into
//! `shadowdb_mck::WorldBuilder`, and the checker explores delivery
//! interleavings of the full graph: two TwoThird broadcast services, four
//! replicas, and every 2PC record (Prepare, Vote, Decision, Done) as an
//! ordinary in-flight message the adversary may reorder.
//!
//! The shared `TwoPcProbe` is *unsound* under the checker (forked branches
//! would all push into one `Arc`), so atomicity is stated over what the
//! environment observes: replies to the client port. The abort test is the
//! sharp one — a Prepare whose participant list names a shard the
//! transaction never touches makes that shard vote no, so the decision
//! must be abort *everywhere*; a racing read on the yes-voting shard must
//! then never observe the part applied. A schedule in which one shard
//! commits while the other aborts would surface as exactly that read.
//!
//! TwoThird keeps the service state space bounded (Paxos leader timers
//! re-arm forever); `machines: 2` keeps each group small. The bounds
//! truncate the space — this is bounded checking, not a proof — but the
//! non-vacuity asserts guarantee the explored prefix contains complete
//! protocol runs, not just stalled ones.

use shadowdb::deploy::{ShardedDeployment, ShardedOptions};
use shadowdb::msgs::{parse_reply, TxnEnvelope};
use shadowdb_loe::VTime;
use shadowdb_mck::{Options, WorldBuilder};
use shadowdb_runtime::Runtime;
use shadowdb_sqldb::SqlValue;
use shadowdb_tob::broadcast_msg;
use shadowdb_tob::deploy::BackendKind;
use shadowdb_workloads::{bank, TwoPcRecord, TxnRequest};
use std::cell::Cell;

const ACCOUNTS: usize = 4;
const SHARDS: usize = 2;

fn checker_options() -> ShardedOptions {
    let mut options = ShardedOptions::new(
        SHARDS,
        0, // clients are environment ports, not deployed processes
        |_| Vec::new(),
        |shard, db| bank::load_shard(db, ACCOUNTS, SHARDS, shard).expect("bank loads"),
    );
    options.machines = 2;
    options.backend = BackendKind::TwoThird;
    options.window = Some(2);
    options
}

/// Broadcasts `env` into shard `p`'s group, the way the sharded client
/// router does for SMR groups.
fn submit(
    world: &mut WorldBuilder,
    d: &ShardedDeployment,
    p: usize,
    server: usize,
    msgid: i64,
    env: &TxnEnvelope,
) {
    let servers = &d.groups[p].tob.servers;
    world.send_at(
        VTime::ZERO,
        servers[server % servers.len()],
        broadcast_msg(env.client, msgid, env.to_value()),
    );
}

/// A genuine cross-shard transfer (account 0 on shard 0, account 1 on
/// shard 1): in every explored interleaving of the two groups' services,
/// replicas, and 2PC records, the replicas of the coordinator group agree
/// on the answer and the answer is commit — bank transfers always vote
/// yes, so any abort would mean a vote or decision was corrupted in
/// flight.
#[test]
fn mck_sharded_cross_shard_commit_replies_agree_in_all_interleavings() {
    let mut world = WorldBuilder::new();
    let (client, _rx) = Runtime::port(&mut world);
    let d = ShardedDeployment::build_smr(&mut world, &checker_options());

    let txn = TxnRequest::BankTransfer {
        from: 0,
        to: 1,
        amount: 100,
    };
    let participants = d.map.participants(&txn);
    assert_eq!(
        participants,
        vec![0, 1],
        "the transfer must span both shards"
    );
    let env = TxnEnvelope::new(
        client,
        0,
        TxnRequest::TwoPc(TwoPcRecord::Prepare {
            txnid: (client, 0),
            participants: participants.clone(),
            txn: Box::new(txn),
        }),
    );
    for (i, p) in participants.iter().enumerate() {
        submit(&mut world, &d, *p, 0, i as i64, &env);
    }

    let replied = Cell::new(false);
    let outcome = world.explore(
        Options {
            max_depth: 150,
            max_states: 10_000,
            ..Options::default()
        },
        |w| {
            let mut answer: Option<(bool, Vec<SqlValue>)> = None;
            for (_, _, msg) in &w.observations {
                let Some(reply) = parse_reply(msg) else {
                    continue;
                };
                if reply.cseq != 0 {
                    return Err(format!("reply for unknown cseq {}", reply.cseq));
                }
                if !reply.committed {
                    return Err("cross-shard transfer aborted".into());
                }
                replied.set(true);
                let this = (reply.committed, reply.results.clone());
                match &answer {
                    Some(prev) if *prev != this => {
                        return Err(format!("replicas disagree: {prev:?} vs {this:?}"));
                    }
                    _ => answer = Some(this),
                }
            }
            Ok(())
        },
    );
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    assert!(
        replied.get(),
        "vacuous exploration: no schedule completed the 2PC within bounds"
    );
    assert!(
        outcome.states_visited > 100,
        "the interleaving space should be non-trivial: {}",
        outcome.states_visited
    );
    eprintln!(
        "sharded commit: explored {} states (depth {}, truncated: {})",
        outcome.states_visited, outcome.max_depth_reached, outcome.truncated
    );
}

/// The partial-commit detector. A Prepare whose participant list names
/// shard 1 for a deposit that only touches shard 0 makes shard 1's part
/// `None`, so shard 1 votes no and the decision must be abort — on *both*
/// shards. Shard 0 voted yes (its part is a perfectly committable
/// deposit), so a protocol that ever let one shard commit while the other
/// aborts would apply the deposit on shard 0 in some interleaving; the
/// racing read of the account would then observe 1050. The invariant
/// demands the 2PC answer is always abort and the read only ever sees the
/// untouched balance, in every explored schedule.
#[test]
fn mck_sharded_abort_never_applies_on_any_shard() {
    let mut world = WorldBuilder::new();
    let (client, _rx) = Runtime::port(&mut world);
    let d = ShardedDeployment::build_smr(&mut world, &checker_options());

    let env = TxnEnvelope::new(
        client,
        0,
        TxnRequest::TwoPc(TwoPcRecord::Prepare {
            txnid: (client, 0),
            participants: vec![0, 1],
            txn: Box::new(TxnRequest::BankDeposit {
                account: 0,
                amount: 50,
            }),
        }),
    );
    submit(&mut world, &d, 0, 0, 0, &env);
    submit(&mut world, &d, 1, 0, 1, &env);
    // The read races the whole 2PC on shard 0 — entering through the
    // *other* server so its slot contends with the Prepare's.
    let read = TxnEnvelope::new(client, 1, TxnRequest::BankRead { account: 0 });
    submit(&mut world, &d, 0, 1, 2, &read);

    let (aborted, read_done) = (Cell::new(false), Cell::new(false));
    let outcome = world.explore(
        Options {
            max_depth: 150,
            max_states: 10_000,
            ..Options::default()
        },
        |w| {
            for (_, _, msg) in &w.observations {
                let Some(reply) = parse_reply(msg) else {
                    continue;
                };
                match reply.cseq {
                    0 => {
                        if reply.committed {
                            return Err("forged-participant 2PC must abort".into());
                        }
                        aborted.set(true);
                    }
                    1 => {
                        // Before the Prepare, between Prepare and abort
                        // (the vote's tentative execution rolls back), or
                        // after the abort applied: always 1000. 1050 is a
                        // partial commit.
                        match reply.results.first() {
                            Some(SqlValue::Int(1_000)) => read_done.set(true),
                            other => {
                                return Err(format!(
                                    "aborted deposit leaked into a read: {other:?}"
                                ));
                            }
                        }
                    }
                    c => return Err(format!("reply for unknown cseq {c}")),
                }
            }
            Ok(())
        },
    );
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    assert!(
        aborted.get() && read_done.get(),
        "vacuous exploration: abort replied {}, read replied {}",
        aborted.get(),
        read_done.get()
    );
    assert!(
        outcome.states_visited > 100,
        "the interleaving space should be non-trivial: {}",
        outcome.states_visited
    );
    // Agreement across the coordinator group's replicas is covered by the
    // commit test; here the checked surface is outcome stability: once any
    // replica answered abort, no schedule extension may flip it.
    eprintln!(
        "sharded abort: explored {} states (depth {}, truncated: {})",
        outcome.states_visited, outcome.max_depth_reached, outcome.truncated
    );
}
