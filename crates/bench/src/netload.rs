//! Closed-loop echo load over the TCP event-loop runtime.
//!
//! Spawns `pairs` pinger/echo node pairs on a [`TcpNet`], each keeping
//! `depth` pings in flight (the pipelining depth): the pinger fires a
//! fresh ping for every pong it receives, so after the initial burst the
//! traffic is entirely self-driving node-to-node socket I/O — framing,
//! kernel crossings, zero-copy decode, and inline process stepping on the
//! shard event loops, with no injection path in the measured window.
//!
//! The driver port only sees two control messages per pair ("warm" when a
//! pair finishes its warm-up echoes, "done" at the end), so the measured
//! rate is the transport's, not the port channel's.

use shadowdb_eventml::{Ctx, FnProcess, Msg, SendInstr, Value};
use shadowdb_loe::Loc;
use shadowdb_tcpnet::TcpNet;
use std::time::{Duration, Instant};

/// Sustained echoes/sec across `pairs` closed-loop pinger/echo pairs at
/// the given pipelining `depth`. Each completed echo is one ping plus one
/// pong — two framed messages over two sockets. `warm` echoes per pair
/// run before the clock starts; `echoes` per pair are measured.
pub fn echo_rate(pairs: usize, depth: usize, warm: u64, echoes: u64) -> f64 {
    assert!(pairs > 0 && depth > 0 && echoes > 0);
    let mut net = TcpNet::builder().seeded(11).spawn();
    let port_loc = Loc::new(2 * pairs as u32);
    let mut pingers = Vec::with_capacity(pairs);
    for i in 0..pairs as u32 {
        let echo_loc = Loc::new(2 * i);
        let echo = net.add_node(Box::new(FnProcess::new(
            (),
            |_s, _c: &Ctx, m: &Msg| match m.body.as_loc() {
                Some(from) => vec![SendInstr::now(from, Msg::new("pong", Value::Unit))],
                None => vec![],
            },
        )));
        assert_eq!(echo, echo_loc);
        let pinger = net.add_node(Box::new(FnProcess::new(
            (warm, echoes),
            move |s: &mut (u64, u64), ctx: &Ctx, m: &Msg| {
                let ping = || SendInstr::now(echo_loc, Msg::new("ping", Value::Loc(ctx.slf)));
                match m.header.name() {
                    "start" => (0..depth).map(|_| ping()).collect(),
                    "pong" if s.0 > 0 => {
                        s.0 -= 1;
                        if s.0 == 0 {
                            // Warm-up over: tell the driver, keep flying.
                            vec![
                                ping(),
                                SendInstr::now(port_loc, Msg::new("warm", Value::Unit)),
                            ]
                        } else {
                            vec![ping()]
                        }
                    }
                    "pong" if s.1 > 0 => {
                        s.1 -= 1;
                        if s.1 == 0 {
                            vec![SendInstr::now(port_loc, Msg::new("done", Value::Unit))]
                        } else {
                            vec![ping()]
                        }
                    }
                    // Stragglers from the final in-flight window.
                    _ => vec![],
                }
            },
        )));
        assert_eq!(pinger, Loc::new(2 * i + 1));
        pingers.push(pinger);
    }
    let (port, rx) = net.port();
    assert_eq!(port, port_loc);
    for p in &pingers {
        net.send(*p, Msg::new("start", Value::Unit));
    }
    let wait_for = |name: &str| {
        for _ in 0..pairs {
            let m = rx
                .recv_timeout(Duration::from_secs(60))
                .unwrap_or_else(|_| panic!("timed out waiting for {name}"));
            assert_eq!(m.header.name(), name);
        }
    };
    wait_for("warm");
    let t = Instant::now();
    wait_for("done");
    let rate = (pairs as u64 * echoes) as f64 / t.elapsed().as_secs_f64();
    net.shutdown();
    rate
}
