//! ShadowDB: a replicated database built on a verified broadcast service.
//!
//! The paper's headline artifact (Sec. III): a highly available database
//! obtained by combining unmodified embedded SQL databases (assumed to fail
//! more-or-less independently) with replication protocols whose critical
//! machinery is generated from formally analysable specifications.
//! ShadowDB comes in two configurations, both guaranteeing **strict
//! serializability**:
//!
//! * [`pbr`] — **primary-backup replication**: the normal case is
//!   hand-written and simple (the primary executes a transaction, forwards
//!   it to the backups, and replies once *all* backups acknowledged);
//!   failure handling — the hard part — runs through the verified
//!   total-order broadcast service, which serializes configuration
//!   proposals so that every surviving replica agrees on the sequence of
//!   configurations.
//! * [`smr`] — **state machine replication**: every transaction is
//!   totally ordered by the broadcast service; every replica executes every
//!   transaction; clients take the first answer. A replica crash is
//!   invisible to clients.
//!
//! Supporting modules: [`msgs`] (wire messages), [`client`] (closed-loop
//! clients with resend and duplicate suppression), [`deploy`] (full
//! deployments inside the simulator, with databases co-located with
//! broadcast-service processes as on the paper's testbed), and
//! [`diversity`] (each replica can run a different database engine — H2,
//! HSQLDB, Derby — to mask correlated environment failures).

pub mod chaos;
pub mod client;
pub mod deploy;
pub mod diversity;
pub mod msgs;
pub mod pbr;
pub mod serializability;
pub mod shard;
pub mod smr;

pub use chaos::{
    soak_durability_pbr, soak_durability_smr, soak_pbr, soak_sharded_pbr, soak_sharded_smr,
    soak_smr, ChaosOptions, ChaosReport,
};
pub use client::{DbClient, DbClientStats};
pub use deploy::{PbrDeployment, ShardedDeployment, SmrDeployment};
pub use msgs::ReplicaConfig;
pub use shard::{check_two_pc_atomicity, GroupRoute, ShardRole, TwoPcEngine, TwoPcProbe};
