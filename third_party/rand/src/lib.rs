//! Offline stand-in for the `rand` crate.
//!
//! Provides [`rngs::SmallRng`], [`Rng`], and [`SeedableRng`] with the
//! subset of the rand 0.8 API this workspace uses: `seed_from_u64`,
//! `gen_range` over integer/float ranges, and `gen_bool`. The generator
//! is xoshiro256++ seeded through SplitMix64 — fast, deterministic per
//! seed, and unrelated to the upstream implementation's exact streams
//! (no caller depends on specific draws, only on determinism per seed).

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        // 53 uniform mantissa bits, the standard unit-interval construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled from. Implemented for `Range` and
/// `RangeInclusive` over the primitive integers and `f64`/`f32`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

float_sample_range!(f64, f32);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(1..=10i64);
            assert!((1..=10).contains(&v));
            let u = r.gen_range(0..100);
            assert!((0..100).contains(&u));
            let f = r.gen_range(1.0..100.0);
            assert!((1.0..100.0).contains(&f));
            let n = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
