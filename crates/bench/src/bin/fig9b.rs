//! Fig. 9(b): TPC-C — latency vs committed TPC-C transactions/s.
//!
//! "In Figure 9(b) the same databases are compared using the TPC-C
//! benchmark configured with 1 warehouse. We report the average
//! transaction execution latency, considering all five TPC-C transaction
//! types, as a function of the load. Experiments consist of between 1 and
//! 10 clients, each submitting 3,000 TPC-C transactions."
//!
//! Paper anchors: ShadowDB-PBR ≈550 txns/s (66 % of standalone H2 ≈830);
//! ShadowDB-SMR ≈526 txns/s — "similar maximum throughput", the paper's
//! headline; MySQL replication lower; H2 replication collapses at 62
//! txns/s (omitted from the paper's graph).

use parking_lot::Mutex;
use shadowdb::client::{DbClient, Submission};
use shadowdb::pbr::PbrOptions;
use shadowdb::{DbClientStats, PbrDeployment, SmrDeployment};
use shadowdb_bench::baselines::{LockCoupledReplServer, LockCoupling, StandaloneServer};
use shadowdb_bench::cost::ShadowDbCost;
use shadowdb_bench::measure::{aggregate, Point};
use shadowdb_bench::{full_scale, output, scaled};
use shadowdb_loe::{Loc, VTime};
use shadowdb_simnet::{NetworkConfig, SimBuilder};
use shadowdb_sqldb::{Database, EngineProfile};
use shadowdb_tob::mode::ModeCost;
use shadowdb_tob::ExecutionMode;
use shadowdb_workloads::tpcc::{TpccGen, TpccScale};
use shadowdb_workloads::TxnRequest;
use std::sync::Arc;
use std::time::Duration;

const CLIENT_COUNTS: [usize; 5] = [1, 2, 4, 7, 10];

fn scale() -> TpccScale {
    if full_scale() {
        TpccScale::full()
    } else {
        // A quarter-size warehouse keeps the default run under a minute.
        TpccScale {
            districts: 10,
            customers_per_district: 750,
            items: 25_000,
            orders_per_district: 750,
        }
    }
}

fn txns_for(client: usize, count: usize) -> Vec<TxnRequest> {
    let mut g = TpccGen::new(40 + client as u64, scale(), client as u64 + 1);
    (0..count).map(|_| TxnRequest::Tpcc(g.next_txn())).collect()
}

fn run_pbr(n_clients: usize, txns: usize) -> Point {
    let mut sim = SimBuilder::new(19).network(NetworkConfig::lan()).build();
    let options = shadowdb::deploy::DeployOptions {
        mode: ExecutionMode::InterpretedOpt,
        ..shadowdb::deploy::DeployOptions::new(
            n_clients,
            move |i| txns_for(i, txns),
            |db| shadowdb_workloads::tpcc::load(db, &scale(), 1).expect("loads"),
        )
    };
    let d = PbrDeployment::build(&mut sim, &options, PbrOptions::default());
    sim.set_cost_model(ShadowDbCost::new(
        ModeCost::new(ExecutionMode::InterpretedOpt, d.tob.service_locs.clone()),
        d.replicas.clone(),
        60, // notification handling is small next to TPC-C execution
    ));
    sim.run_until_quiescent(VTime::from_secs(36_000));
    aggregate(n_clients, &d.stats)
}

fn run_smr(n_clients: usize, txns: usize) -> Point {
    let mut sim = SimBuilder::new(19).network(NetworkConfig::lan()).build();
    let options = shadowdb::deploy::DeployOptions::new(
        n_clients,
        move |i| txns_for(i, txns),
        |db| shadowdb_workloads::tpcc::load(db, &scale(), 1).expect("loads"),
    );
    let d = SmrDeployment::build(&mut sim, &options);
    sim.set_cost_model(ShadowDbCost::new(
        ModeCost::new(ExecutionMode::Compiled, d.tob.service_locs.clone()),
        d.replicas.clone(),
        60,
    ));
    sim.run_until_quiescent(VTime::from_secs(36_000));
    aggregate(n_clients, &d.stats)
}

fn run_single(server: Box<dyn shadowdb_eventml::Process>, n_clients: usize, txns: usize) -> Point {
    let mut sim = SimBuilder::new(19).network(NetworkConfig::lan()).build();
    let server_loc = Loc::new(n_clients as u32);
    let mut stats = Vec::new();
    for i in 0..n_clients {
        let s = Arc::new(Mutex::new(DbClientStats::default()));
        stats.push(s.clone());
        let c = DbClient::new(
            Submission::Pbr {
                replicas: vec![server_loc],
            },
            txns_for(i, txns),
            s,
        )
        .with_timeout(Duration::from_secs(600));
        sim.add_node(Box::new(c));
    }
    let added = sim.add_node(server);
    assert_eq!(added, server_loc);
    for i in 0..n_clients {
        sim.send_at(VTime::ZERO, Loc::new(i as u32), DbClient::start_msg());
    }
    sim.run_until_quiescent(VTime::from_secs(36_000));
    aggregate(n_clients, &stats)
}

fn tpcc_db() -> Database {
    let db = Database::new(EngineProfile::innodb());
    shadowdb_workloads::tpcc::load(&db, &scale(), 1).expect("loads");
    db
}

fn tpcc_h2() -> Database {
    let db = Database::new(EngineProfile::h2());
    shadowdb_workloads::tpcc::load(&db, &scale(), 1).expect("loads");
    db
}

fn main() {
    output::banner(
        "Fig. 9(b) — TPC-C latency vs committed txns/s",
        "Fig. 9(b) (Sec. IV-B): 1 warehouse, all five transaction types, 1–10 clients",
    );
    let txns = scaled(3_000, 10);
    output::kv("transactions per client", txns);
    output::kv("warehouse rows", scale().total_rows());

    let mut curves: Vec<(&str, Vec<Point>, &str)> = Vec::new();
    let pbr: Vec<Point> = CLIENT_COUNTS.iter().map(|&n| run_pbr(n, txns)).collect();
    curves.push((
        "ShadowDB-PBR",
        pbr,
        "paper: ≈550 txns/s max (66% of standalone H2)",
    ));
    let smr: Vec<Point> = CLIENT_COUNTS.iter().map(|&n| run_smr(n, txns)).collect();
    curves.push((
        "ShadowDB-SMR",
        smr,
        "paper: ≈526 txns/s max — similar to PBR",
    ));
    let myr: Vec<Point> = CLIENT_COUNTS
        .iter()
        .map(|&n| {
            // MySQL runs InnoDB for TPC-C (row locks; "the memory engine
            // provides lower performance than InnoDB" here).
            run_single(
                Box::new(LockCoupledReplServer::new(
                    tpcc_db(),
                    LockCoupling {
                        hold: Duration::from_micros(2_300),
                        lock_timeout: Duration::from_millis(500),
                        contention_slowdown: Duration::from_micros(30),
                    },
                )),
                n,
                txns,
            )
        })
        .collect();
    curves.push((
        "MySQL-repl. (InnoDB)",
        myr,
        "paper: below both ShadowDB variants",
    ));
    let h2r: Vec<Point> = CLIENT_COUNTS
        .iter()
        .map(|&n| {
            run_single(
                Box::new(LockCoupledReplServer::new(
                    tpcc_h2(),
                    LockCoupling {
                        hold: Duration::from_micros(16_000),
                        lock_timeout: Duration::from_millis(100),
                        contention_slowdown: Duration::ZERO,
                    },
                )),
                n,
                txns,
            )
        })
        .collect();
    curves.push((
        "H2-repl.",
        h2r,
        "paper: 62 txns/s max, omitted from the graph",
    ));
    let std: Vec<Point> = CLIENT_COUNTS
        .iter()
        .map(|&n| run_single(Box::new(StandaloneServer::new(tpcc_h2())), n, txns))
        .collect();
    curves.push(("H2-stdalone", std, "paper: ≈830 txns/s max"));

    for (name, points, anchor) in &curves {
        output::series(name, points);
        output::kv("anchor", anchor);
    }

    let max = |pts: &[Point]| pts.iter().map(|p| p.throughput).fold(0.0, f64::max);
    println!();
    output::kv(
        "PBR / standalone peak ratio",
        format!("{:.2}", max(&curves[0].1) / max(&curves[4].1)),
    );
    output::kv(
        "SMR / PBR peak ratio (the paper's headline: ≈0.96)",
        format!("{:.2}", max(&curves[1].1) / max(&curves[0].1)),
    );
}
