//! Three-form trace equivalence for every shipped protocol specification.
//!
//! The optimizer ships three executable forms of each spec: the interpreted
//! tree, the fused-linear flat program (no dispatch table), and the
//! dispatch-fused program (header-indexed op slices). This file drives long
//! deterministic pseudo-random message streams — well-formed protocol
//! traffic salted with unrecognized headers — through all three forms of
//! TwoThird, Synod (all three roles), and the TOB broadcast service, and
//! requires identical output bags at every step. It is the cross-crate
//! extension of `shadowdb_eventml::bisim`'s CLK/combinator checks.

use shadowdb_consensus::{synod, twothird, DECIDE_HEADER};
use shadowdb_eventml::bisim::check_three_forms;
use shadowdb_eventml::{cached_header, ClassExpr, Msg, Value};
use shadowdb_loe::Loc;
use shadowdb_tob::service::{service_class, Backend};
use shadowdb_tob::{TobConfig, BROADCAST_HEADER};

/// Deterministic xorshift64* stream, identical to the one in
/// `eventml::bisim::tests` — stable across runs so failures reproduce.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn int(&mut self, n: u64) -> Value {
        Value::Int(self.below(n) as i64)
    }

    fn loc(&mut self, n: u64) -> Loc {
        Loc::new(self.below(n) as u32)
    }
}

fn noise_msg(rng: &mut Rng) -> Msg {
    let headers = ["zz/unknown", "tt/propose-typo", "noise"];
    Msg::new(headers[rng.below(3) as usize], rng.int(5))
}

fn run(expr: &ClassExpr, slf: Loc, label: &str, stream_of: impl Fn(u64) -> Vec<Msg>) {
    for seed in 1..=6u64 {
        let stream = stream_of(seed);
        check_three_forms(expr, slf, &stream)
            .unwrap_or_else(|d| panic!("{label} seed {seed}: {d}"));
    }
}

// ---------------------------------------------------------------------------
// TwoThird
// ---------------------------------------------------------------------------

fn twothird_stream(seed: u64, n: usize, members: u64) -> Vec<Msg> {
    let mut rng = Rng(seed);
    (0..n)
        .map(|_| match rng.below(8) {
            0..=2 => twothird::propose_msg(rng.below(4) as i64, rng.int(3)),
            3..=5 => {
                // vote: <instance, <round, <sender, value>>>
                let body = Value::pair(
                    rng.int(4),
                    Value::pair(
                        Value::Int(1 + rng.below(3) as i64),
                        Value::pair(Value::Loc(rng.loc(members)), rng.int(3)),
                    ),
                );
                Msg::new(cached_header!(twothird::VOTE_HEADER), body)
            }
            6 => Msg::new(
                cached_header!(twothird::INTERNAL_DECIDE_HEADER),
                Value::pair(rng.int(4), rng.int(3)),
            ),
            _ => noise_msg(&mut rng),
        })
        .collect()
}

#[test]
fn twothird_three_forms_agree() {
    let members = 4u64;
    let config = twothird::TwoThirdConfig::new(Loc::first_n(members as u32), vec![Loc::new(50)]);
    let class = twothird::TwoThird::new(config.clone()).class();
    run(&class, Loc::new(1), "twothird", |seed| {
        twothird_stream(seed, 300, members)
    });

    // Auto-adopt mode takes the extra adoption branch on foreign votes.
    let adopt = twothird::TwoThird::new(config.with_auto_adopt()).class();
    run(&adopt, Loc::new(2), "twothird+auto_adopt", |seed| {
        twothird_stream(seed * 31, 300, members)
    });
}

// ---------------------------------------------------------------------------
// Synod (acceptor / leader / replica)
// ---------------------------------------------------------------------------

fn ballot(rng: &mut Rng, leaders: u64) -> Value {
    Value::pair(
        Value::Int(rng.below(3) as i64),
        Value::Loc(Loc::new((3 + rng.below(leaders)) as u32)),
    )
}

fn synod_stream(seed: u64, n: usize) -> Vec<Msg> {
    let mut rng = Rng(seed);
    (0..n)
        .map(|_| match rng.below(10) {
            0 => synod::request_msg(rng.int(5)),
            1 => synod::start_msg(),
            2 => Msg::new(
                cached_header!(synod::PROPOSE_HEADER),
                Value::pair(rng.int(3), rng.int(5)),
            ),
            3 => Msg::new(
                cached_header!(synod::DECISION_HEADER),
                Value::pair(rng.int(3), rng.int(5)),
            ),
            4 => {
                // p1a: <leader, ballot>
                let b = ballot(&mut rng, 3);
                Msg::new(
                    cached_header!(synod::P1A_HEADER),
                    Value::pair(Value::Loc(rng.loc(9)), b),
                )
            }
            5 => {
                // p1b: <acceptor, <ballot, accepted-pvalues>>
                let b = ballot(&mut rng, 3);
                Msg::new(
                    cached_header!(synod::P1B_HEADER),
                    Value::pair(
                        Value::Loc(Loc::new(6 + rng.below(3) as u32)),
                        Value::pair(b, Value::list(std::iter::empty())),
                    ),
                )
            }
            6 => {
                // p2a: <leader, <ballot, <slot, command>>>
                let b = ballot(&mut rng, 3);
                Msg::new(
                    cached_header!(synod::P2A_HEADER),
                    Value::pair(
                        Value::Loc(rng.loc(9)),
                        Value::pair(b, Value::pair(rng.int(3), rng.int(5))),
                    ),
                )
            }
            7 => {
                // p2b: <acceptor, <ballot, slot>>
                let b = ballot(&mut rng, 3);
                Msg::new(
                    cached_header!(synod::P2B_HEADER),
                    Value::pair(
                        Value::Loc(Loc::new(6 + rng.below(3) as u32)),
                        Value::pair(b, rng.int(3)),
                    ),
                )
            }
            8 => Msg::new(cached_header!(synod::RESCOUT_HEADER), Value::Unit),
            _ => noise_msg(&mut rng),
        })
        .collect()
}

#[test]
fn synod_acceptor_three_forms_agree() {
    let config = synod::SynodConfig::compact(3, vec![Loc::new(50)]);
    run(
        &synod::acceptor_class(&config),
        Loc::new(6),
        "synod-acceptor",
        |seed| synod_stream(seed, 250),
    );
}

#[test]
fn synod_leader_three_forms_agree() {
    let config = synod::SynodConfig::compact(3, vec![Loc::new(50)]);
    run(
        &synod::leader_class(&config),
        Loc::new(3),
        "synod-leader",
        |seed| synod_stream(seed * 7, 250),
    );
}

#[test]
fn synod_replica_three_forms_agree() {
    let config = synod::SynodConfig::compact(3, vec![Loc::new(50)]);
    run(
        &synod::replica_class(&config),
        Loc::new(0),
        "synod-replica",
        |seed| synod_stream(seed * 13, 250),
    );
}

// ---------------------------------------------------------------------------
// TOB broadcast service
// ---------------------------------------------------------------------------

fn tob_stream(seed: u64, n: usize) -> Vec<Msg> {
    let mut rng = Rng(seed);
    (0..n)
        .map(|_| match rng.below(6) {
            0..=2 => {
                // broadcast: <client, <msgid, payload>>
                let body = Value::pair(
                    Value::Loc(rng.loc(4)),
                    Value::pair(Value::Int(rng.below(6) as i64), rng.int(100)),
                );
                Msg::new(cached_header!(BROADCAST_HEADER), body)
            }
            3 | 4 => {
                // decide: <slot, batch> where batch = <proposer, <batchid, entries>>
                let entries: Vec<Value> = (0..rng.below(3))
                    .map(|_| {
                        Value::pair(
                            Value::Loc(rng.loc(4)),
                            Value::pair(Value::Int(rng.below(6) as i64), rng.int(100)),
                        )
                    })
                    .collect();
                let batch = Value::pair(
                    Value::Loc(rng.loc(2)),
                    Value::pair(rng.int(4), Value::list(entries)),
                );
                Msg::new(
                    cached_header!(DECIDE_HEADER),
                    Value::pair(rng.int(4), batch),
                )
            }
            _ => noise_msg(&mut rng),
        })
        .collect()
}

#[test]
fn tob_service_three_forms_agree_both_backends() {
    let tt = TobConfig::new(
        Backend::TwoThird {
            member: Loc::new(0),
        },
        vec![Loc::new(40)],
    );
    run(&service_class(&tt), Loc::new(0), "tob-twothird", |seed| {
        tob_stream(seed, 250)
    });

    let px = TobConfig::new(
        Backend::Paxos {
            replica: Loc::new(1),
        },
        vec![Loc::new(40)],
    );
    run(&service_class(&px), Loc::new(1), "tob-paxos", |seed| {
        tob_stream(seed * 11, 250)
    });
}
