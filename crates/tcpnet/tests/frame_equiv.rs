//! Property-based equivalence of the event-loop frame path with the
//! reference codec: whatever the nonblocking write side does — short
//! `writev`s that stop mid-frame, `EAGAIN` between or inside frames,
//! `EINTR` retries — and however the read side chunks the stream into the
//! reassembly buffer, the decoded message sequence is byte-identical to
//! the old thread-per-link blocking path (encode, write everything,
//! decode).
//!
//! Also covers the break/retransmit contract: a connection that dies
//! mid-frame retransmits its front frame from the first byte on the next
//! connection, and the concatenation of what both connections delivered
//! is exactly the original sequence (the dead connection's partial tail
//! decodes to nothing).

use proptest::prelude::*;
use shadowdb_eventml::{FrameEncoder, FrameReader, Msg, Value};
use shadowdb_tcpnet::OutQueue;
use std::io::{self, IoSlice, Write};

/// One scripted act of the kernel on a nonblocking write.
#[derive(Clone, Debug)]
enum Step {
    /// Accept up to this many bytes across the iovecs (a short `writev`).
    Accept(usize),
    /// `EAGAIN`: refuse, the caller must wait for write readiness.
    Block,
    /// `EINTR`: refuse, the caller retries immediately.
    Intr,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1usize..200).prop_map(Step::Accept),
        Just(Step::Block),
        Just(Step::Intr),
    ]
}

/// A writer following a script of kernel behaviors; once the script runs
/// out it accepts everything (so draining always terminates).
struct ScriptWriter {
    script: Vec<Step>,
    pos: usize,
    out: Vec<u8>,
}

impl ScriptWriter {
    fn new(script: Vec<Step>) -> ScriptWriter {
        ScriptWriter {
            script,
            pos: 0,
            out: Vec::new(),
        }
    }
}

impl Write for ScriptWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.write_vectored(&[IoSlice::new(buf)])
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        let step = self
            .script
            .get(self.pos)
            .cloned()
            .unwrap_or(Step::Accept(usize::MAX));
        self.pos += 1;
        match step {
            Step::Block => Err(io::ErrorKind::WouldBlock.into()),
            Step::Intr => Err(io::ErrorKind::Interrupted.into()),
            Step::Accept(mut budget) => {
                let mut n = 0;
                for b in bufs {
                    let take = b.len().min(budget);
                    self.out.extend_from_slice(&b[..take]);
                    n += take;
                    budget -= take;
                    if budget == 0 {
                        break;
                    }
                }
                if n == 0 {
                    // A zero-byte accept on nonempty input would read as a
                    // closed peer; model it as pushback instead.
                    Err(io::ErrorKind::WouldBlock.into())
                } else {
                    Ok(n)
                }
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn arb_msgs() -> impl Strategy<Value = Vec<Msg>> {
    proptest::collection::vec(
        (
            "[a-z_]{1,12}",
            proptest::collection::vec(any::<u8>(), 0..200),
        )
            .prop_map(|(h, b)| Msg::new(h.as_str(), Value::Bytes(bytes::Bytes::from(b)))),
        1..12,
    )
}

/// Decode `stream` through the event-loop socket path: read directly
/// into the reassembly buffer via `spare_mut`/`commit` in the scripted
/// chunk sizes, draining frames after every commit.
fn decode_chunked(stream: &[u8], chunks: &[usize]) -> Vec<Msg> {
    let mut rdr = FrameReader::new();
    let mut got = Vec::new();
    let mut off = 0;
    let mut ci = 0;
    while off < stream.len() {
        let want = chunks.get(ci).copied().unwrap_or(64).max(1);
        ci += 1;
        let take = want.min(stream.len() - off);
        let spare = rdr.spare_mut(take);
        spare[..take].copy_from_slice(&stream[off..off + take]);
        rdr.commit(take);
        off += take;
        while let Some(m) = rdr.next_msg().expect("well-formed stream") {
            got.push(m);
        }
    }
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// OutQueue through arbitrary kernel behavior, then FrameReader
    /// through arbitrary chunking, equals the reference path.
    #[test]
    fn event_loop_path_equals_reference(
        msgs in arb_msgs(),
        script in proptest::collection::vec(arb_step(), 0..24),
        chunks in proptest::collection::vec(1usize..64, 1..16),
    ) {
        // Reference: the blocking thread-per-link path wrote each frame
        // whole; the wire is the plain concatenation of frames.
        let mut enc = FrameEncoder::new();
        let mut reference = Vec::new();
        let mut q = OutQueue::new();
        for m in &msgs {
            let frame = enc.encode(m);
            reference.extend_from_slice(frame);
            q.push(frame);
        }

        // Event-loop path: drain through the scripted kernel.
        let mut w = ScriptWriter::new(script);
        while !q.is_empty() {
            q.flush_into(&mut w).expect("script never hard-fails");
        }
        prop_assert_eq!(&w.out, &reference);

        let got = decode_chunked(&w.out, &chunks);
        prop_assert_eq!(got, msgs);
    }

    /// A connection that breaks mid-frame loses nothing: the front frame
    /// restarts from byte zero on the next connection, the dead
    /// connection's partial tail decodes to zero messages, and the two
    /// connections together deliver exactly the original sequence.
    #[test]
    fn break_midframe_retransmits_front_frame(
        msgs in arb_msgs(),
        cut_pick in 0usize..4096,
        chunks in proptest::collection::vec(1usize..64, 1..16),
    ) {
        let mut enc = FrameEncoder::new();
        let mut q = OutQueue::new();
        let mut total = 0;
        for m in &msgs {
            let frame = enc.encode(m);
            total += frame.len();
            q.push(frame);
        }

        // First connection accepts `cut` bytes, then dies.
        let cut = cut_pick % (total + 1);
        let mut first = ScriptWriter::new(vec![Step::Accept(cut.max(1)), Step::Block]);
        q.flush_into(&mut first).expect("pushback, not failure");
        // The link layer's break handling: retransmit the front frame
        // from its first byte on the next connection.
        q.reset_front();
        let mut second = ScriptWriter::new(Vec::new());
        while !q.is_empty() {
            q.flush_into(&mut second).expect("fresh connection drains");
        }

        let mut delivered = decode_chunked(&first.out, &chunks);
        // Partial tail of the dead connection is discarded with it.
        delivered.extend(decode_chunked(&second.out, &chunks));
        prop_assert_eq!(delivered, msgs);
    }
}
