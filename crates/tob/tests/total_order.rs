//! The total-order broadcast properties, checked on full deployments:
//!
//! * **Total order / agreement** — every subscriber observes exactly the
//!   same sequence of deliveries (same messages, same order, gapless
//!   sequence numbers);
//! * **Integrity** — each broadcast message is delivered exactly once, and
//!   only messages that were broadcast are delivered;
//! * **Batching transparency** — the properties hold for any batch bound,
//!   including 1 (batching disabled).

use parking_lot::Mutex;
use shadowdb_eventml::{Ctx, FnProcess, Msg, Process, Value};
use shadowdb_loe::{Loc, VTime};
use shadowdb_tob::deploy::BackendKind;
use shadowdb_tob::{
    parse_deliver, ClientStats, Delivery, ExecutionMode, InOrderBuffer, TobClient, TobDeployment,
    TobOptions,
};
use std::sync::Arc;

type Log = Arc<Mutex<Vec<Delivery>>>;

/// A subscriber: dedup/reorder through an [`InOrderBuffer`], then log.
fn subscriber(log: Log) -> Box<dyn Process> {
    Box::new(FnProcess::new(
        InOrderBuffer::new(),
        move |buf, _ctx: &Ctx, msg: &Msg| {
            if let Some(d) = parse_deliver(msg) {
                log.lock().extend(buf.offer(d));
            }
            vec![]
        },
    ))
}

/// Runs `n_clients` clients × `msgs_each` messages against a deployment
/// with two pure subscribers; returns the two logs.
fn run(
    backend: BackendKind,
    n_clients: u32,
    msgs_each: u64,
    max_batch: usize,
    seed: u64,
) -> (Vec<Delivery>, Vec<Delivery>, Vec<Arc<Mutex<ClientStats>>>) {
    let mut sim = shadowdb_simnet::testing::default_net(seed);
    let log_a: Log = Arc::new(Mutex::new(Vec::new()));
    let log_b: Log = Arc::new(Mutex::new(Vec::new()));
    let sub_a = sim.add_node(subscriber(log_a.clone()));
    let sub_b = sim.add_node(subscriber(log_b.clone()));

    // Plan client and server locations: clients follow the two subscribers,
    // the deployment follows the clients.
    let per = match backend {
        BackendKind::TwoThird => 2,
        BackendKind::Paxos => 4,
    };
    let first_server = 2 + n_clients;
    let servers: Vec<Loc> = (0..3u32)
        .map(|i| Loc::new(first_server + i * per))
        .collect();

    let mut stats = Vec::new();
    let mut client_locs = Vec::new();
    for c in 0..n_clients {
        let s = Arc::new(Mutex::new(ClientStats::default()));
        stats.push(s.clone());
        // Stagger client starting servers to exercise multi-server intake.
        let mut order = servers.clone();
        order.rotate_left((c % 3) as usize);
        let client = TobClient::new(order, Value::Int(c as i64), msgs_each, s);
        client_locs.push(sim.add_node(Box::new(client)));
    }

    let mut subscribers = vec![sub_a, sub_b];
    subscribers.extend(client_locs.iter().copied());
    let options = TobOptions {
        backend,
        mode: ExecutionMode::Compiled,
        max_batch,
        machines: 3,
        ..TobOptions::default()
    };
    let deployment = TobDeployment::build(&mut sim, &options, subscribers);
    assert_eq!(deployment.servers, servers);

    for c in &client_locs {
        sim.send_at(VTime::ZERO, *c, TobClient::start_msg());
    }
    sim.run_until_quiescent(VTime::from_secs(3_600));
    let a = log_a.lock().clone();
    let b = log_b.lock().clone();
    (a, b, stats)
}

fn assert_properties(
    a: &[Delivery],
    b: &[Delivery],
    n_clients: u32,
    msgs_each: u64,
    client_locs_start: u32,
) {
    let expected = (n_clients as u64 * msgs_each) as usize;
    // Agreement/total order: identical logs at both subscribers.
    assert_eq!(a, b, "subscribers diverged");
    assert_eq!(a.len(), expected, "all messages delivered");
    // Gapless global sequence.
    for (i, d) in a.iter().enumerate() {
        assert_eq!(d.seq, i as i64, "sequence gap at {i}");
    }
    // Integrity: per client, msgids 0..msgs_each delivered exactly once and
    // in client order (clients are closed-loop).
    for c in 0..n_clients {
        let loc = Loc::new(client_locs_start + c);
        let ids: Vec<i64> = a
            .iter()
            .filter(|d| d.client == loc)
            .map(|d| d.msgid)
            .collect();
        assert_eq!(ids, (0..msgs_each as i64).collect::<Vec<_>>(), "client {c}");
    }
}

#[test]
fn paxos_total_order_with_batching() {
    let (a, b, stats) = run(BackendKind::Paxos, 4, 10, 64, 7);
    assert_properties(&a, &b, 4, 10, 2);
    for s in stats {
        assert_eq!(s.lock().completed.len(), 10);
    }
}

#[test]
fn paxos_total_order_without_batching() {
    let (a, b, _) = run(BackendKind::Paxos, 3, 6, 1, 8);
    assert_properties(&a, &b, 3, 6, 2);
}

#[test]
fn twothird_total_order_with_batching() {
    let (a, b, _) = run(BackendKind::TwoThird, 4, 10, 64, 9);
    assert_properties(&a, &b, 4, 10, 2);
}

#[test]
fn twothird_total_order_without_batching() {
    let (a, b, _) = run(BackendKind::TwoThird, 3, 6, 1, 10);
    assert_properties(&a, &b, 3, 6, 2);
}

/// Seed sweep: the properties are schedule-independent.
#[test]
fn total_order_across_seeds() {
    for seed in 0..8 {
        let (a, b, _) = run(BackendKind::Paxos, 2, 5, 8, 100 + seed);
        assert_properties(&a, &b, 2, 5, 2);
    }
}
