//! The program optimizer: fusion, common-subexpression elimination, and
//! header-indexed dispatch.
//!
//! The paper's optimizer "merges nested recursive functions into one and
//! also applies common subexpression elimination", producing code that is
//! faster (by a factor of two or more) and closer to what one would write by
//! hand, and Nuprl proves the optimized program *bisimilar* to the original
//! (Fig. 7).
//!
//! [`optimize`] performs the same transformation and then goes further on
//! the per-message hot path:
//!
//! * **Fusion** — the combinator tree is flattened into a topologically
//!   ordered op list evaluated by a single non-recursive loop.
//! * **CSE** — structurally identical subtrees are assigned a single op
//!   whose outputs — and, crucially, whose *state* — are shared.
//! * **Dead-op elimination** — ops unreachable from `main` after CSE are
//!   dropped and the op list compacted.
//! * **Header-indexed dispatch** — for every header symbol appearing in a
//!   base class, the (topologically ordered) slice of ops that can fire on
//!   it is precomputed; a step walks only that slice. Ops downstream of
//!   constant classes can fire on *any* header and form the default slice
//!   used for unknown headers.
//! * **Allocation-free stepping** — per-op output buffers are owned by the
//!   process and reused across steps; values are pushed in place instead of
//!   building fresh `Vec`s.
//!
//! Dispatch is sound because skipping an op is observably identical to
//! running it whenever it would produce nothing: all per-step buffers start
//! empty, a skipped op's buffer stays empty, and every op (`State`'s update,
//! `Once`'s flag, `Compose`'s handler) only acts when its inputs are
//! non-empty. The bisimulation proof becomes the executable check in
//! [`crate::bisim`], run for every shipped specification across all three
//! program forms (interpreted, fused-linear, dispatch-fused).

use crate::ast::{ClassExpr, HandlerFn, Spec, UpdateFn};
use crate::process::{Ctx, HasherAdapter, Process};
use crate::value::{as_send_value, Header, Msg, SendInstr, Value};
use shadowdb_loe::Loc;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Index of an op within a fused program.
type OpId = usize;

#[derive(Clone, Debug)]
enum Op {
    Base(Header),
    Constant(Value),
    State {
        input: OpId,
        slot: usize,
        update: UpdateFn,
    },
    Compose {
        handler: HandlerFn,
        args: Vec<OpId>,
    },
    Parallel(Vec<OpId>),
    Once {
        inner: OpId,
        flag: usize,
    },
}

impl Op {
    fn inputs(&self) -> &[OpId] {
        match self {
            Op::Base(_) | Op::Constant(_) => &[],
            Op::State { input, .. } => std::slice::from_ref(input),
            Op::Compose { args, .. } => args,
            Op::Parallel(args) => args,
            Op::Once { inner, .. } => std::slice::from_ref(inner),
        }
    }
}

/// Which headers can make an op produce output (the dispatch analysis
/// domain).
#[derive(Clone, Debug)]
enum HeaderSet {
    /// Fires on every message (downstream of a constant class).
    All,
    /// Fires only on these header symbols.
    Finite(Vec<u32>),
}

/// Precomputed per-header active-op slices.
#[derive(Debug, Default)]
struct Dispatch {
    /// Symbol index → ops (ascending = topological order) that can fire.
    /// Dense: symbols are small global integers, so a direct-indexed table
    /// beats hashing on the per-message path. `None` marks symbols the
    /// program has no finite entry for (they fall through to `default`).
    by_symbol: Vec<Option<Vec<OpId>>>,
    /// Ops that fire on headers outside `by_symbol` (the `All` ops).
    default: Vec<OpId>,
}

/// The immutable part of a fused program, shared by all its process
/// instances.
#[derive(Debug)]
struct Program {
    ops: Vec<Op>,
    main: OpId,
    init_slots: Vec<Value>,
    n_flags: usize,
    dispatch: Dispatch,
    /// All op ids in order, for the dispatch-disabled (linear) form.
    all_ops: Vec<OpId>,
}

impl Program {
    fn active_ops(&self, msg: &Msg) -> &[OpId] {
        match self.dispatch.by_symbol.get(msg.header.symbol().index()) {
            Some(Some(ops)) => ops,
            _ => &self.dispatch.default,
        }
    }
}

struct Builder {
    ops: Vec<Op>,
    init_slots: Vec<Value>,
    n_flags: usize,
    memo: HashMap<String, OpId>,
}

impl Builder {
    fn lower(&mut self, expr: &ClassExpr) -> OpId {
        let key = expr.structural_key();
        if let Some(&id) = self.memo.get(&key) {
            return id; // common subexpression: share op, outputs, and state
        }
        let op = match expr {
            ClassExpr::Base(h) => Op::Base(*h),
            ClassExpr::Constant(v) => Op::Constant(v.clone()),
            ClassExpr::State {
                init,
                update,
                input,
            } => {
                let input = self.lower(input);
                let slot = self.init_slots.len();
                self.init_slots.push(init.clone());
                Op::State {
                    input,
                    slot,
                    update: update.clone(),
                }
            }
            ClassExpr::Compose { handler, args } => {
                let args = args.iter().map(|a| self.lower(a)).collect();
                Op::Compose {
                    handler: handler.clone(),
                    args,
                }
            }
            ClassExpr::Parallel(args) => Op::Parallel(args.iter().map(|a| self.lower(a)).collect()),
            ClassExpr::Once(inner) => {
                let inner = self.lower(inner);
                let flag = self.n_flags;
                self.n_flags += 1;
                Op::Once { inner, flag }
            }
        };
        let id = self.ops.len();
        self.ops.push(op);
        self.memo.insert(key, id);
        id
    }
}

/// Drops ops unreachable from `main` and compacts ids (order-preserving, so
/// topological order survives). Returns the remapped op list, the new
/// `main`, and the slot/flag remappings applied to `init_slots`/`n_flags`.
fn eliminate_dead_ops(
    ops: Vec<Op>,
    main: OpId,
    init_slots: Vec<Value>,
) -> (Vec<Op>, OpId, Vec<Value>, usize) {
    let mut live = vec![false; ops.len()];
    let mut stack = vec![main];
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut live[id], true) {
            continue;
        }
        stack.extend_from_slice(ops[id].inputs());
    }
    if live.iter().all(|&l| l) {
        let n_flags = ops
            .iter()
            .filter(|op| matches!(op, Op::Once { .. }))
            .count();
        return (ops, main, init_slots, n_flags);
    }
    let mut op_map = vec![usize::MAX; ops.len()];
    let mut slot_map: HashMap<usize, usize> = HashMap::new();
    let mut kept: Vec<Op> = Vec::new();
    let mut slots: Vec<Value> = Vec::new();
    let mut n_flags = 0;
    for (id, op) in ops.into_iter().enumerate() {
        if !live[id] {
            continue;
        }
        op_map[id] = kept.len();
        let remapped = match op {
            Op::Base(h) => Op::Base(h),
            Op::Constant(v) => Op::Constant(v),
            Op::State {
                input,
                slot,
                update,
            } => {
                let new_slot = *slot_map.entry(slot).or_insert_with(|| {
                    slots.push(init_slots[slot].clone());
                    slots.len() - 1
                });
                Op::State {
                    input: op_map[input],
                    slot: new_slot,
                    update,
                }
            }
            Op::Compose { handler, args } => Op::Compose {
                handler,
                args: args.into_iter().map(|a| op_map[a]).collect(),
            },
            Op::Parallel(args) => Op::Parallel(args.into_iter().map(|a| op_map[a]).collect()),
            Op::Once { inner, flag: _ } => {
                let flag = n_flags;
                n_flags += 1;
                Op::Once {
                    inner: op_map[inner],
                    flag,
                }
            }
        };
        kept.push(remapped);
    }
    let main = op_map[main];
    (kept, main, slots, n_flags)
}

/// Computes, per op, the set of header symbols on which it can produce
/// output, then inverts that into per-symbol active-op lists.
fn build_dispatch(ops: &[Op]) -> Dispatch {
    let mut sets: Vec<HeaderSet> = Vec::with_capacity(ops.len());
    for op in ops {
        let set = match op {
            Op::Base(h) => HeaderSet::Finite(vec![h.symbol().index() as u32]),
            Op::Constant(_) => HeaderSet::All,
            Op::State { input, .. } => sets[*input].clone(),
            Op::Once { inner, .. } => sets[*inner].clone(),
            Op::Compose { args, .. } => {
                // Fires only when every argument fires: intersection.
                let mut acc: Option<HeaderSet> = None;
                for a in args {
                    acc = Some(match (acc, &sets[*a]) {
                        (None, s) => s.clone(),
                        (Some(HeaderSet::All), s) => s.clone(),
                        (Some(s @ HeaderSet::Finite(_)), HeaderSet::All) => s,
                        (Some(HeaderSet::Finite(xs)), HeaderSet::Finite(ys)) => HeaderSet::Finite(
                            xs.iter().filter(|x| ys.contains(x)).copied().collect(),
                        ),
                    });
                }
                acc.unwrap_or(HeaderSet::Finite(Vec::new()))
            }
            Op::Parallel(args) => {
                // Fires when any argument fires: union.
                let mut acc = HeaderSet::Finite(Vec::new());
                for a in args {
                    acc = match (acc, &sets[*a]) {
                        (_, HeaderSet::All) | (HeaderSet::All, _) => HeaderSet::All,
                        (HeaderSet::Finite(mut xs), HeaderSet::Finite(ys)) => {
                            for y in ys {
                                if !xs.contains(y) {
                                    xs.push(*y);
                                }
                            }
                            HeaderSet::Finite(xs)
                        }
                    };
                }
                acc
            }
        };
        sets.push(set);
    }

    let mut dispatch = Dispatch::default();
    // Known symbols: everything mentioned by some finite set.
    let mut symbols: Vec<u32> = Vec::new();
    for set in &sets {
        if let HeaderSet::Finite(xs) = set {
            for &x in xs {
                if !symbols.contains(&x) {
                    symbols.push(x);
                }
            }
        }
    }
    let table_len = symbols.iter().map(|&s| s as usize + 1).max().unwrap_or(0);
    dispatch.by_symbol = vec![None; table_len];
    for &s in &symbols {
        dispatch.by_symbol[s as usize] = Some(Vec::new());
    }
    for (id, set) in sets.iter().enumerate() {
        match set {
            HeaderSet::All => {
                dispatch.default.push(id);
                for &s in &symbols {
                    dispatch.by_symbol[s as usize]
                        .as_mut()
                        .expect("pre-seeded")
                        .push(id);
                }
            }
            HeaderSet::Finite(xs) => {
                for &x in xs {
                    dispatch.by_symbol[x as usize]
                        .as_mut()
                        .expect("pre-seeded")
                        .push(id);
                }
            }
        }
    }
    // Per-symbol lists were filled in ascending op order by construction
    // (one pass over ops), so they are already topologically sorted.
    dispatch
}

/// A fused, deduplicated process: the output of the optimizer.
///
/// Bisimilar to the [`InterpretedProcess`](crate::InterpretedProcess)
/// compiled from the same expression (checked by [`crate::bisim`]), but
/// evaluated by one flat pass over the ops reachable from the incoming
/// header, with shared subresults and no per-step allocation.
pub struct FusedProcess {
    program: Arc<Program>,
    slots: Vec<Value>,
    flags: Vec<bool>,
    /// Reused per-step output buffers, one per op (fusion's second win:
    /// no per-step allocation of the combinator plumbing).
    scratch: Vec<Vec<Value>>,
    /// Reused cross-product prefix buffer for `Compose` ops.
    cross_buf: Vec<Value>,
    /// When false, ignore the dispatch table and walk every op (the
    /// "fused-linear" form used by bisimulation checks and ablations).
    use_dispatch: bool,
}

impl Clone for FusedProcess {
    fn clone(&self) -> FusedProcess {
        FusedProcess {
            program: self.program.clone(),
            slots: self.slots.clone(),
            flags: self.flags.clone(),
            scratch: fresh_scratch(self.program.ops.len()),
            cross_buf: Vec::with_capacity(4),
            use_dispatch: self.use_dispatch,
        }
    }
}

/// Pre-sized per-op output buffers: paying the small allocations at build
/// time keeps even a process's first step allocation-free.
fn fresh_scratch(n: usize) -> Vec<Vec<Value>> {
    (0..n).map(|_| Vec::with_capacity(4)).collect()
}

impl std::fmt::Debug for FusedProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FusedProcess")
            .field("ops", &self.program.ops.len())
            .field("slots", &self.slots)
            .field("flags", &self.flags)
            .field("use_dispatch", &self.use_dispatch)
            .finish()
    }
}

/// Optimizes a class expression into a fused process.
pub fn optimize(expr: &ClassExpr) -> FusedProcess {
    let mut b = Builder {
        ops: Vec::new(),
        init_slots: Vec::new(),
        n_flags: 0,
        memo: HashMap::new(),
    };
    let main = b.lower(expr);
    let (ops, main, init_slots, n_flags) = eliminate_dead_ops(b.ops, main, b.init_slots);
    let dispatch = build_dispatch(&ops);
    let all_ops = (0..ops.len()).collect();
    let program = Program {
        ops,
        main,
        init_slots,
        n_flags,
        dispatch,
        all_ops,
    };
    FusedProcess {
        slots: program.init_slots.clone(),
        flags: vec![false; program.n_flags],
        scratch: fresh_scratch(program.ops.len()),
        cross_buf: Vec::with_capacity(4),
        use_dispatch: true,
        program: Arc::new(program),
    }
}

/// Optimizes a specification's main class.
pub fn optimize_spec(spec: &Spec) -> FusedProcess {
    optimize(spec.main())
}

impl FusedProcess {
    /// Disables header-indexed dispatch: every step walks the whole op
    /// list, as the fused evaluator did before dispatch tables. Used to
    /// check all three program forms against each other.
    pub fn linear(mut self) -> FusedProcess {
        self.use_dispatch = false;
        self
    }

    /// Whether header-indexed dispatch is enabled.
    pub fn dispatches(&self) -> bool {
        self.use_dispatch
    }

    /// Evaluates one message into the per-op scratch buffers; `main`'s
    /// buffer holds the output bag afterwards.
    fn run(&mut self, slf: Loc, msg: &Msg) {
        // Destructure: `program` (shared, read-only) and the mutable
        // per-process buffers are disjoint fields, so no Arc refcount
        // traffic is needed on the per-message path.
        let FusedProcess {
            program,
            slots,
            flags,
            scratch,
            cross_buf,
            use_dispatch,
        } = self;
        let ops = &program.ops;
        let active: &[OpId] = if *use_dispatch {
            program.active_ops(msg)
        } else {
            &program.all_ops
        };
        // Clearing every buffer (not just the active ones) is what makes
        // skipping an op sound: a skipped op's output reads as empty.
        // `clear` keeps capacity, so steady-state steps never allocate.
        for o in scratch.iter_mut() {
            o.clear();
        }
        // One pass in topological order; children precede parents by
        // construction, so each op's inputs are ready when it runs. Op `i`
        // only reads outputs of ops `< i`, which `split_at_mut` exposes
        // alongside `i`'s own buffer.
        for &i in active {
            let (before, rest) = scratch.split_at_mut(i);
            let out = &mut rest[0];
            match &ops[i] {
                Op::Base(h) => {
                    if msg.header == *h {
                        out.push(msg.body.clone());
                    }
                }
                Op::Constant(v) => out.push(v.clone()),
                Op::State {
                    input,
                    slot,
                    update,
                } => {
                    let inputs = &before[*input];
                    if !inputs.is_empty() {
                        let st = &mut slots[*slot];
                        for v in inputs {
                            *st = update.apply(slf, v, st);
                        }
                        out.push(st.clone());
                    }
                }
                Op::Compose { handler, args } => {
                    if args.iter().all(|a| !before[*a].is_empty()) {
                        cross_buf.clear();
                        cross(before, args, cross_buf, &mut |combo| {
                            out.extend(handler.apply(slf, combo));
                        });
                    }
                }
                Op::Parallel(args) => {
                    for a in args {
                        out.extend_from_slice(&before[*a]);
                    }
                }
                Op::Once { inner, flag } => {
                    if !flags[*flag] && !before[*inner].is_empty() {
                        flags[*flag] = true;
                        out.push(before[*inner][0].clone());
                    }
                }
            }
        }
    }

    /// Evaluates one message and returns the entire output bag (the
    /// fused analogue of
    /// [`InterpretedProcess::step_values`](crate::InterpretedProcess::step_values)).
    pub fn step_values(&mut self, slf: Loc, msg: &Msg) -> Vec<Value> {
        self.run(slf, msg);
        std::mem::take(&mut self.scratch[self.program.main])
    }

    /// Program size of the fused program (Table I, "opt. GPM prog."
    /// column): each op costs a small flat-dispatch overhead plus its leaf
    /// function's declared size, and state slots cost one node each.
    /// Smaller than the interpreted program whenever the specification
    /// shares subexpressions (CSE) — and always free of the per-node
    /// recursion machinery fusion eliminates.
    pub fn program_nodes(&self) -> usize {
        const OP_OVERHEAD: usize = 3;
        let ops: usize = self
            .program
            .ops
            .iter()
            .map(|op| {
                OP_OVERHEAD
                    + match op {
                        Op::Base(_) | Op::Constant(_) => 1,
                        Op::State { update, .. } => update.nodes(),
                        Op::Compose { handler, .. } => handler.nodes(),
                        Op::Parallel(_) => 1,
                        Op::Once { .. } => 1,
                    }
            })
            .sum();
        ops + self.program.init_slots.len() + self.program.n_flags
    }
}

/// Enumerates the cross product of the argument buffers in lexicographic
/// order, reusing `prefix` as the combination being built.
fn cross(
    outs: &[Vec<Value>],
    args: &[OpId],
    prefix: &mut Vec<Value>,
    emit: &mut impl FnMut(&[Value]),
) {
    if prefix.len() == args.len() {
        emit(prefix);
        return;
    }
    let arg = args[prefix.len()];
    for idx in 0..outs[arg].len() {
        prefix.push(outs[arg][idx].clone());
        cross(outs, args, prefix, emit);
        prefix.pop();
    }
}

impl Process for FusedProcess {
    fn step_into(&mut self, ctx: &Ctx, msg: &Msg, out: &mut Vec<SendInstr>) {
        self.run(ctx.slf, msg);
        for v in &self.scratch[self.program.main] {
            if let Some(instr) = as_send_value(v) {
                out.push(instr);
            }
        }
    }
    fn clone_box(&self) -> Box<dyn Process> {
        Box::new(self.clone())
    }
    fn digest(&self, hasher: &mut dyn Hasher) {
        let mut h = HasherAdapter(hasher);
        self.slots.hash(&mut h);
        self.flags.hash(&mut h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{HandlerFn, UpdateFn};
    use crate::compile::InterpretedProcess;

    fn l(i: u32) -> Loc {
        Loc::new(i)
    }

    fn counter_expr() -> ClassExpr {
        let inc = UpdateFn::new("inc", 1, |_l, _v, s| Value::Int(s.int() + 1));
        ClassExpr::base("m").state(Value::Int(0), inc)
    }

    #[test]
    fn fused_matches_interpreted_on_counter() {
        let expr = counter_expr();
        let mut a = InterpretedProcess::compile(&expr);
        let mut b = optimize(&expr);
        for i in 0..5 {
            let m = Msg::new(if i % 2 == 0 { "m" } else { "x" }, Value::Int(i));
            assert_eq!(a.step_values(l(0), &m), b.step_values(l(0), &m));
        }
    }

    #[test]
    fn linear_form_matches_dispatch_form() {
        let expr = counter_expr();
        let mut a = optimize(&expr);
        let mut b = optimize(&expr).linear();
        assert!(a.dispatches());
        assert!(!b.dispatches());
        for i in 0..6 {
            let m = Msg::new(if i % 2 == 0 { "m" } else { "unknown" }, Value::Int(i));
            assert_eq!(a.step_values(l(0), &m), b.step_values(l(0), &m));
        }
    }

    #[test]
    fn cse_shares_duplicate_state_machines() {
        // The same counter used twice: unoptimized keeps two copies of the
        // state; optimized keeps one op (and one slot).
        let h = HandlerFn::new("both", 1, |_l, args| {
            vec![Value::pair(args[0].clone(), args[1].clone())]
        });
        let expr = ClassExpr::compose(h, vec![counter_expr(), counter_expr()]);
        let interp = InterpretedProcess::compile(&expr);
        let fused = optimize(&expr);
        // compose(5+1) + 2×(state(5+1) + base(5+1)) = 30
        assert_eq!(interp.program_nodes(), 30);
        // compose(3+1) + state(3+1) + base(3+1) + 1 slot = 13
        assert_eq!(fused.program_nodes(), 13);
        // And behaviour agrees.
        let mut a = interp.clone();
        let mut b = fused.clone();
        for i in 0..4 {
            let m = Msg::new("m", Value::Int(i));
            assert_eq!(a.step_values(l(0), &m), b.step_values(l(0), &m));
        }
    }

    #[test]
    fn once_flag_preserved_across_clone() {
        let expr = ClassExpr::base("m").once();
        let mut p = optimize(&expr);
        p.step_values(l(0), &Msg::new("m", Value::Unit));
        let mut q = p.clone();
        assert!(q.step_values(l(0), &Msg::new("m", Value::Unit)).is_empty());
    }

    #[test]
    fn digest_reflects_slots() {
        let expr = counter_expr();
        let mut p = optimize(&expr);
        let q = optimize(&expr);
        assert_eq!(
            crate::process::fingerprint(&p),
            crate::process::fingerprint(&q)
        );
        p.step_values(l(0), &Msg::new("m", Value::Unit));
        assert_ne!(
            crate::process::fingerprint(&p),
            crate::process::fingerprint(&q)
        );
    }

    #[test]
    fn dispatch_skips_unrelated_ops_but_state_still_advances() {
        // Two counters on different headers; a message for one must not
        // disturb (or even run) the other.
        let inc = UpdateFn::new("inc", 1, |_l, _v, s| Value::Int(s.int() + 1));
        let expr = ClassExpr::parallel(vec![
            ClassExpr::base("left").state(Value::Int(0), inc.clone()),
            ClassExpr::base("right").state(Value::Int(100), inc),
        ]);
        let mut p = optimize(&expr);
        assert_eq!(
            p.step_values(l(0), &Msg::new("left", Value::Unit)),
            vec![Value::Int(1)]
        );
        assert_eq!(
            p.step_values(l(0), &Msg::new("right", Value::Unit)),
            vec![Value::Int(101)]
        );
        assert_eq!(
            p.step_values(l(0), &Msg::new("left", Value::Unit)),
            vec![Value::Int(2)]
        );
        assert!(p
            .step_values(l(0), &Msg::new("neither", Value::Unit))
            .is_empty());
    }

    #[test]
    fn constants_fire_on_unknown_headers() {
        // A constant composed with a counter: the constant leg is
        // header-independent (`All`), the counter leg finite. The compose
        // fires exactly on the counter's header.
        let h = HandlerFn::new("pairup", 1, |_l, args| {
            vec![Value::pair(args[0].clone(), args[1].clone())]
        });
        let expr = ClassExpr::compose(
            h,
            vec![ClassExpr::Constant(Value::Int(7)), ClassExpr::base("m")],
        );
        let mut p = optimize(&expr);
        let mut q = InterpretedProcess::compile(&expr);
        for hname in ["m", "other", "m", "stranger"] {
            let m = Msg::new(hname, Value::Int(1));
            assert_eq!(p.step_values(l(0), &m), q.step_values(l(0), &m));
        }
        // A bare constant produces on every header, known or not.
        let mut c = optimize(&ClassExpr::Constant(Value::Int(9)));
        assert_eq!(
            c.step_values(l(0), &Msg::new("anything", Value::Unit)),
            vec![Value::Int(9)]
        );
    }

    #[test]
    fn dead_op_elimination_keeps_live_programs_intact() {
        // Lowering never produces unreachable ops today, so the pass must
        // be the identity on every real program.
        let h = HandlerFn::new("both", 1, |_l, args| {
            vec![Value::pair(args[0].clone(), args[1].clone())]
        });
        let expr = ClassExpr::compose(h, vec![counter_expr(), counter_expr().once()]).once();
        let p = optimize(&expr);
        assert_eq!(p.program.all_ops.len(), p.program.ops.len());
        assert_eq!(p.program.main, p.program.ops.len() - 1);
    }

    #[test]
    fn dead_op_elimination_compacts_unreachable_ops() {
        // Drive the pass directly with a hand-built op list whose op 0 is
        // unreachable from main.
        let inc = UpdateFn::new("inc", 1, |_l, _v, s| Value::Int(s.int() + 1));
        let ops = vec![
            Op::Base(Header::new("dead")),
            Op::Base(Header::new("live")),
            Op::State {
                input: 1,
                slot: 1,
                update: inc,
            },
            Op::Once { inner: 2, flag: 3 },
        ];
        let slots = vec![Value::Int(-1), Value::Int(0)];
        let (kept, main, slots, n_flags) = eliminate_dead_ops(ops, 3, slots);
        assert_eq!(kept.len(), 3);
        assert_eq!(main, 2);
        assert_eq!(slots, vec![Value::Int(0)]);
        assert_eq!(n_flags, 1);
        match &kept[1] {
            Op::State { input, slot, .. } => {
                assert_eq!(*input, 0);
                assert_eq!(*slot, 0);
            }
            other => panic!("expected remapped State, got {other:?}"),
        }
        match &kept[2] {
            Op::Once { inner, flag } => {
                assert_eq!(*inner, 1);
                assert_eq!(*flag, 0);
            }
            other => panic!("expected remapped Once, got {other:?}"),
        }
    }

    #[test]
    fn scratch_buffers_do_not_leak_between_steps() {
        // A header the program knows, then one it does not, then the known
        // one again: stale outputs must never resurface.
        let expr = counter_expr();
        let mut p = optimize(&expr);
        assert_eq!(
            p.step_values(l(0), &Msg::new("m", Value::Unit)),
            vec![Value::Int(1)]
        );
        assert!(p.step_values(l(0), &Msg::new("x", Value::Unit)).is_empty());
        assert_eq!(
            p.step_values(l(0), &Msg::new("m", Value::Unit)),
            vec![Value::Int(2)]
        );
    }
}
