//! Quickstart: a replicated bank on ShadowDB-SMR.
//!
//! Builds the paper's state-machine-replication deployment inside the
//! deterministic simulator — three broadcast-service machines (Paxos,
//! compiled mode) with a database replica beside each — runs two clients'
//! deposits through it, and shows that every transaction committed exactly
//! once with strictly serializable results.
//!
//! Run with: `cargo run --release --example quickstart`

use shadowdb::deploy::{DeployOptions, SmrDeployment};
use shadowdb::diversity::DiversityPolicy;
use shadowdb_loe::VTime;
use shadowdb_simnet::{NetworkConfig, SimBuilder};
use shadowdb_workloads::{bank, TxnRequest};

fn main() {
    let accounts = 1_000;
    let deposits_per_client = 200;

    let mut sim = SimBuilder::new(2024).network(NetworkConfig::lan()).build();
    let options = DeployOptions {
        // Diversity (Sec. III-C): H2, HSQLDB, and Derby personalities, one
        // per replica, to mask correlated environment failures.
        diversity: DiversityPolicy::Trio,
        ..DeployOptions::new(
            2,
            move |client| {
                let mut g = bank::BankGen::new(client as u64, accounts);
                (0..deposits_per_client).map(|_| g.next_txn()).collect()
            },
            move |db| bank::load(db, accounts).expect("the bank schema loads"),
        )
    };
    let deployment = SmrDeployment::build(&mut sim, &options);

    println!("running {} clients × {} deposits …", 2, deposits_per_client);
    sim.run_until_quiescent(VTime::from_secs(600));

    let committed = deployment.committed();
    println!("committed transactions : {committed}");
    assert_eq!(committed, 2 * deposits_per_client);

    for (i, stats) in deployment.stats.iter().enumerate() {
        let s = stats.lock();
        println!(
            "client {i}: {} commits, mean latency {:?}, {} resends",
            s.committed(),
            s.mean_latency().expect("has commits"),
            s.resends
        );
    }

    // A read through the same path sees the replicated state.
    let mut sim2 = SimBuilder::new(7).network(NetworkConfig::lan()).build();
    let options = DeployOptions::new(
        1,
        move |_| vec![TxnRequest::BankRead { account: 0 }],
        move |db| bank::load(db, accounts).expect("loads"),
    );
    let d2 = SmrDeployment::build(&mut sim2, &options);
    sim2.run_until_quiescent(VTime::from_secs(60));
    println!(
        "fresh deployment read of account 0 committed: {}",
        d2.committed() == 1
    );
    println!("done — every answer came from a totally ordered, replicated execution.");
}
