//! A real TCP runtime for GPM processes: every inter-node message crosses
//! a byte boundary over a `std::net` loopback socket.
//!
//! This is the repository's counterpart of the paper's testbed wiring —
//! ShadowDB's generated processes exchanging framed messages over real
//! sockets — and the fourth substrate behind the [`Runtime`] seam: the
//! same unmodified `PbrDeployment`/`SmrDeployment`/TOB builders that run
//! under the simulator, on thread channels, and inside the model checker
//! deploy here onto actual TCP connections.
//!
//! # Architecture
//!
//! * N sharded executor threads (thread-per-core, `loc % shards`) each
//!   run a readiness event loop over a std-only poller (epoll on Linux,
//!   `poll(2)` elsewhere). A shard owns its locations' listeners, every
//!   inbound connection to them, the hosted processes with their timer
//!   heaps, and the hosts' outbound links — there are no per-node or
//!   per-connection threads.
//! * The receive path is allocation-free in steady state: sockets read
//!   directly into each connection's reassembly buffer and decoded
//!   message bodies are zero-copy `Bytes`/string views of that buffer
//!   (`shadowdb_eventml::codec`). Decoding steps the destination process
//!   inline on its own shard.
//! * Outbound links are nonblocking with vectored writes: frames drain
//!   through a per-link queue; when the kernel pushes back the link
//!   parks on write readiness. Reconnect backoff jitter is a pure
//!   function of the deployment seed ([`TcpNetBuilder::seeded`]), so
//!   chaos-soak schedules are byte-identical across runs.
//! * A control thread schedules external injections ([`TcpNet::send_at`],
//!   over the injector's own loopback connections) and fault actions:
//!   [`TcpNet::crash_at`] *removes the host* (volatile state, timers, and
//!   outbound connections die with it) and [`TcpNet::restart_at`]
//!   installs a fresh incarnation behind the same listener, so
//!   crash-recovery behaves like a process restart behind a stable
//!   address.
//! * Driver ports ([`TcpNet::port`]) are loopback listeners too: replies
//!   to a client port travel over a socket like any other message.
//!
//! [`TcpNet::shutdown`] joins deterministically: the control thread
//! first, then every shard (woken by its command pipe); each shard drops
//! its sockets on exit.
//!
//! # Example
//!
//! ```
//! use shadowdb_eventml::{Ctx, FnProcess, Msg, SendInstr, Value};
//! use shadowdb_tcpnet::TcpNet;
//!
//! let mut net = TcpNet::new();
//! let echo = net.add_node(Box::new(FnProcess::new((), |_s, _c: &Ctx, m: &Msg| {
//!     match m.body.as_loc() {
//!         Some(from) => vec![SendInstr::now(from, Msg::new("pong", Value::Unit))],
//!         None => vec![],
//!     }
//! })));
//! let (port, rx) = TcpNet::port(&mut net);
//! net.send(echo, Msg::new("ping", Value::Loc(port)));
//! let reply = rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
//! assert_eq!(reply.header.name(), "pong");
//! net.shutdown();
//! ```

mod link;
mod node;
mod poll;
mod registry;
mod shard;

use crossbeam::channel::{self, Receiver, Sender};
use link::Injector;
use registry::{Registry, SlotInfo};
use shadowdb_eventml::{Msg, Process};
use shadowdb_loe::{Loc, VTime};
use shadowdb_runtime::{FaultPlan, PortRx, Runtime, StorageMode};
use shard::{spawn_shard, ShardCmd, ShardHandle};

pub use link::{OutQueue, PENDING_CAP};
pub use registry::LinkStats;

use std::collections::BinaryHeap;
use std::net::TcpListener;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// An action the control thread performs when its instant comes due.
enum Act {
    /// Deliver an externally injected message (over a real socket).
    Deliver(Loc, Msg),
    /// Remove the location's host: volatile state and timers are lost and
    /// deliveries are silently dropped until restart.
    Crash(Loc),
    /// Install a fresh incarnation behind the location's listener.
    Restart(Loc, Box<dyn Process>),
}

enum Ctl {
    At { at: Instant, act: Act },
    Shutdown,
}

struct Due {
    at: Instant,
    seq: u64,
    act: Act,
}

impl PartialEq for Due {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Due {}
impl PartialOrd for Due {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Due {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Configures a [`TcpNet`].
pub struct TcpNetBuilder {
    seed: u64,
    shards: Option<usize>,
}

impl TcpNetBuilder {
    /// Sets the deployment seed: reconnect-backoff jitter becomes a pure
    /// function of `(seed, origin, dest, attempt)`, making chaos-soak
    /// reconnect schedules byte-identical across runs with the same seed
    /// (livenet and simnet already derive their jitter this way).
    pub fn seeded(mut self, seed: u64) -> TcpNetBuilder {
        self.seed = seed;
        self
    }

    /// Overrides the shard (executor thread) count; defaults to the
    /// machine's available parallelism, clamped to `1..=8`.
    pub fn shards(mut self, n: usize) -> TcpNetBuilder {
        self.shards = Some(n.max(1));
        self
    }

    /// Starts the shard event loops and the control thread.
    pub fn spawn(self) -> TcpNet {
        let shards = self.shards.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .clamp(1, 8)
        });
        let start = Instant::now();
        let registry = Registry::new(start, self.seed);
        let mut handles = Vec::with_capacity(shards);
        let mut joins = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (handle, join) = spawn_shard(registry.clone());
            handles.push(handle);
            joins.push(join);
        }
        let shard_handles = Arc::new(handles);
        let (ctl_tx, ctl_rx) = channel::unbounded::<Ctl>();
        let ctl_handle = {
            let registry = registry.clone();
            let shards = shard_handles.clone();
            std::thread::spawn(move || control_loop(registry, shards, ctl_rx))
        };
        TcpNet {
            start,
            registry,
            shards: shard_handles,
            shard_joins: joins,
            ctl: ctl_tx,
            ctl_handle: Some(ctl_handle),
            storage_root: StorageMode::fresh_file_root("tcpnet"),
        }
    }
}

/// A running TCP network of process nodes.
pub struct TcpNet {
    start: Instant,
    registry: Arc<Registry>,
    shards: Arc<Vec<ShardHandle>>,
    shard_joins: Vec<JoinHandle<()>>,
    ctl: Sender<Ctl>,
    ctl_handle: Option<JoinHandle<()>>,
    storage_root: std::path::PathBuf,
}

impl TcpNet {
    /// Starts building a network.
    pub fn builder() -> TcpNetBuilder {
        TcpNetBuilder {
            seed: 0,
            shards: None,
        }
    }

    /// An empty running network (shards and control thread only); add
    /// nodes with [`TcpNet::add_node`].
    pub fn new() -> TcpNet {
        TcpNet::builder().spawn()
    }

    fn shard_of(&self, loc: Loc) -> &ShardHandle {
        &self.shards[loc.index() as usize % self.shards.len()]
    }

    fn bind_slot(&self) -> (Loc, TcpListener) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind loopback listener");
        let addr = listener.local_addr().expect("listener address");
        let loc = {
            let mut slots = self.registry.slots.lock();
            let loc = Loc::new(slots.len() as u32);
            slots.push(SlotInfo { addr });
            loc
        };
        (loc, listener)
    }

    /// Hosts `process` at the next location: binds its listener, then
    /// hands both to the location's shard.
    pub fn add_node(&mut self, process: Box<dyn Process>) -> Loc {
        let (loc, listener) = self.bind_slot();
        self.shard_of(loc).send(ShardCmd::AddNode {
            loc: loc.index(),
            listener,
            process,
        });
        loc
    }

    /// Number of locations allocated so far (nodes and ports).
    pub fn node_count(&self) -> u32 {
        self.registry.slots.lock().len() as u32
    }

    /// Elapsed time since the network started, as the runtime clock.
    pub fn now(&self) -> VTime {
        VTime::from_micros(self.start.elapsed().as_micros() as u64)
    }

    fn instant_of(&self, at: VTime) -> Instant {
        (self.start + Duration::from_micros(at.as_micros())).max(Instant::now())
    }

    /// Injects a message from outside the system, delivered as soon as
    /// possible (over the injector's own loopback connection).
    pub fn send(&self, dest: Loc, msg: Msg) {
        self.send_at(VTime::ZERO, dest, msg);
    }

    /// Injects a message from outside the system at `at` on the runtime
    /// clock (clamped to now if already past).
    pub fn send_at(&self, at: VTime, dest: Loc, msg: Msg) {
        let _ = self.ctl.send(Ctl::At {
            at: self.instant_of(at),
            act: Act::Deliver(dest, msg),
        });
    }

    /// Schedules a crash of the node at `loc`: its host is removed —
    /// volatile state, pending timers, and outbound connections die — and
    /// deliveries are silently dropped until restart.
    pub fn crash_at(&self, at: VTime, loc: Loc) {
        let _ = self.ctl.send(Ctl::At {
            at: self.instant_of(at),
            act: Act::Crash(loc),
        });
    }

    /// Schedules a restart of the node at `loc`: a fresh incarnation
    /// hosting `process` behind the location's existing listener.
    pub fn restart_at(&self, at: VTime, loc: Loc, process: Box<dyn Process>) {
        let _ = self.ctl.send(Ctl::At {
            at: self.instant_of(at),
            act: Act::Restart(loc, process),
        });
    }

    /// Installs (or replaces) the fault plan consulted by every node's
    /// frame layer. Severed links force-close their connections and park
    /// frames in bounded pending queues until heal; lossy windows drop
    /// frames; duplication windows write them twice. Delay spikes and
    /// reorder windows are not reproducible on a real FIFO stream and are
    /// ignored (the schedule itself is byte-identical with the other
    /// substrates). External injections from the driver are never faulted.
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        *self.registry.faults.plan.lock() = Some(plan);
        self.registry.faults.engaged.store(true, Ordering::SeqCst);
    }

    /// Snapshot of the frame-layer counters (`reconnects`,
    /// `frames_dropped`, `frames_duplicated`) aggregated over all links.
    pub fn link_stats(&self) -> LinkStats {
        self.registry.faults.stats()
    }

    /// Creates an external mailbox at the next location, backed by its own
    /// loopback listener: messages sent to it cross a socket and land in
    /// the returned receiver.
    pub fn port(&mut self) -> (Loc, Receiver<Msg>) {
        let (tx, rx) = channel::unbounded();
        let (loc, listener) = self.bind_slot();
        self.shard_of(loc).send(ShardCmd::AddPort {
            loc: loc.index(),
            listener,
            tx,
        });
        (loc, rx)
    }

    /// Stops every thread and waits for all of them: the control thread
    /// first, then every shard event loop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let _ = self.ctl.send(Ctl::Shutdown);
        if let Some(h) = self.ctl_handle.take() {
            let _ = h.join();
        }
        // Stop link connect retries, then the shard loops themselves.
        self.registry.shutdown.store(true, Ordering::SeqCst);
        for shard in self.shards.iter() {
            shard.send(ShardCmd::Shutdown);
        }
        for h in self.shard_joins.drain(..) {
            let _ = h.join();
        }
        // Scratch durable storage dies with the instance (it only exists
        // if a durability-enabled deployment opened a disk).
        let _ = std::fs::remove_dir_all(&self.storage_root);
    }
}

impl Default for TcpNet {
    fn default() -> Self {
        TcpNet::new()
    }
}

impl Drop for TcpNet {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The control thread: a timer heap of scheduled injections and fault
/// actions, with its own blocking outbound links for external deliveries.
fn control_loop(registry: Arc<Registry>, shards: Arc<Vec<ShardHandle>>, rx: Receiver<Ctl>) {
    let mut injector = Injector::new(registry);
    let shard_of = |loc: Loc| &shards[loc.index() as usize % shards.len()];
    let mut heap: BinaryHeap<Due> = BinaryHeap::new();
    let mut seq = 0u64;
    loop {
        let now = Instant::now();
        while heap.peek().map(|d| d.at <= now).unwrap_or(false) {
            let due = heap.pop().expect("peeked");
            match due.act {
                Act::Deliver(dest, msg) => injector.send(dest, &msg),
                Act::Crash(loc) => shard_of(loc).send(ShardCmd::Crash(loc.index())),
                Act::Restart(loc, process) => {
                    shard_of(loc).send(ShardCmd::Restart(loc.index(), process))
                }
            }
        }
        let wait = heap
            .peek()
            .map(|d| d.at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(20))
            .min(Duration::from_millis(20));
        match rx.recv_timeout(wait) {
            Ok(Ctl::At { at, act }) => {
                seq += 1;
                heap.push(Due { at, seq, act });
            }
            Ok(Ctl::Shutdown) | Err(channel::RecvTimeoutError::Disconnected) => break,
            Err(channel::RecvTimeoutError::Timeout) => {}
        }
        injector.tick();
    }
}

impl Runtime for TcpNet {
    fn add_node(&mut self, process: Box<dyn Process>) -> Loc {
        TcpNet::add_node(self, process)
    }

    fn node_count(&self) -> u32 {
        TcpNet::node_count(self)
    }

    fn now(&self) -> VTime {
        TcpNet::now(self)
    }

    fn send_at(&mut self, at: VTime, dest: Loc, msg: Msg) {
        TcpNet::send_at(self, at, dest, msg);
    }

    fn crash_at(&mut self, at: VTime, loc: Loc) {
        TcpNet::crash_at(self, at, loc);
    }

    fn restart_at(&mut self, at: VTime, loc: Loc, process: Box<dyn Process>) {
        TcpNet::restart_at(self, at, loc, process);
    }

    fn port(&mut self) -> (Loc, PortRx) {
        let (loc, rx) = TcpNet::port(self);
        (loc, PortRx::new(rx))
    }

    /// Real threads and sockets run on their own; letting the system
    /// execute for a duration is simply sleeping that long.
    fn run_for(&mut self, duration: Duration) {
        std::thread::sleep(duration);
    }

    fn install_fault_plan(&mut self, plan: FaultPlan) {
        TcpNet::install_fault_plan(self, plan);
    }

    fn fault_stats(&self) -> (u64, u64) {
        let s = self.link_stats();
        (s.frames_dropped, s.frames_duplicated)
    }

    /// Real sockets get real files: commits pay an actual `write + fsync`.
    fn storage_mode(&self) -> StorageMode {
        StorageMode::File {
            root: self.storage_root.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadowdb_consensus::parse_decide;
    use shadowdb_consensus::twothird::{propose_msg, TwoThird, TwoThirdConfig};
    use shadowdb_eventml::{Ctx, FnProcess, InterpretedProcess, SendInstr, Value};
    use shadowdb_runtime::{LinkFault, LinkSel};

    fn echo_counter() -> Box<dyn Process> {
        Box::new(FnProcess::new(0u32, |n, _c: &Ctx, m: &Msg| {
            *n += 1;
            match m.body.as_loc() {
                Some(from) => {
                    vec![SendInstr::now(
                        from,
                        Msg::new("pong", Value::Int(*n as i64)),
                    )]
                }
                None => vec![],
            }
        }))
    }

    #[test]
    fn echo_roundtrip_over_sockets() {
        let mut net = TcpNet::new();
        let echo = net.add_node(echo_counter());
        let (port, rx) = TcpNet::port(&mut net);
        net.send(echo, Msg::new("ping", Value::Loc(port)));
        net.send(echo, Msg::new("ping", Value::Loc(port)));
        let a = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let b = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(a.body, Value::Int(1));
        assert_eq!(b.body, Value::Int(2));
        net.shutdown();
    }

    /// A single link carries frames in FIFO order: a relay node forwards a
    /// numbered burst and the port sees it in sequence.
    #[test]
    fn fifo_per_link() {
        let mut net = TcpNet::new();
        let relay = net.add_node(Box::new(FnProcess::new(
            (),
            |_s, _c: &Ctx, m: &Msg| match (m.body.fst(), m.body.snd()) {
                (Some(to), Some(v)) => vec![SendInstr::now(to.loc(), Msg::new("seq", v.clone()))],
                _ => vec![],
            },
        )));
        let (port, rx) = TcpNet::port(&mut net);
        const N: i64 = 500;
        for i in 0..N {
            net.send(
                relay,
                Msg::new("fwd", Value::pair(Value::Loc(port), Value::Int(i))),
            );
        }
        for i in 0..N {
            let m = rx.recv_timeout(Duration::from_secs(10)).expect("in order");
            assert_eq!(m.body, Value::Int(i), "link reordered messages");
        }
        net.shutdown();
    }

    #[test]
    fn delayed_self_send_fires_later() {
        let mut net = TcpNet::new();
        let node = net.add_node(Box::new(FnProcess::new(
            (),
            |_s, ctx: &Ctx, m: &Msg| match m.header.name() {
                "start" => vec![SendInstr::after(
                    Duration::from_millis(80),
                    ctx.slf,
                    Msg::new("timer", m.body.clone()),
                )],
                "timer" => vec![SendInstr::now(m.body.loc(), Msg::new("fired", Value::Unit))],
                _ => vec![],
            },
        )));
        let (port, rx) = TcpNet::port(&mut net);
        let t0 = Instant::now();
        net.send(node, Msg::new("start", Value::Loc(port)));
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(
            t0.elapsed() >= Duration::from_millis(75),
            "{:?}",
            t0.elapsed()
        );
        net.shutdown();
    }

    /// The generated TwoThird consensus over real sockets: three members
    /// decide one value and notify the learner port.
    #[test]
    fn twothird_consensus_over_sockets() {
        let members = Loc::first_n(3);
        // The learner port will be loc 3 (first location after 3 nodes).
        let config = TwoThirdConfig::new(members, vec![Loc::new(3)]).with_auto_adopt();
        let class = TwoThird::new(config).class();
        let mut net = TcpNet::new();
        for _ in 0..3 {
            net.add_node(Box::new(InterpretedProcess::compile(&class)));
        }
        let (port, rx) = TcpNet::port(&mut net);
        assert_eq!(port, Loc::new(3));
        net.send(Loc::new(0), propose_msg(0, Value::Int(41)));
        net.send(Loc::new(1), propose_msg(0, Value::Int(42)));
        net.send(Loc::new(2), propose_msg(0, Value::Int(41)));
        let mut decisions = Vec::new();
        while decisions.len() < 3 {
            let m = rx
                .recv_timeout(Duration::from_secs(10))
                .expect("a decision");
            if let Some(d) = parse_decide(&m) {
                decisions.push(d);
            }
        }
        let first = decisions[0].1.clone();
        assert!(decisions.iter().all(|(i, v)| *i == 0 && *v == first));
        net.shutdown();
    }

    /// A crashed node's host is gone: deliveries are dropped. After
    /// restart the location answers again with fresh state.
    #[test]
    fn crash_silences_node_until_restart() {
        let mut net = TcpNet::new();
        let node = net.add_node(echo_counter());
        let (port, rx) = TcpNet::port(&mut net);
        net.send(node, Msg::new("ping", Value::Loc(port)));
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap().body,
            Value::Int(1)
        );

        net.crash_at(VTime::ZERO, node);
        std::thread::sleep(Duration::from_millis(50));
        net.send(node, Msg::new("ping", Value::Loc(port)));
        assert!(
            rx.recv_timeout(Duration::from_millis(200)).is_err(),
            "crashed node must stay silent"
        );

        net.restart_at(VTime::ZERO, node, echo_counter());
        std::thread::sleep(Duration::from_millis(50));
        net.send(node, Msg::new("ping", Value::Loc(port)));
        // Fresh process: the counter restarts from 1.
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap().body,
            Value::Int(1)
        );
        net.shutdown();
    }

    /// Nodes and ports share one location sequence, as the deployment
    /// builders require for precomputing locations.
    #[test]
    fn dynamic_nodes_and_ports_share_locations() {
        let mut net = TcpNet::new();
        assert_eq!(TcpNet::node_count(&net), 0);
        let a = net.add_node(echo_counter());
        let (p, _rx) = TcpNet::port(&mut net);
        let b = net.add_node(echo_counter());
        assert_eq!((a, p, b), (Loc::new(0), Loc::new(1), Loc::new(2)));
        assert_eq!(TcpNet::node_count(&net), 3);
        net.shutdown();
    }

    /// A seeded net with an explicit shard count behaves identically at
    /// the API level: the builder mirrors `LiveNet::builder().seeded(..)`.
    #[test]
    fn builder_seed_and_shards_echo() {
        let mut net = TcpNet::builder().seeded(42).shards(2).spawn();
        let echo = net.add_node(echo_counter());
        let (port, rx) = TcpNet::port(&mut net);
        net.send(echo, Msg::new("ping", Value::Loc(port)));
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap().body,
            Value::Int(1)
        );
        net.shutdown();
    }

    /// A severed link force-closes its connection and parks frames; after
    /// heal the pending queue flushes in FIFO order over a fresh
    /// connection (a counted reconnect), with nothing lost.
    #[test]
    fn fault_plan_severs_then_heals_with_fifo_flush() {
        let mut net = TcpNet::new();
        let relay = net.add_node(echo_counter());
        let (port, rx) = TcpNet::port(&mut net);
        // Establish the link (and the counter baseline) before the fault.
        net.send(relay, Msg::new("ping", Value::Loc(port)));
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap().body,
            Value::Int(1)
        );

        let start = net.now();
        let end = start + Duration::from_millis(400);
        net.install_fault_plan(FaultPlan::new(7).with_rule(
            LinkSel::Pair(relay, port),
            start,
            end,
            LinkFault::partition(),
        ));
        for _ in 0..5 {
            net.send(relay, Msg::new("ping", Value::Loc(port)));
        }
        // Severed: replies are parked at the relay, not delivered.
        assert!(
            rx.recv_timeout(Duration::from_millis(250)).is_err(),
            "severed link must not deliver"
        );
        // After heal the parked replies arrive in send order.
        for i in 2..=6 {
            let m = rx
                .recv_timeout(Duration::from_secs(5))
                .expect("flushed after heal");
            assert_eq!(m.body, Value::Int(i), "flush must preserve FIFO");
        }
        let stats = net.link_stats();
        assert!(stats.reconnects >= 1, "{stats:?}");
        assert_eq!(stats.frames_dropped, 0, "{stats:?}");
        net.shutdown();
    }

    /// A duplication window writes each frame twice: the port sees two
    /// identical replies and the counter records the duplicate.
    #[test]
    fn fault_plan_duplicates_frames() {
        let mut net = TcpNet::new();
        let relay = net.add_node(echo_counter());
        let (port, rx) = TcpNet::port(&mut net);
        let start = net.now();
        net.install_fault_plan(FaultPlan::new(9).with_rule(
            LinkSel::Pair(relay, port),
            start,
            start + Duration::from_secs(5),
            LinkFault::duplicating(1.0),
        ));
        net.send(relay, Msg::new("ping", Value::Loc(port)));
        let a = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let b = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(a.body, Value::Int(1));
        assert_eq!(b.body, Value::Int(1));
        assert_eq!(net.link_stats().frames_duplicated, 1);
        net.shutdown();
    }

    /// A link severed forever cannot grow memory without bound: the
    /// pending queue caps at `PENDING_CAP` frames and evicts the oldest,
    /// counting each eviction as a dropped frame.
    #[test]
    fn severed_link_bounds_pending_queue_drop_oldest() {
        let mut net = TcpNet::new();
        let relay = net.add_node(echo_counter());
        let (port, _rx) = TcpNet::port(&mut net);
        net.install_fault_plan(FaultPlan::new(3).with_rule(
            LinkSel::Pair(relay, port),
            VTime::ZERO,
            VTime::MAX,
            LinkFault::partition(),
        ));
        let extra = 50u64;
        for _ in 0..(link::PENDING_CAP as u64 + extra) {
            net.send(relay, Msg::new("ping", Value::Loc(port)));
        }
        let deadline = Instant::now() + Duration::from_secs(20);
        while net.link_stats().frames_dropped < extra {
            assert!(
                Instant::now() < deadline,
                "expected >= {extra} evictions, stats: {:?}",
                net.link_stats()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        net.shutdown();
    }

    /// Fault plans and injections may name locations that do not exist
    /// yet — reconfiguration adds nodes after deployment, and a nemesis
    /// plan written against the final membership must not wedge the net
    /// before the joiner arrives. Sends to an unknown location park until
    /// it exists (or evict at the queue cap); crash and restart of an
    /// unknown location are no-ops.
    #[test]
    fn unknown_locations_are_tolerated() {
        let mut net = TcpNet::new();
        let echo = net.add_node(echo_counter());
        let (port, rx) = TcpNet::port(&mut net);
        let ghost = Loc::new(9);
        net.send(ghost, Msg::new("ping", Value::Loc(port)));
        net.crash_at(VTime::ZERO, ghost);
        net.restart_at(VTime::ZERO, ghost, echo_counter());
        // The net still serves its real nodes.
        net.send(echo, Msg::new("ping", Value::Loc(port)));
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap().body,
            Value::Int(1)
        );
        // A late-added node binds a fresh location and answers.
        let late = net.add_node(echo_counter());
        net.send(late, Msg::new("ping", Value::Loc(port)));
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap().body,
            Value::Int(1)
        );
        net.shutdown();
    }

    #[cfg(target_os = "linux")]
    fn os_thread_count() -> usize {
        std::fs::read_dir("/proc/self/task")
            .expect("procfs")
            .count()
    }

    /// Shutdown joins the control thread and every shard event loop —
    /// repeated nets must not leak OS threads, even with timers and
    /// traffic in flight.
    #[test]
    #[cfg(target_os = "linux")]
    fn repeated_nets_leak_no_threads() {
        let before = os_thread_count();
        for i in 0..10u64 {
            let mut net = TcpNet::new();
            let echo = net.add_node(echo_counter());
            let timer = net.add_node(Box::new(FnProcess::new((), |_s, ctx: &Ctx, m: &Msg| {
                // Arm a far-future timer so shutdown always has an
                // in-flight delayed send to discard.
                vec![SendInstr::after(
                    Duration::from_secs(3600),
                    ctx.slf,
                    m.clone(),
                )]
            })));
            let (port, rx) = TcpNet::port(&mut net);
            net.send(timer, Msg::new("tick", Value::Int(i as i64)));
            net.send(echo, Msg::new("ping", Value::Loc(port)));
            let _ = rx.recv_timeout(Duration::from_secs(5));
            net.shutdown();
        }
        let after = os_thread_count();
        assert!(
            after <= before,
            "leaked {} threads across 10 nets",
            after - before
        );
    }
}
