//! The database engine: transactions, execution, undo.

use crate::expr::Expr;
use crate::lock::{LockGranularity, LockManager, LockMode, Resource, TxnId};
use crate::profile::EngineProfile;
use crate::schema::TableSchema;
use crate::snapshot::Snapshot;
use crate::sql::{parse, Aggregate, Projection, SelectStmt, Statement};
use crate::table::{RowId, Table};
use crate::value::{Row, SqlValue};
use crate::{Result, SqlError};
use parking_lot::RwLock;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A bound filter expression plus the `(rid, row)` pairs it matched.
type FilterMatches = (Option<Expr>, Vec<(RowId, Row)>);

/// The result of executing a statement.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResultSet {
    /// Column labels (projection order).
    pub columns: Vec<String>,
    /// Result rows (empty for DML/DDL).
    pub rows: Vec<Row>,
    /// Rows affected by DML.
    pub affected: usize,
}

/// An embedded database instance.
///
/// Cheap to clone (shared handle); concurrent transactions from multiple
/// threads are isolated by strict two-phase locking per the engine
/// profile's granularity.
#[derive(Clone)]
pub struct Database {
    inner: Arc<Inner>,
}

struct Inner {
    profile: EngineProfile,
    tables: RwLock<HashMap<String, Table>>,
    locks: LockManager,
    next_txn: AtomicU64,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("engine", &self.inner.profile.name)
            .field("tables", &self.inner.tables.read().len())
            .finish()
    }
}

impl Database {
    /// Creates an empty database with the given engine personality.
    pub fn new(profile: EngineProfile) -> Database {
        Database {
            inner: Arc::new(Inner {
                profile,
                tables: RwLock::new(HashMap::new()),
                locks: LockManager::new(),
                next_txn: AtomicU64::new(1),
            }),
        }
    }

    /// The engine profile this database runs with.
    pub fn profile(&self) -> &EngineProfile {
        &self.inner.profile
    }

    /// Begins a transaction.
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` mirrors a real driver's API.
    pub fn begin(&self) -> Result<Transaction> {
        let id = self.inner.next_txn.fetch_add(1, Ordering::Relaxed);
        Ok(Transaction {
            db: self.inner.clone(),
            id,
            undo: Vec::new(),
            finished: false,
            virtual_us: 0,
        })
    }

    /// Convenience: runs one statement in its own transaction.
    pub fn execute(&self, sql: &str) -> Result<ResultSet> {
        let mut txn = self.begin()?;
        let r = txn.execute(sql);
        match r {
            Ok(rs) => {
                txn.commit()?;
                Ok(rs)
            }
            Err(e) => {
                let _ = txn.rollback();
                Err(e)
            }
        }
    }

    /// Number of rows in `table` (0 if absent) — a cheap metadata read.
    pub fn table_len(&self, table: &str) -> usize {
        self.inner
            .tables
            .read()
            .get(&table.to_lowercase())
            .map(Table::len)
            .unwrap_or(0)
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Total data size in bytes across all tables.
    pub fn byte_size(&self) -> usize {
        self.inner
            .tables
            .read()
            .values()
            .map(Table::byte_size)
            .sum()
    }

    /// Bulk-inserts rows directly (loader fast path; bypasses SQL parsing
    /// and locking — callers must have exclusive use of the database, as
    /// during initial load or state transfer).
    ///
    /// # Errors
    ///
    /// Propagates schema violations; earlier rows stay inserted.
    pub fn insert_rows<I: IntoIterator<Item = Row>>(&self, table: &str, rows: I) -> Result<usize> {
        let mut tables = self.inner.tables.write();
        let t = tables
            .get_mut(&table.to_lowercase())
            .ok_or_else(|| SqlError::Unknown(format!("table {table}")))?;
        let mut n = 0;
        for row in rows {
            t.insert(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Takes a consistent snapshot of the entire database (schemas + rows).
    /// The caller is responsible for quiescing writers (replication
    /// executes transactions sequentially, so snapshots are taken between
    /// transactions).
    pub fn snapshot(&self) -> Snapshot {
        let tables = self.inner.tables.read();
        let mut names: Vec<&String> = tables.keys().collect();
        names.sort();
        Snapshot::from_tables(names.iter().map(|n| &tables[*n]))
    }

    /// Restores the database from a snapshot, replacing all contents.
    ///
    /// # Errors
    ///
    /// Propagates schema violations in the snapshot.
    pub fn restore(&self, snapshot: &Snapshot) -> Result<()> {
        let mut tables = self.inner.tables.write();
        tables.clear();
        for dump in snapshot.tables() {
            let mut t = Table::new(dump.schema.clone());
            for row in &dump.rows {
                t.insert(row.clone())?;
            }
            tables.insert(dump.schema.name.clone(), t);
        }
        Ok(())
    }
}

/// One operation's undo record.
enum Undo {
    Insert { table: String, rid: RowId },
    Delete { table: String, rid: RowId, row: Row },
    Update { table: String, rid: RowId, old: Row },
    CreateTable { table: String },
}

/// An open transaction. Dropped without [`Transaction::commit`], it rolls
/// back.
pub struct Transaction {
    db: Arc<Inner>,
    id: TxnId,
    undo: Vec<Undo>,
    finished: bool,
    virtual_us: u64,
}

impl Transaction {
    /// This transaction's id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Virtual CPU time consumed so far, per the engine's cost
    /// coefficients (used by the simulator).
    pub fn virtual_cost(&self) -> Duration {
        Duration::from_micros(self.virtual_us)
    }

    /// Parses and executes one statement.
    ///
    /// # Errors
    ///
    /// On [`SqlError::LockTimeout`] the transaction has been rolled back
    /// and must be retried from the start, as with the paper's engines.
    pub fn execute(&mut self, sql: &str) -> Result<ResultSet> {
        let stmt = parse(sql)?;
        self.run(stmt)
    }

    /// Executes a `SELECT` and returns its rows (convenience alias).
    pub fn query(&mut self, sql: &str) -> Result<ResultSet> {
        self.execute(sql)
    }

    /// Executes a pre-parsed statement.
    pub fn run(&mut self, stmt: Statement) -> Result<ResultSet> {
        if self.finished {
            return Err(SqlError::TransactionClosed);
        }
        let r = self.dispatch(stmt);
        if matches!(r, Err(SqlError::LockTimeout { .. })) {
            // Timeout aborts the transaction, like H2/MySQL.
            let _ = self.rollback_internal();
        }
        r
    }

    /// Commits, releasing all locks.
    ///
    /// # Errors
    ///
    /// Fails if the transaction is already finished.
    pub fn commit(&mut self) -> Result<()> {
        if self.finished {
            return Err(SqlError::TransactionClosed);
        }
        self.finished = true;
        self.undo.clear();
        self.db.locks.release_all(self.id);
        Ok(())
    }

    /// Rolls back all changes and releases locks.
    ///
    /// # Errors
    ///
    /// Fails if the transaction is already finished.
    pub fn rollback(&mut self) -> Result<()> {
        if self.finished {
            return Err(SqlError::TransactionClosed);
        }
        self.rollback_internal()
    }

    fn rollback_internal(&mut self) -> Result<()> {
        self.finished = true;
        let mut tables = self.db.tables.write();
        for op in self.undo.drain(..).rev() {
            match op {
                Undo::Insert { table, rid } => {
                    if let Some(t) = tables.get_mut(&table) {
                        t.delete(rid);
                    }
                }
                Undo::Delete { table, rid, row } => {
                    if let Some(t) = tables.get_mut(&table) {
                        t.restore(rid, row)?;
                    }
                }
                Undo::Update { table, rid, old } => {
                    if let Some(t) = tables.get_mut(&table) {
                        t.update(rid, old)?;
                    }
                }
                Undo::CreateTable { table } => {
                    tables.remove(&table);
                }
            }
        }
        drop(tables);
        self.db.locks.release_all(self.id);
        Ok(())
    }

    fn charge(&mut self, us: u64) {
        self.virtual_us += us;
    }

    fn lock_write(&mut self, table: &str, key: &[SqlValue]) -> Result<()> {
        let res = match self.db.profile.granularity {
            LockGranularity::Table => Resource::Table(table.to_owned()),
            LockGranularity::Row => Resource::Row(table.to_owned(), key.to_vec()),
        };
        if self.db.locks.acquire(
            self.id,
            res,
            LockMode::Exclusive,
            self.db.profile.lock_timeout,
        ) {
            Ok(())
        } else {
            Err(SqlError::LockTimeout {
                table: table.to_owned(),
            })
        }
    }

    fn lock_read(&mut self, table: &str) -> Result<()> {
        // Table-granularity engines take a shared table lock for reads;
        // row-granularity engines read without locks (read committed).
        if self.db.profile.granularity == LockGranularity::Table {
            let res = Resource::Table(table.to_owned());
            if !self
                .db
                .locks
                .acquire(self.id, res, LockMode::Shared, self.db.profile.lock_timeout)
            {
                return Err(SqlError::LockTimeout {
                    table: table.to_owned(),
                });
            }
        }
        Ok(())
    }

    fn dispatch(&mut self, stmt: Statement) -> Result<ResultSet> {
        match stmt {
            Statement::CreateTable(schema) => self.create_table(schema),
            Statement::CreateIndex {
                name,
                table,
                columns,
            } => self.create_index(&name, &table, &columns),
            Statement::Insert { table, rows } => self.insert(&table, rows),
            Statement::Select(sel) => self.select(sel),
            Statement::Update {
                table,
                sets,
                filter,
            } => self.update(&table, sets, filter),
            Statement::Delete { table, filter } => self.delete(&table, filter),
        }
    }

    fn create_table(&mut self, schema: TableSchema) -> Result<ResultSet> {
        self.charge(self.db.profile.costs.per_statement_us);
        let mut tables = self.db.tables.write();
        if tables.contains_key(&schema.name) {
            return Err(SqlError::Constraint(format!(
                "table {} already exists",
                schema.name
            )));
        }
        let name = schema.name.clone();
        tables.insert(name.clone(), Table::new(schema));
        self.undo.push(Undo::CreateTable { table: name });
        Ok(ResultSet::default())
    }

    fn create_index(&mut self, name: &str, table: &str, columns: &[String]) -> Result<ResultSet> {
        self.charge(self.db.profile.costs.per_statement_us);
        let mut tables = self.db.tables.write();
        let t = tables
            .get_mut(&table.to_lowercase())
            .ok_or_else(|| SqlError::Unknown(format!("table {table}")))?;
        t.create_index(name, columns)?;
        Ok(ResultSet::default())
    }

    fn insert(&mut self, table: &str, rows: Vec<Vec<crate::sql::ExprAst>>) -> Result<ResultSet> {
        let table = table.to_lowercase();
        let costs = self.db.profile.costs;
        self.charge(costs.per_statement_us);
        // Evaluate the constant rows first (no locks needed).
        let mut values: Vec<Row> = Vec::with_capacity(rows.len());
        for row in &rows {
            let mut out = Vec::with_capacity(row.len());
            for e in row {
                out.push(e.eval_const()?);
            }
            values.push(out);
        }
        let mut affected = 0;
        for row in values {
            let key = {
                let tables = self.db.tables.read();
                let t = tables
                    .get(&table)
                    .ok_or_else(|| SqlError::Unknown(format!("table {table}")))?;
                t.schema().check_row(&row)?;
                t.schema().key_of(&row)
            };
            self.lock_write(&table, &key)?;
            let rid = {
                let mut tables = self.db.tables.write();
                let t = tables.get_mut(&table).expect("checked above");
                t.insert(row)?
            };
            self.undo.push(Undo::Insert {
                table: table.clone(),
                rid,
            });
            self.charge(costs.write_us);
            affected += 1;
        }
        Ok(ResultSet {
            affected,
            ..ResultSet::default()
        })
    }

    /// Binds a filter and collects the matching `(rid, row)` pairs.
    fn matching(
        &mut self,
        table: &str,
        filter: &Option<crate::sql::ExprAst>,
    ) -> Result<FilterMatches> {
        let costs = self.db.profile.costs;
        let tables = self.db.tables.read();
        let t = tables
            .get(table)
            .ok_or_else(|| SqlError::Unknown(format!("table {table}")))?;
        let bound = match filter {
            Some(f) => Some(f.bind(t.schema())?),
            None => None,
        };
        let candidates = t.candidates(bound.as_ref());
        let indexed = candidates.len() < t.len() || t.is_empty();
        let mut out = Vec::new();
        for rid in candidates {
            if let Some(row) = t.get(rid) {
                let keep = match &bound {
                    Some(f) => f.matches(row)?,
                    None => true,
                };
                if keep {
                    out.push((rid, row.clone()));
                }
            }
        }
        drop(tables);
        if indexed {
            self.charge(costs.point_read_us * out.len().max(1) as u64);
        } else {
            let scanned = self
                .db
                .tables
                .read()
                .get(table)
                .map(Table::len)
                .unwrap_or(0);
            self.charge(costs.scan_row_us * scanned as u64);
        }
        Ok((bound, out))
    }

    fn select(&mut self, sel: SelectStmt) -> Result<ResultSet> {
        let table = sel.table.to_lowercase();
        let costs = self.db.profile.costs;
        self.charge(costs.per_statement_us);
        if sel.for_update {
            // FOR UPDATE takes exclusive locks up front.
            let (_, rows) = self.matching(&table, &sel.filter)?;
            for (_, row) in &rows {
                let key = {
                    let tables = self.db.tables.read();
                    tables[&table].schema().key_of(row)
                };
                self.lock_write(&table, &key)?;
            }
        } else {
            self.lock_read(&table)?;
        }
        let (_, mut matched) = self.matching(&table, &sel.filter)?;

        let tables = self.db.tables.read();
        let schema = tables
            .get(&table)
            .ok_or_else(|| SqlError::Unknown(format!("table {table}")))?
            .schema()
            .clone();
        drop(tables);

        if let Some((col, desc)) = &sel.order_by {
            let ci = schema.col(col)?;
            matched.sort_by(|(_, a), (_, b)| {
                let ord = a[ci].cmp(&b[ci]);
                if *desc {
                    ord.reverse()
                } else {
                    ord
                }
            });
        }
        if let Some(n) = sel.limit {
            matched.truncate(n);
        }

        match &sel.projection {
            Projection::Star => Ok(ResultSet {
                columns: schema.columns.iter().map(|c| c.name.clone()).collect(),
                rows: matched.into_iter().map(|(_, r)| r).collect(),
                affected: 0,
            }),
            Projection::Cols(cols) => {
                let idx: Result<Vec<usize>> = cols.iter().map(|c| schema.col(c)).collect();
                let idx = idx?;
                Ok(ResultSet {
                    columns: cols.clone(),
                    rows: matched
                        .into_iter()
                        .map(|(_, r)| idx.iter().map(|&i| r[i].clone()).collect())
                        .collect(),
                    affected: 0,
                })
            }
            Projection::Aggregates(aggs) => {
                let rows: Vec<Row> = matched.into_iter().map(|(_, r)| r).collect();
                let mut out = Vec::with_capacity(aggs.len());
                let mut labels = Vec::with_capacity(aggs.len());
                for agg in aggs {
                    let (label, v) = eval_aggregate(agg, &schema, &rows)?;
                    labels.push(label);
                    out.push(v);
                }
                Ok(ResultSet {
                    columns: labels,
                    rows: vec![out],
                    affected: 0,
                })
            }
        }
    }

    fn update(
        &mut self,
        table: &str,
        sets: Vec<(String, crate::sql::ExprAst)>,
        filter: Option<crate::sql::ExprAst>,
    ) -> Result<ResultSet> {
        let table = table.to_lowercase();
        let costs = self.db.profile.costs;
        self.charge(costs.per_statement_us);
        let (bound_filter, matched) = self.matching(&table, &filter)?;
        let schema = {
            let tables = self.db.tables.read();
            tables
                .get(&table)
                .ok_or_else(|| SqlError::Unknown(format!("table {table}")))?
                .schema()
                .clone()
        };
        let bound_sets: Result<Vec<(usize, Expr)>> = sets
            .iter()
            .map(|(c, e)| Ok((schema.col(c)?, e.bind(&schema)?)))
            .collect();
        let bound_sets = bound_sets?;
        let mut affected = 0;
        for (rid, old_row) in matched {
            self.lock_write(&table, &schema.key_of(&old_row))?;
            // Matching ran before the lock was held: re-read the row and
            // re-validate the predicate against its *current* contents, or
            // concurrent writers would be lost.
            let current = {
                let tables = self.db.tables.read();
                tables.get(&table).and_then(|t| t.get(rid).cloned())
            };
            let Some(current) = current else { continue };
            if let Some(f) = &bound_filter {
                if !f.matches(&current)? {
                    continue;
                }
            }
            let mut new_row = current.clone();
            for (ci, e) in &bound_sets {
                new_row[*ci] = e.eval(&current)?;
            }
            {
                let mut tables = self.db.tables.write();
                let t = tables.get_mut(&table).expect("checked");
                let old = t.update(rid, new_row)?;
                self.undo.push(Undo::Update {
                    table: table.clone(),
                    rid,
                    old,
                });
            }
            affected += 1;
            self.charge(costs.write_us);
        }
        Ok(ResultSet {
            affected,
            ..ResultSet::default()
        })
    }

    fn delete(&mut self, table: &str, filter: Option<crate::sql::ExprAst>) -> Result<ResultSet> {
        let table = table.to_lowercase();
        let costs = self.db.profile.costs;
        self.charge(costs.per_statement_us);
        let (bound_filter, matched) = self.matching(&table, &filter)?;
        let schema = {
            let tables = self.db.tables.read();
            tables
                .get(&table)
                .ok_or_else(|| SqlError::Unknown(format!("table {table}")))?
                .schema()
                .clone()
        };
        let mut affected = 0;
        for (rid, row) in matched {
            self.lock_write(&table, &schema.key_of(&row))?;
            let mut tables = self.db.tables.write();
            let t = tables.get_mut(&table).expect("checked");
            // Re-validate under the lock (see update).
            let still_matches = match (t.get(rid), &bound_filter) {
                (None, _) => false,
                (Some(_), None) => true,
                (Some(r), Some(f)) => f.matches(r)?,
            };
            if still_matches {
                if let Some(old) = t.delete(rid) {
                    self.undo.push(Undo::Delete {
                        table: table.clone(),
                        rid,
                        row: old,
                    });
                    affected += 1;
                    drop(tables);
                    self.charge(costs.write_us);
                }
            }
        }
        Ok(ResultSet {
            affected,
            ..ResultSet::default()
        })
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.rollback_internal();
        }
    }
}

fn eval_aggregate(
    agg: &Aggregate,
    schema: &TableSchema,
    rows: &[Row],
) -> Result<(String, SqlValue)> {
    let col_vals = |name: &str| -> Result<Vec<SqlValue>> {
        let ci = schema.col(name)?;
        Ok(rows
            .iter()
            .map(|r| r[ci].clone())
            .filter(|v| !v.is_null())
            .collect())
    };
    Ok(match agg {
        Aggregate::CountStar => ("count(*)".into(), SqlValue::Int(rows.len() as i64)),
        Aggregate::Count(c) => (
            format!("count({c})"),
            SqlValue::Int(col_vals(c)?.len() as i64),
        ),
        Aggregate::CountDistinct(c) => {
            let distinct: BTreeSet<SqlValue> = col_vals(c)?.into_iter().collect();
            (
                format!("count(distinct {c})"),
                SqlValue::Int(distinct.len() as i64),
            )
        }
        Aggregate::Sum(c) => {
            let vals = col_vals(c)?;
            let v = if vals.is_empty() {
                SqlValue::Null
            } else if vals.iter().all(|v| matches!(v, SqlValue::Int(_))) {
                SqlValue::Int(vals.iter().filter_map(SqlValue::as_int).sum())
            } else {
                SqlValue::Real(vals.iter().filter_map(SqlValue::as_real).sum())
            };
            (format!("sum({c})"), v)
        }
        Aggregate::Min(c) => (
            format!("min({c})"),
            col_vals(c)?.into_iter().min().unwrap_or(SqlValue::Null),
        ),
        Aggregate::Max(c) => (
            format!("max({c})"),
            col_vals(c)?.into_iter().max().unwrap_or(SqlValue::Null),
        ),
        Aggregate::Avg(c) => {
            let vals = col_vals(c)?;
            let v = if vals.is_empty() {
                SqlValue::Null
            } else {
                SqlValue::Real(
                    vals.iter().filter_map(SqlValue::as_real).sum::<f64>() / vals.len() as f64,
                )
            };
            (format!("avg({c})"), v)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> Database {
        let db = Database::new(EngineProfile::h2());
        db.execute("CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, balance INT)")
            .unwrap();
        for i in 0..10 {
            db.execute(&format!(
                "INSERT INTO accounts VALUES ({i}, 'own{i}', {})",
                i * 100
            ))
            .unwrap();
        }
        db
    }

    #[test]
    fn crud_roundtrip() {
        let db = bank();
        let r = db
            .execute("SELECT balance FROM accounts WHERE id = 3")
            .unwrap();
        assert_eq!(r.rows, vec![vec![SqlValue::Int(300)]]);
        let r = db
            .execute("UPDATE accounts SET balance = balance + 50 WHERE id = 3")
            .unwrap();
        assert_eq!(r.affected, 1);
        let r = db
            .execute("SELECT balance FROM accounts WHERE id = 3")
            .unwrap();
        assert_eq!(r.rows, vec![vec![SqlValue::Int(350)]]);
        let r = db.execute("DELETE FROM accounts WHERE id >= 8").unwrap();
        assert_eq!(r.affected, 2);
        assert_eq!(db.table_len("accounts"), 8);
    }

    #[test]
    fn select_order_limit() {
        let db = bank();
        let r = db
            .execute("SELECT id FROM accounts ORDER BY balance DESC LIMIT 3")
            .unwrap();
        let ids: Vec<i64> = r.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![9, 8, 7]);
    }

    #[test]
    fn aggregates() {
        let db = bank();
        let r = db
            .execute("SELECT COUNT(*), SUM(balance), MIN(balance), MAX(balance) FROM accounts")
            .unwrap();
        assert_eq!(
            r.rows[0],
            vec![
                SqlValue::Int(10),
                SqlValue::Int(4500),
                SqlValue::Int(0),
                SqlValue::Int(900)
            ]
        );
        db.execute("UPDATE accounts SET owner = 'dup' WHERE id < 5")
            .unwrap();
        let r = db
            .execute("SELECT COUNT(DISTINCT owner) FROM accounts")
            .unwrap();
        assert_eq!(r.rows[0][0], SqlValue::Int(6));
    }

    #[test]
    fn rollback_undoes_everything() {
        let db = bank();
        let mut txn = db.begin().unwrap();
        txn.execute("INSERT INTO accounts VALUES (100, 'new', 1)")
            .unwrap();
        txn.execute("UPDATE accounts SET balance = 0 WHERE id = 1")
            .unwrap();
        txn.execute("DELETE FROM accounts WHERE id = 2").unwrap();
        txn.rollback().unwrap();
        assert_eq!(db.table_len("accounts"), 10);
        let r = db
            .execute("SELECT balance FROM accounts WHERE id = 1")
            .unwrap();
        assert_eq!(r.rows[0][0], SqlValue::Int(100));
        let r = db
            .execute("SELECT COUNT(*) FROM accounts WHERE id = 2")
            .unwrap();
        assert_eq!(r.rows[0][0], SqlValue::Int(1));
    }

    #[test]
    fn drop_without_commit_rolls_back() {
        let db = bank();
        {
            let mut txn = db.begin().unwrap();
            txn.execute("DELETE FROM accounts WHERE id = 0").unwrap();
        }
        assert_eq!(db.table_len("accounts"), 10);
    }

    #[test]
    fn table_lock_contention_times_out() {
        let db = bank();
        let mut t1 = db.begin().unwrap();
        t1.execute("UPDATE accounts SET balance = 1 WHERE id = 1")
            .unwrap();
        // A second writer on a table-locking engine must time out.
        let mut t2 = db.begin().unwrap();
        let err = t2
            .execute("UPDATE accounts SET balance = 2 WHERE id = 2")
            .unwrap_err();
        assert!(matches!(err, SqlError::LockTimeout { .. }));
        t1.commit().unwrap();
        // After commit, a fresh transaction succeeds.
        db.execute("UPDATE accounts SET balance = 2 WHERE id = 2")
            .unwrap();
    }

    #[test]
    fn row_locks_allow_disjoint_writers() {
        let db = Database::new(EngineProfile::innodb());
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 0), (2, 0)").unwrap();
        let mut t1 = db.begin().unwrap();
        t1.execute("UPDATE t SET v = 1 WHERE id = 1").unwrap();
        let mut t2 = db.begin().unwrap();
        t2.execute("UPDATE t SET v = 2 WHERE id = 2").unwrap(); // disjoint row: ok
        t1.commit().unwrap();
        t2.commit().unwrap();
        let r = db.execute("SELECT v FROM t ORDER BY id").unwrap();
        assert_eq!(r.rows, vec![vec![SqlValue::Int(1)], vec![SqlValue::Int(2)]]);
    }

    #[test]
    fn lock_timeout_aborts_transaction() {
        let db = bank();
        let mut t1 = db.begin().unwrap();
        t1.execute("UPDATE accounts SET balance = 1 WHERE id = 1")
            .unwrap();
        let mut t2 = db.begin().unwrap();
        t2.execute("INSERT INTO accounts VALUES (50, 'x', 0)")
            .unwrap_err();
        // t2 aborted: further use fails.
        assert!(matches!(
            t2.execute("SELECT id FROM accounts"),
            Err(SqlError::TransactionClosed)
        ));
        t1.commit().unwrap();
        // And its insert never happened.
        assert_eq!(db.table_len("accounts"), 10);
    }

    #[test]
    fn virtual_cost_accumulates() {
        let db = bank();
        let mut txn = db.begin().unwrap();
        txn.execute("UPDATE accounts SET balance = 0 WHERE id = 1")
            .unwrap();
        let c = txn.virtual_cost();
        assert!(c > Duration::ZERO);
        txn.execute("UPDATE accounts SET balance = 0 WHERE id = 2")
            .unwrap();
        assert!(txn.virtual_cost() > c);
        txn.commit().unwrap();
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let db = bank();
        let snap = db.snapshot();
        let copy = Database::new(EngineProfile::derby());
        copy.restore(&snap).unwrap();
        assert_eq!(copy.table_len("accounts"), 10);
        let r = copy
            .execute("SELECT balance FROM accounts WHERE id = 7")
            .unwrap();
        assert_eq!(r.rows[0][0], SqlValue::Int(700));
    }

    #[test]
    fn errors_on_unknown_objects() {
        let db = bank();
        assert!(matches!(
            db.execute("SELECT x FROM missing"),
            Err(SqlError::Unknown(_))
        ));
        assert!(matches!(
            db.execute("SELECT nosuch FROM accounts"),
            Err(SqlError::Unknown(_))
        ));
    }
}
