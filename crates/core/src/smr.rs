//! State machine replication (Sec. III-B).
//!
//! "With state machine replication, all transactions are ordered by the
//! total order broadcast service": (i) the client broadcasts `T` to all
//! replicas using the service; (ii) upon delivering `T`, each database
//! executes and commits the transaction and sends the answer to the
//! client; (iii) the client waits for the first answer.
//!
//! "When a replica crashes, the protocol proceeds normally with no
//! interruptions as long as at least one replica survives." Adding a
//! replica is a reconfiguration broadcast: the request carries the
//! sequence number of the last ordered transaction, and the new replica
//! fetches the snapshot from the proposer.

use crate::msgs::{reply_msg, TxnEnvelope};
use crate::shard::{ShardRole, TwoPcEngine};
use shadowdb_eventml::process::HasherAdapter;
use shadowdb_eventml::{cached_header, Ctx, Msg, Process, SendInstr, Value};
use shadowdb_loe::Loc;
use shadowdb_sqldb::{Database, RowBatch, Snapshot, SqlValue};
use shadowdb_tob::{parse_deliver, parse_subok, InOrderBuffer};
use shadowdb_workloads::{apply_group, TxnRequest};
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::time::Duration;

/// Request a snapshot from a replica: body `<requester>` or
/// `<requester, min_seq>` (the donor defers until it has executed at
/// least `min_seq` deliveries, so the snapshot can never undershoot the
/// requester's subscription point).
pub const FETCH_SNAPSHOT_HEADER: &str = "smr/fetchsnap";
/// A snapshot chunk: body `<chunk, <<total, next_seq>, bytes>>`.
pub const SNAPSHOT_CHUNK_HEADER: &str = "smr/snapchunk";
/// Joiner-internal retry timer: if the snapshot has not landed (donor
/// crashed mid-stream), re-request from the next donor on the list.
const JOIN_RETRY_HEADER: &str = "smr/joinretry";

/// An SMR ShadowDB replica: a broadcast-service subscriber executing every
/// delivered transaction.
pub struct SmrReplica {
    db: Database,
    incoming: InOrderBuffer,
    /// client -> (last cseq, committed, results) for duplicate suppression.
    last_reply: HashMap<Loc, (i64, bool, Vec<SqlValue>)>,
    executed: i64,
    /// Snapshot-joining state: deliveries buffer inside `incoming` until
    /// the snapshot establishes the starting sequence number.
    joining: bool,
    /// Donor candidates for a self-driven join ([`SmrReplica::joining_from`]):
    /// the subscription ack triggers the fetch, retries rotate through the
    /// list so a donor crash mid-stream does not strand the joiner.
    donors: Vec<Loc>,
    /// The TOB subscription point, once acked — the fetch's `min_seq`.
    sub_seq: Option<i64>,
    /// Fetch attempts so far (indexes the donor rotation).
    join_attempts: u64,
    snap_chunks: BTreeMap<i64, bytes::Bytes>,
    snap_total: Option<(i64, i64)>,
    transfer_batch_bytes: usize,
    step_cost: Duration,
    /// Reusable envelope buffer for group apply (always empty between
    /// steps; excluded from digests and cloned empty).
    group_scratch: Vec<TxnEnvelope>,
    /// Sharded deployments: this group's place in the shard map.
    role: Option<ShardRole>,
    /// The replicated 2PC state machine (present iff `role` is).
    engine: Option<TwoPcEngine>,
    /// Per-target-shard emission counters. Under SMR *every* replica
    /// emits (there is no primary); receivers deduplicate semantically,
    /// since each replica's envelopes carry its own location.
    twopc_seq: Vec<i64>,
}

impl SmrReplica {
    /// Creates a replica that executes from sequence number 0.
    pub fn new(db: Database) -> SmrReplica {
        SmrReplica {
            db,
            incoming: InOrderBuffer::new(),
            last_reply: HashMap::new(),
            executed: 0,
            joining: false,
            donors: Vec::new(),
            sub_seq: None,
            join_attempts: 0,
            snap_chunks: BTreeMap::new(),
            snap_total: None,
            transfer_batch_bytes: 50_000,
            step_cost: Duration::ZERO,
            group_scratch: Vec::new(),
            role: None,
            engine: None,
            twopc_seq: Vec::new(),
        }
    }

    /// Places this replica's group inside a sharded deployment: its shard,
    /// the shard map, and routes to every other group. Activates the 2PC
    /// engine on the delivery path. Snapshot joins do not yet transfer
    /// engine state, so sharded deployments must not add SMR replicas via
    /// [`SmrReplica::joining`] while cross-shard transactions are in
    /// flight.
    pub fn with_role(mut self, role: ShardRole) -> SmrReplica {
        self.engine = Some(TwoPcEngine::new(role.map, role.shard, role.probe.clone()));
        self.twopc_seq = vec![0; role.map.shards()];
        self.role = Some(role);
        self
    }

    /// Creates a replica that first fetches a snapshot from `donor` before
    /// executing (a replica added by reconfiguration). The deployment must
    /// route a [`FETCH_SNAPSHOT_HEADER`] request to the donor.
    pub fn joining(db: Database) -> SmrReplica {
        SmrReplica {
            joining: true,
            ..SmrReplica::new(db)
        }
    }

    /// Creates a self-driven joiner: once the deployment subscribes it at
    /// the broadcast service, the subscription ack triggers a snapshot
    /// fetch from `donors[0]` with the ack's sequence as `min_seq` — the
    /// donor defers until its execution reaches that point, so the
    /// snapshot plus the subscribed deliveries form a gapless history. If
    /// the snapshot does not land (donor crashed mid-stream), retries
    /// rotate through `donors`.
    pub fn joining_from(db: Database, donors: Vec<Loc>) -> SmrReplica {
        assert!(!donors.is_empty(), "a joiner needs at least one donor");
        SmrReplica {
            donors,
            ..SmrReplica::joining(db)
        }
    }

    /// Builds the snapshot-fetch request sent to the donor replica.
    pub fn fetch_snapshot_msg(requester: Loc) -> Msg {
        Msg::new(FETCH_SNAPSHOT_HEADER, Value::Loc(requester))
    }

    /// A snapshot-fetch request the donor defers until it has executed at
    /// least `min_seq` deliveries.
    pub fn fetch_snapshot_after_msg(requester: Loc, min_seq: i64) -> Msg {
        Msg::new(
            FETCH_SNAPSHOT_HEADER,
            Value::pair(Value::Loc(requester), Value::Int(min_seq)),
        )
    }

    /// Overrides the state-transfer batch bound (~50 KB by default).
    pub fn set_transfer_batch_bytes(&mut self, bytes: usize) {
        assert!(bytes > 0, "batches need at least one byte");
        self.transfer_batch_bytes = bytes;
    }

    /// Number of transactions executed.
    pub fn executed(&self) -> i64 {
        self.executed
    }

    /// A handle to this replica's database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Executes a run of in-order deliveries, group-applying consecutive
    /// transactions under one engine commit. A group flushes when a client
    /// reappears: duplicate suppression consults `last_reply`, which must
    /// reflect the client's earlier request before its next one is
    /// examined.
    fn execute_deliveries<I>(&mut self, slf: Loc, ready: I, outs: &mut Vec<SendInstr>)
    where
        I: IntoIterator<Item = shadowdb_tob::Delivery>,
    {
        let mut group = std::mem::take(&mut self.group_scratch);
        group.clear();
        for d in ready {
            let Some(env) = TxnEnvelope::from_value(&d.payload) else {
                continue;
            };
            // 2PC records break the run and step the protocol engine:
            // they must see the database outside the group's shared
            // engine transaction.
            if self.engine.is_some() && matches!(env.txn, TxnRequest::TwoPc(_)) {
                self.flush_group(slf, &mut group, outs);
                self.step_twopc(slf, &env, outs);
                continue;
            }
            if group.iter().any(|g| g.client == env.client) {
                self.flush_group(slf, &mut group, outs);
            }
            // Duplicate suppression (client resends surface as fresh
            // broadcast msgids but identical cseq — or as duplicate
            // deliveries filtered by the InOrderBuffer already; both are
            // covered).
            if let Some((last, committed, results)) = self.last_reply.get(&env.client) {
                if env.cseq <= *last {
                    outs.push(SendInstr::now(
                        env.client,
                        reply_msg(slf, *last, *committed, results),
                    ));
                    continue;
                }
            }
            group.push(env);
        }
        self.flush_group(slf, &mut group, outs);
        self.group_scratch = group;
    }

    /// Applies `group` as one engine transaction and emits replies in
    /// delivery order, with per-transaction dedup/cost bookkeeping.
    fn flush_group(&mut self, slf: Loc, group: &mut Vec<TxnEnvelope>, outs: &mut Vec<SendInstr>) {
        if group.is_empty() {
            return;
        }
        let reqs: Vec<&shadowdb_workloads::TxnRequest> = group.iter().map(|e| &e.txn).collect();
        let results = apply_group(&self.db, &reqs);
        drop(reqs);
        for (env, res) in group.drain(..).zip(results) {
            let (committed, results, cost) = res
                .map(|o| (o.committed, o.result, o.cost))
                .unwrap_or_else(|e| (false, vec![SqlValue::Text(e.to_string())], Duration::ZERO));
            self.step_cost += cost;
            self.executed += 1;
            self.last_reply
                .insert(env.client, (env.cseq, committed, results.clone()));
            outs.push(SendInstr::now(
                env.client,
                reply_msg(slf, env.cseq, committed, &results),
            ));
        }
    }

    /// Steps the 2PC engine on an ordered record and emits the owed
    /// actions. Every replica of the group emits (SMR has no primary);
    /// a record is durable the moment the TOB service ordered it, so no
    /// acknowledgment gating is needed. Duplicates re-derive the owed
    /// sends from replicated state without mutating anything.
    fn step_twopc(&mut self, slf: Loc, env: &TxnEnvelope, outs: &mut Vec<SendInstr>) {
        let TxnRequest::TwoPc(rec) = &env.txn else {
            return;
        };
        // A record whose cseq is *below* the sender's high-water mark is
        // not dropped: peer emissions can reach the broadcast service out
        // of order (each source replica sequences its own sends), so an
        // "old" record may carry a protocol step this group never saw.
        // Stepping it again is safe — the engine is idempotent.
        if let Some((last, _, _)) = self.last_reply.get(&env.client) {
            if env.cseq == *last {
                let (Some(role), Some(engine)) = (&self.role, &self.engine) else {
                    return;
                };
                let actions = engine.emissions(rec.txnid());
                outs.extend(role.render(slf, &actions, &mut self.twopc_seq));
                return;
            }
        }
        let (actions, cost) = self
            .engine
            .as_mut()
            .expect("engine present on the 2PC path")
            .step(rec, &self.db);
        self.step_cost += cost;
        self.executed += 1;
        // Placeholder entry: duplicates re-drive the protocol above,
        // never this cached value. The cseq is a high-water mark so a
        // reordered older record cannot regress it.
        let hw = self
            .last_reply
            .get(&env.client)
            .map_or(env.cseq, |(l, _, _)| env.cseq.max(*l));
        self.last_reply.insert(env.client, (hw, true, Vec::new()));
        let role = self.role.as_ref().expect("role present on the 2PC path");
        outs.extend(role.render(slf, &actions, &mut self.twopc_seq));
    }

    fn on_fetch_snapshot(&mut self, slf: Loc, body: &Value, outs: &mut Vec<SendInstr>) {
        let (requester, min_seq) = match body.as_loc() {
            Some(l) => (l, 0),
            None => match (body.fst(), body.snd()) {
                (Some(l), Some(s)) => match l.as_loc() {
                    Some(l) => (l, s.int()),
                    None => return,
                },
                _ => return,
            },
        };
        if self.incoming.next_seq() < min_seq {
            // Behind the requester's subscription point: a snapshot now
            // would leave a delivery gap the joiner can never fill. Answer
            // once execution has advanced past it.
            outs.push(SendInstr::after(
                Duration::from_millis(10),
                slf,
                Msg::new(FETCH_SNAPSHOT_HEADER, body.clone()),
            ));
            return;
        }
        let snapshot = self.db.snapshot();
        let batches = snapshot.to_batches(self.transfer_batch_bytes);
        let costs = self.db.profile().costs;
        // Snapshot preparation: session setup plus scanning every row.
        self.step_cost += Duration::from_millis(300)
            + Duration::from_micros(costs.scan_row_us * snapshot.row_count() as u64);
        let cols: usize = batches.iter().map(RowBatch::column_values).sum();
        self.step_cost += Duration::from_micros(costs.serialize_col_us * cols as u64);
        let total = batches.len() as i64;
        for (i, b) in batches.iter().enumerate() {
            outs.push(SendInstr::now(
                requester,
                Msg::new(
                    SNAPSHOT_CHUNK_HEADER,
                    Value::pair(
                        Value::Int(i as i64),
                        Value::pair(
                            Value::pair(Value::Int(total), Value::Int(self.incoming.next_seq())),
                            Value::Bytes(b.encode()),
                        ),
                    ),
                ),
            ));
        }
    }

    /// Fires (or retries) the snapshot fetch once the subscription point
    /// is known, rotating through the donor list and re-arming the retry
    /// timer — a donor crash mid-stream must not strand the joiner.
    fn kick_fetch(&mut self, slf: Loc, outs: &mut Vec<SendInstr>) {
        let Some(seq) = self.sub_seq else { return };
        if self.donors.is_empty() {
            return;
        }
        let donor = self.donors[(self.join_attempts as usize) % self.donors.len()];
        self.join_attempts += 1;
        outs.push(SendInstr::now(
            donor,
            SmrReplica::fetch_snapshot_after_msg(slf, seq),
        ));
        outs.push(SendInstr::after(
            Duration::from_secs(1),
            slf,
            Msg::new(JOIN_RETRY_HEADER, Value::Unit),
        ));
    }

    fn on_snapshot_chunk(&mut self, slf: Loc, body: &Value, outs: &mut Vec<SendInstr>) {
        if !self.joining {
            return;
        }
        let (i, rest) = body.unpair();
        let (meta, data) = rest.unpair();
        let (total, next_seq) = meta.unpair();
        // Chunks are keyed by their snapshot identity `(total, next_seq)`:
        // a retried fetch produces a later snapshot, and mixing chunk sets
        // across snapshots would restore garbage. Replicas are
        // deterministic state machines, so two snapshots with equal
        // identity have identical content and their chunks interchange.
        let id = (total.int(), next_seq.int());
        if self.snap_total != Some(id) {
            self.snap_chunks.clear();
            self.snap_total = Some(id);
        }
        if let Some(b) = data.as_bytes() {
            self.snap_chunks.insert(i.int(), b.clone());
        }
        let (total, next_seq) = self.snap_total.expect("just set");
        if (self.snap_chunks.len() as i64) < total {
            return;
        }
        let decoded: Result<Vec<RowBatch>, _> = self
            .snap_chunks
            .values()
            .map(|b| RowBatch::decode(b.clone()))
            .collect();
        let Ok(batches) = decoded else { return };
        let Ok(snapshot) = Snapshot::from_batches(&batches) else {
            return;
        };
        let costs = self.db.profile().costs;
        let rows: usize = batches.iter().map(|b| b.rows.len()).sum();
        let bytes: usize = batches.iter().map(RowBatch::encoded_len).sum();
        self.step_cost += Duration::from_micros(
            costs.bulk_insert_us * rows as u64 + costs.bulk_insert_byte_ns * bytes as u64 / 1_000,
        );
        if self.db.restore(&snapshot).is_err() {
            return;
        }
        self.joining = false;
        // Skip everything the snapshot already covers, then replay whatever
        // arrived while joining.
        self.executed = next_seq;
        let held = std::mem::replace(&mut self.incoming, InOrderBuffer::starting_at(next_seq));
        let mut ready = Vec::new();
        for d in held.into_pending() {
            ready.extend(self.incoming.offer(d));
        }
        self.execute_deliveries(slf, ready, outs);
        self.snap_chunks.clear();
        self.snap_total = None;
    }
}

impl Process for SmrReplica {
    fn step_into(&mut self, ctx: &Ctx, msg: &Msg, out: &mut Vec<SendInstr>) {
        let h = msg.header;
        if h == cached_header!(FETCH_SNAPSHOT_HEADER) {
            self.on_fetch_snapshot(ctx.slf, &msg.body, out);
        } else if h == cached_header!(SNAPSHOT_CHUNK_HEADER) {
            self.on_snapshot_chunk(ctx.slf, &msg.body, out);
        } else if h == cached_header!(JOIN_RETRY_HEADER) {
            if self.joining {
                self.kick_fetch(ctx.slf, out);
            }
        } else if let Some(seq) = parse_subok(msg) {
            // The subscription ack pins the join's `min_seq`: the first
            // ack wins (every broadcast server acks its own sequence, and
            // each covers all slots from its ack onward, so any single ack
            // is a safe lower bound for the fetch).
            if self.joining && self.sub_seq.is_none() {
                self.sub_seq = Some(seq);
                self.kick_fetch(ctx.slf, out);
            }
        } else if let Some(d) = parse_deliver(msg) {
            let ready = self.incoming.offer(d);
            if !self.joining {
                self.execute_deliveries(ctx.slf, ready, out);
            }
        }
    }

    fn take_step_cost(&mut self) -> Duration {
        std::mem::take(&mut self.step_cost)
    }

    fn clone_box(&self) -> Box<dyn Process> {
        let db = Database::new(self.db.profile().clone());
        db.restore(&self.db.snapshot())
            .expect("snapshot of a valid database restores");
        Box::new(SmrReplica {
            db,
            incoming: self.incoming.clone(),
            last_reply: self.last_reply.clone(),
            executed: self.executed,
            joining: self.joining,
            donors: self.donors.clone(),
            sub_seq: self.sub_seq,
            join_attempts: self.join_attempts,
            snap_chunks: self.snap_chunks.clone(),
            snap_total: self.snap_total,
            transfer_batch_bytes: self.transfer_batch_bytes,
            step_cost: self.step_cost,
            group_scratch: Vec::new(),
            role: self.role.clone(),
            engine: self.engine.clone(),
            twopc_seq: self.twopc_seq.clone(),
        })
    }

    fn digest(&self, hasher: &mut dyn Hasher) {
        let mut h = HasherAdapter(hasher);
        (self.executed, self.joining, self.incoming.next_seq()).hash(&mut h);
        (self.sub_seq, self.join_attempts).hash(&mut h);
        self.twopc_seq.hash(&mut h);
    }
}
