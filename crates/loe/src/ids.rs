//! Core identifiers shared by the whole stack: locations, event ids, and
//! virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// The location ("space" coordinate) of an event: a process identity.
///
/// Locations are small copyable handles; a distributed system is described by
/// a bag of locations (the `locs` parameter of an EventML specification).
///
/// # Example
///
/// ```
/// use shadowdb_loe::Loc;
/// let acceptor = Loc::new(2);
/// assert_eq!(acceptor.index(), 2);
/// assert_eq!(acceptor.to_string(), "loc2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Loc(u32);

impl Loc {
    /// Creates a location from its numeric index.
    pub const fn new(index: u32) -> Self {
        Loc(index)
    }

    /// Returns the numeric index of this location.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Enumerates the first `n` locations: `loc0, loc1, …`.
    pub fn first_n(n: u32) -> Vec<Loc> {
        (0..n).map(Loc::new).collect()
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loc{}", self.0)
    }
}

impl fmt::Debug for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loc{}", self.0)
    }
}

impl From<u32> for Loc {
    fn from(index: u32) -> Self {
        Loc(index)
    }
}

/// Identifies one event within an [`EventOrder`](crate::EventOrder).
///
/// Event ids are indices into the trace that recorded them; they are only
/// meaningful relative to that trace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u32);

impl EventId {
    /// Creates an event id from a raw trace index.
    pub const fn new(index: u32) -> Self {
        EventId(index)
    }

    /// Returns the raw trace index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Debug for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Virtual time, in microseconds since the start of a run.
///
/// All simulated clocks in the repository use this single representation so
/// that traces, schedules, and measurements compose without conversion.
///
/// # Example
///
/// ```
/// use shadowdb_loe::VTime;
/// use std::time::Duration;
///
/// let t = VTime::from_millis(3) + Duration::from_micros(500);
/// assert_eq!(t.as_micros(), 3_500);
/// assert_eq!(t.as_secs_f64(), 0.0035);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VTime(u64);

impl VTime {
    /// The origin of virtual time.
    pub const ZERO: VTime = VTime(0);

    /// A time far beyond any simulated horizon.
    pub const MAX: VTime = VTime(u64::MAX);

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        VTime(us)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        VTime(ms * 1_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        VTime(s * 1_000_000)
    }

    /// Creates a time from fractional seconds, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "time must be finite and non-negative"
        );
        VTime((s * 1e6).round() as u64)
    }

    /// Returns the number of whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction of another instant, as a duration.
    pub fn saturating_since(self, earlier: VTime) -> Duration {
        Duration::from_micros(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for VTime {
    type Output = VTime;
    fn add(self, rhs: Duration) -> VTime {
        VTime(self.0 + rhs.as_micros() as u64)
    }
}

impl AddAssign<Duration> for VTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_micros() as u64;
    }
}

impl Sub<VTime> for VTime {
    type Output = Duration;
    fn sub(self, rhs: VTime) -> Duration {
        Duration::from_micros(
            self.0
                .checked_sub(rhs.0)
                .expect("VTime subtraction underflow"),
        )
    }
}

impl fmt::Display for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_roundtrip_and_display() {
        let l = Loc::new(7);
        assert_eq!(l.index(), 7);
        assert_eq!(format!("{l}"), "loc7");
        assert_eq!(Loc::from(7u32), l);
    }

    #[test]
    fn loc_first_n_enumerates() {
        let ls = Loc::first_n(3);
        assert_eq!(ls, vec![Loc::new(0), Loc::new(1), Loc::new(2)]);
    }

    #[test]
    fn vtime_arithmetic() {
        let t = VTime::from_millis(2);
        let u = t + Duration::from_micros(10);
        assert_eq!(u.as_micros(), 2_010);
        assert_eq!(u - t, Duration::from_micros(10));
        assert_eq!(u.saturating_since(t), Duration::from_micros(10));
        assert_eq!(t.saturating_since(u), Duration::ZERO);
    }

    #[test]
    fn vtime_from_secs_f64_rounds() {
        assert_eq!(VTime::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(VTime::from_secs(3).as_secs_f64(), 3.0);
    }

    #[test]
    #[should_panic]
    fn vtime_negative_rejected() {
        let _ = VTime::from_secs_f64(-1.0);
    }

    #[test]
    fn vtime_ordering() {
        assert!(VTime::ZERO < VTime::from_micros(1));
        assert!(VTime::from_micros(1) < VTime::MAX);
    }

    #[test]
    fn event_id_index() {
        assert_eq!(EventId::new(5).index(), 5);
        assert_eq!(format!("{}", EventId::new(5)), "e5");
    }
}
