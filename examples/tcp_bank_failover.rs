//! Primary failover over real TCP sockets.
//!
//! The same `PbrDeployment` graph the simulator example (`bank_failover`)
//! and the thread example (`live_bank_failover`) build deploys here onto
//! `shadowdb-tcpnet`: every replica and service process runs on its own
//! operating-system thread behind a loopback `TcpListener`, and every
//! message between them — client requests, broadcasts, heartbeats,
//! answers — crosses a kernel socket as length-prefixed codec frames.
//! Mid-run the primary is crashed (its thread dropped, its connections
//! severed); the verified recovery — suspicion, totally ordered
//! configuration change, election, state transfer, resumption — plays
//! out over the sockets, and every submitted transaction is still
//! answered exactly once.
//!
//! Run with: `cargo run --release --example tcp_bank_failover`

use shadowdb::deploy::{DeployOptions, PbrDeployment};
use shadowdb::diversity::DiversityPolicy;
use shadowdb::pbr::PbrOptions;
use shadowdb_tcpnet::TcpNet;
use shadowdb_workloads::bank;
use std::time::{Duration, Instant};

fn main() {
    let accounts = 1_000;
    let txns_per_client = 100;
    let clients = 4;

    let options = DeployOptions {
        diversity: DiversityPolicy::Trio,
        client_timeout: Duration::from_millis(500),
        ..DeployOptions::new(
            clients,
            move |client| {
                let mut g = bank::BankGen::new(50 + client as u64, accounts);
                (0..txns_per_client).map(|_| g.next_txn()).collect()
            },
            move |db| bank::load(db, accounts).expect("loads"),
        )
    };
    let pbr = PbrOptions {
        heartbeat_every: Duration::from_millis(50),
        detect_after: Duration::from_millis(250),
        ..PbrOptions::default()
    };

    let mut net = TcpNet::new();
    let deployment = PbrDeployment::build(&mut net, &options, pbr);
    println!(
        "replicas on sockets: primary {} (h2), backup {} (hsqldb), spare {} (derby)",
        deployment.replicas[0], deployment.replicas[1], deployment.replicas[2]
    );

    // Let transactions flow, then kill the primary's process: its thread
    // is dropped and its TCP connections die with it.
    let t0 = Instant::now();
    while deployment.committed() < 20 {
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "no progress before the crash"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let before = deployment.committed();
    println!("committed before crash : {before}");
    println!("crashing the primary at t = {:?} …", t0.elapsed());
    net.crash_at(net.now(), deployment.replicas[0]);

    while deployment.committed() < clients * txns_per_client {
        assert!(
            t0.elapsed() < Duration::from_secs(120),
            "failover must complete: {} / {} answered",
            deployment.committed(),
            clients * txns_per_client
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let resends: u64 = deployment.stats.iter().map(|s| s.lock().resends).sum();
    println!("committed after failover: {}", deployment.committed());
    println!("client retransmissions  : {resends}");
    println!("wall-clock total        : {:?}", t0.elapsed());
    assert_eq!(
        deployment.committed(),
        clients * txns_per_client,
        "every transaction answered exactly once"
    );
    assert!(resends > 0, "clients must have retried during the outage");

    net.shutdown();
    println!("survived a primary crash over real TCP sockets; all threads joined.");
}
