//! Shared bookkeeping: the location → listener-address map, the fault
//! plane, and the deployment seed — the state every shard event loop, the
//! control thread, and the runtime handle share.

use parking_lot::Mutex;
use shadowdb_runtime::FaultPlan;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One allocated location: its listener address. Whether it is a node or
/// a port lives on the owning shard (its `hosts`/`ports` maps) — senders
/// only need somewhere to connect.
pub struct SlotInfo {
    /// Loopback address of the location's listener.
    pub addr: SocketAddr,
}

/// Link-state counters aggregated across every sender in the net: how
/// often the frame layer reconnected, dropped, or duplicated. Tests
/// assert on these through `TcpNet::link_stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Successful re-establishments of a previously connected link
    /// (force-closes by the fault shim land here after heal).
    pub reconnects: u64,
    /// Frames lost: lossy-window verdicts plus drop-oldest evictions from
    /// a full pending queue.
    pub frames_dropped: u64,
    /// Frames written twice by a duplication window.
    pub frames_duplicated: u64,
}

/// The shared fault plane of a net: the installed schedule plus the
/// frame-layer counters every link reports into.
pub struct FaultPlane {
    /// Fast-path flag: set once a plan is installed, so the per-frame
    /// send path never touches the mutex on an unfaulted net.
    pub engaged: AtomicBool,
    /// The installed fault schedule, if any.
    pub plan: Mutex<Option<FaultPlan>>,
    /// See [`LinkStats::reconnects`].
    pub reconnects: AtomicU64,
    /// See [`LinkStats::frames_dropped`].
    pub frames_dropped: AtomicU64,
    /// See [`LinkStats::frames_duplicated`].
    pub frames_duplicated: AtomicU64,
}

impl FaultPlane {
    fn new() -> FaultPlane {
        FaultPlane {
            engaged: AtomicBool::new(false),
            plan: Mutex::new(None),
            reconnects: AtomicU64::new(0),
            frames_dropped: AtomicU64::new(0),
            frames_duplicated: AtomicU64::new(0),
        }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> LinkStats {
        LinkStats {
            reconnects: self.reconnects.load(Ordering::Relaxed),
            frames_dropped: self.frames_dropped.load(Ordering::Relaxed),
            frames_duplicated: self.frames_duplicated.load(Ordering::Relaxed),
        }
    }
}

/// State shared by the runtime handle, the shard event loops, and the
/// control thread.
pub struct Registry {
    /// Slot `i` is location `i`; grows as locations are allocated.
    pub slots: Mutex<Vec<SlotInfo>>,
    /// Set once at shutdown: link connects stop retrying.
    pub shutdown: AtomicBool,
    /// The net's start instant: fault windows are interpreted on this
    /// clock.
    pub start: Instant,
    /// The installed fault plan and frame-layer counters.
    pub faults: FaultPlane,
    /// The deployment seed: the pure input of reconnect-backoff jitter,
    /// so chaos-soak schedules are byte-identical across runs.
    pub seed: u64,
}

impl Registry {
    /// An empty registry; `start` anchors the runtime clock fault windows
    /// are checked against, `seed` derives all backoff jitter.
    pub fn new(start: Instant, seed: u64) -> Arc<Registry> {
        Arc::new(Registry {
            slots: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            start,
            faults: FaultPlane::new(),
            seed,
        })
    }

    /// The listener address of `loc`, if allocated.
    pub fn addr_of(&self, loc: u32) -> Option<SocketAddr> {
        self.slots.lock().get(loc as usize).map(|s| s.addr)
    }
}
