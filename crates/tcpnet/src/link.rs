//! Outbound links: lazily established per-(sender, destination) TCP
//! connections with reconnect and capped exponential backoff.
//!
//! Each sending thread (a node thread, or the control thread injecting
//! external messages) owns one [`Links`]. A link is a single TCP stream
//! written by a single thread, so messages on one link arrive in FIFO
//! order; the per-connection [`FrameEncoder`] scratch buffer makes
//! steady-state sends allocation-free.

use crate::registry::Registry;
use shadowdb_eventml::{FrameEncoder, Msg};
use shadowdb_loe::Loc;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// First reconnect delay; doubles per attempt up to [`BACKOFF_CAP`].
const BACKOFF_START: Duration = Duration::from_millis(1);
/// Ceiling on a single backoff sleep.
const BACKOFF_CAP: Duration = Duration::from_millis(50);
/// Connection attempts per send before the message is dropped. Protocols
/// assume fair-lossy links at worst (clients retransmit), so a send to a
/// persistently unreachable listener gives up rather than wedge the
/// sending protocol thread.
const MAX_ATTEMPTS: u32 = 6;

/// The outbound half of one sending thread.
pub struct Links {
    registry: Arc<Registry>,
    /// Indexed by destination location; `None` until first use (or after a
    /// broken connection is dropped).
    conns: Vec<Option<TcpStream>>,
    enc: FrameEncoder,
}

impl Links {
    /// No connections yet; they are established on first send per link.
    pub fn new(registry: Arc<Registry>) -> Links {
        Links {
            registry,
            conns: Vec::new(),
            enc: FrameEncoder::new(),
        }
    }

    /// Encodes `msg` and writes the frame to the link to `dest`,
    /// establishing or re-establishing the connection as needed. On a
    /// persistent link failure the message is dropped (fair-lossy link
    /// semantics; see [`MAX_ATTEMPTS`]).
    pub fn send(&mut self, dest: Loc, msg: &Msg) {
        let idx = dest.index() as usize;
        if self.conns.len() <= idx {
            self.conns.resize_with(idx + 1, || None);
        }
        let frame = self.enc.encode(msg);
        if let Some(conn) = self.conns[idx].as_mut() {
            if conn.write_all(frame).is_ok() {
                return;
            }
            // Broken pipe: drop the stream and fall through to reconnect.
            self.conns[idx] = None;
        }
        if let Some(mut conn) = connect(&self.registry, idx) {
            if conn.write_all(frame).is_ok() {
                self.conns[idx] = Some(conn);
            }
        }
    }
}

/// Dials the listener of location `idx` with capped exponential backoff.
fn connect(registry: &Registry, idx: usize) -> Option<TcpStream> {
    let addr = registry.addr_of(idx as u32)?;
    let mut backoff = BACKOFF_START;
    for attempt in 0..MAX_ATTEMPTS {
        if registry.shutdown.load(Ordering::SeqCst) {
            return None;
        }
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                return Some(stream);
            }
            Err(_) if attempt + 1 < MAX_ATTEMPTS => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(BACKOFF_CAP);
            }
            Err(_) => {}
        }
    }
    None
}
