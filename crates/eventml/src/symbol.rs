//! Global string interning for message-header symbols.
//!
//! Every base-class recognizer match used to be an `Arc<str>` string
//! comparison; with ~10 messages per consensus round and one recognizer per
//! op, header comparison sits on the hottest path in the system. Interning
//! maps each distinct header name to a dense [`Symbol`] (`u32`) exactly once,
//! after which equality, hashing, and dispatch-table indexing are integer
//! operations, and [`crate::Header`] is `Copy`.
//!
//! The table is global and append-only: names are leaked (each *distinct*
//! name once — header vocabularies are small and static), so resolved
//! `&'static str` names never require a lock. Interning an already-known
//! name takes a read lock; protocols cache their `Header` constants anyway.

use crate::fxhash::FxHashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// An interned header name: a dense index into the global symbol table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Symbol(u32);

struct SymbolTable {
    by_name: FxHashMap<&'static str, u32>,
    names: Vec<&'static str>,
    /// Shared string payloads for embedding names in `Value`s (the send
    /// encoding) without allocating a fresh `Arc<str>` per message.
    shared: Vec<Arc<str>>,
}

fn table() -> &'static RwLock<SymbolTable> {
    static TABLE: OnceLock<RwLock<SymbolTable>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(SymbolTable {
            by_name: FxHashMap::default(),
            names: Vec::new(),
            shared: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `name`, returning its symbol and its canonical (leaked)
    /// string. Idempotent: the same name always yields the same symbol.
    pub fn intern(name: &str) -> (Symbol, &'static str) {
        let t = table();
        {
            let r = t.read().expect("symbol table");
            if let Some(&id) = r.by_name.get(name) {
                return (Symbol(id), r.names[id as usize]);
            }
        }
        let mut w = t.write().expect("symbol table");
        // Re-check: another thread may have interned between the locks.
        if let Some(&id) = w.by_name.get(name) {
            return (Symbol(id), w.names[id as usize]);
        }
        let canonical: &'static str = Box::leak(name.to_string().into_boxed_str());
        let id = u32::try_from(w.names.len()).expect("symbol table overflow");
        w.names.push(canonical);
        w.shared.push(Arc::from(canonical));
        w.by_name.insert(canonical, id);
        (Symbol(id), canonical)
    }

    /// The dense index, for direct-indexed dispatch tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The canonical name.
    pub fn name(self) -> &'static str {
        table().read().expect("symbol table").names[self.0 as usize]
    }

    /// The canonical name as a shared `Arc<str>`: cloning is a refcount
    /// bump, so embedding a header name in a `Value` allocates nothing.
    pub fn name_shared(self) -> Arc<str> {
        table().read().expect("symbol table").shared[self.0 as usize].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let (a, sa) = Symbol::intern("sym/test/alpha");
        let (b, sb) = Symbol::intern("sym/test/alpha");
        assert_eq!(a, b);
        // Canonical strings are the same leaked allocation.
        assert!(std::ptr::eq(sa, sb));
        assert_eq!(a.name(), "sym/test/alpha");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        let (a, _) = Symbol::intern("sym/test/one");
        let (b, _) = Symbol::intern("sym/test/two");
        assert_ne!(a, b);
        assert_ne!(a.index(), b.index());
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::intern("sym/test/racy").0))
            .collect();
        let syms: Vec<Symbol> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
    }
}
