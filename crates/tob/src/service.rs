//! The broadcast-service specification.
//!
//! One TOB server runs at each service machine. The server deduplicates
//! client submissions (per-client message ids, the paper's "sequence number
//! of the last transaction submitted by each client"), bundles pending
//! messages into a **batch**, and hands the batch to its consensus backend:
//!
//! * **TwoThird** — the server picks the lowest undecided instance and
//!   proposes there; losing a slot race re-queues the batch;
//! * **Paxos** — the server submits the batch as a command to its
//!   co-located Synod replica, which owns slot assignment and re-proposal.
//!
//! The server keeps up to [`TobConfig::window`] proposals in flight at
//! once (the paper's Paxos decides many slots concurrently, à la *Paxos
//! Made Moderately Complex*): while one batch is waiting on its consensus
//! round, the next batches are already proposed at later slots, so
//! end-to-end throughput is no longer capped at
//! `batch_size / round_latency`. Window 1 reproduces the original
//! stop-and-wait behaviour exactly.
//!
//! Decisions arrive as `cs/decide <slot, batch>` notifications; the server
//! delivers batches in slot order, expanding them into per-message
//! [`DELIVER_HEADER`] notifications with a gapless
//! global sequence number — identical at every subscriber, which is the
//! total-order property checked in `tests/total_order.rs`. Delivered slots
//! are garbage-collected from the decided map; late duplicate decisions
//! for them are dropped by a frontier check.
//!
//! [`DELIVER_HEADER`]: crate::DELIVER_HEADER

use crate::{BROADCAST_HEADER, DELIVER_HEADER, SUBOK_HEADER, SUBSCRIBE_HEADER, UNSUBSCRIBE_HEADER};
use shadowdb_consensus::{synod, twothird, vmap, DECIDE_HEADER};
use shadowdb_eventml::patterns::{mealy, tagged_union};
use shadowdb_eventml::{cached_header, ClassExpr, Msg, SendInstr, Spec, Value};
use shadowdb_loe::Loc;
use std::sync::Arc;

/// Which consensus module a TOB server submits its batches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Propose through a co-located TwoThird member at this location.
    TwoThird {
        /// The member process that receives `tt/propose`.
        member: Loc,
    },
    /// Submit commands to a co-located Synod replica at this location.
    Paxos {
        /// The replica process that receives `px/request`.
        replica: Loc,
    },
}

/// Configuration of one TOB server.
#[derive(Clone, Debug)]
pub struct TobConfig {
    /// The consensus backend this server proposes through.
    pub backend: Backend,
    /// Every location that receives delivery notifications (database
    /// replicas, measurement clients, …).
    pub subscribers: Vec<Loc>,
    /// Maximum number of messages bundled into one proposal.
    pub max_batch: usize,
    /// Maximum number of proposals concurrently in flight (1 = the
    /// original stop-and-wait pipeline).
    pub window: usize,
}

impl TobConfig {
    /// Creates a configuration with the paper's batching enabled
    /// (`max_batch` = 64) and no pipelining (`window` = 1).
    pub fn new(backend: Backend, subscribers: Vec<Loc>) -> TobConfig {
        TobConfig {
            backend,
            subscribers,
            max_batch: 64,
            window: 1,
        }
    }

    /// Overrides the batch bound (1 disables batching — the ablation case).
    pub fn with_max_batch(mut self, max_batch: usize) -> TobConfig {
        assert!(max_batch >= 1, "a batch holds at least one message");
        self.max_batch = max_batch;
        self
    }

    /// Overrides the pipelining window (1 disables pipelining).
    pub fn with_window(mut self, window: usize) -> TobConfig {
        assert!(window >= 1, "the window holds at least one proposal");
        self.window = window;
        self
    }
}

/// Decoded server state.
#[derive(Clone, Debug)]
struct ServerState {
    /// Next slot to deliver.
    deliver_next: i64,
    /// Gapless global delivery sequence number.
    seq: i64,
    /// Monotone batch id (unique per server).
    batch_ctr: i64,
    /// slot -> batch (decided, garbage-collected once delivered).
    decided: Value,
    /// FIFO of pending entries `<client, <msgid, payload>>`.
    pending: Value,
    /// The proposals in flight, oldest first, as `(slot, batch)` pairs.
    /// TwoThird entries carry the slot the server claimed; Paxos entries
    /// carry `None` (the Synod replica owns slot assignment).
    in_flight: Vec<(Option<i64>, Value)>,
    /// client -> enqueue duplicate-detector state (see [`note_msgid`]).
    last_enq: Value,
    /// client -> delivery duplicate-detector state (see [`note_msgid`]).
    last_del: Value,
    /// Dynamic subscribers (joining replicas), added at runtime through
    /// [`SUBSCRIBE_HEADER`]; they receive every delivery alongside the
    /// deploy-time `config.subscribers`.
    subs: Vec<Loc>,
}

impl ServerState {
    fn init() -> ServerState {
        ServerState {
            deliver_next: 0,
            seq: 0,
            batch_ctr: 0,
            decided: vmap::empty(),
            pending: Value::list(std::iter::empty()),
            in_flight: Vec::new(),
            last_enq: vmap::empty(),
            last_del: vmap::empty(),
            subs: Vec::new(),
        }
    }

    fn to_value(&self) -> Value {
        let in_flight = Value::list(self.in_flight.iter().map(|(slot, batch)| {
            Value::pair(
                match slot {
                    Some(s) => Value::Int(*s),
                    None => Value::Unit,
                },
                batch.clone(),
            )
        }));
        Value::pair(
            Value::pair(Value::Int(self.deliver_next), Value::Int(self.seq)),
            Value::pair(
                Value::pair(Value::Int(self.batch_ctr), self.decided.clone()),
                Value::pair(
                    Value::pair(self.pending.clone(), in_flight),
                    Value::pair(
                        self.last_enq.clone(),
                        Value::pair(
                            self.last_del.clone(),
                            Value::list(self.subs.iter().map(|l| Value::Loc(*l))),
                        ),
                    ),
                ),
            ),
        )
    }

    fn from_value(v: &Value) -> ServerState {
        let (a, rest) = v.unpair();
        let (deliver_next, seq) = a.unpair();
        let (b, rest) = rest.unpair();
        let (batch_ctr, decided) = b.unpair();
        let (c, d) = rest.unpair();
        let (pending, in_flight) = c.unpair();
        let (last_enq, rest) = d.unpair();
        let (last_del, subs) = rest.unpair();
        let subs = subs
            .as_list()
            .expect("subscriber list")
            .iter()
            .map(|l| l.loc())
            .collect();
        let in_flight = in_flight
            .as_list()
            .expect("in-flight list")
            .iter()
            .map(|e| {
                let (slot, batch) = e.unpair();
                (slot.as_int(), batch.clone())
            })
            .collect();
        ServerState {
            deliver_next: deliver_next.int(),
            seq: seq.int(),
            batch_ctr: batch_ctr.int(),
            decided: decided.clone(),
            pending: pending.clone(),
            in_flight,
            last_enq: last_enq.clone(),
            last_del: last_del.clone(),
            subs,
        }
    }
}

/// Msgids further than this behind a source's newest are assumed seen.
/// A stop-and-wait client never has two msgids in flight, and a replica
/// pipelining lease forwards reorders only within the network's jitter —
/// a handful of messages — so 64 is far beyond any real reorder depth.
const DEDUP_WINDOW: usize = 64;

/// Sliding-window duplicate detection for one source.
///
/// The per-source entry is `<floor, sorted msgids above floor>`: every
/// msgid `<= floor` has been seen, plus the listed ones above it. For a
/// stop-and-wait source whose msgids arrive in order the list stays
/// empty and this degenerates to the classic last-msgid high-water mark
/// (the paper's "sequence number of the last transaction submitted by
/// each client"). A plain high-water mark is *wrong* for a source with
/// several msgids in flight at once — the lease-holder replica funnels
/// every forwarded read through one counter — because jittered links
/// can reorder the arrivals, and the mark would then swallow the
/// stragglers as stale with nothing on that path to retransmit them.
///
/// Returns the updated entry, or `None` when `msgid` is a duplicate.
fn note_msgid(entry: Option<&Value>, msgid: i64) -> Option<Value> {
    let (mut floor, mut above) = match entry {
        Some(v) => {
            let (f, l) = v.unpair();
            (
                f.int(),
                l.as_list()
                    .expect("msgid list")
                    .iter()
                    .map(|m| m.int())
                    .collect::<Vec<i64>>(),
            )
        }
        None => (-1, Vec::new()),
    };
    if msgid <= floor {
        return None;
    }
    let Err(i) = above.binary_search(&msgid) else {
        return None;
    };
    above.insert(i, msgid);
    while above.first() == Some(&(floor + 1)) {
        floor += 1;
        above.remove(0);
    }
    // Bound the gap set: sources that jump their counter (a recovered
    // replica restarts far past its pre-crash msgids) must not pin an
    // unclosable gap forever. Sliding the floor up writes off msgids
    // more than a window behind the newest — by then they are either
    // lost or stale duplicates from a dead incarnation.
    while above.len() > DEDUP_WINDOW {
        floor = above.remove(0);
    }
    Some(Value::pair(
        Value::Int(floor),
        Value::list(above.into_iter().map(Value::Int)),
    ))
}

/// Builds a batch value `<proposer, <batchid, entries>>`.
fn batch_value(proposer: Loc, batchid: i64, entries: &[Value]) -> Value {
    Value::pair(
        Value::Loc(proposer),
        Value::pair(Value::Int(batchid), Value::list(entries.to_vec())),
    )
}

fn batch_entries(batch: &Value) -> &[Value] {
    batch
        .snd()
        .and_then(Value::snd)
        .and_then(Value::as_list)
        .unwrap_or(&[])
}

/// The broadcast-service specification for one server.
pub fn service_spec(config: &TobConfig) -> Spec {
    Spec::new("BroadcastService", service_class(config))
}

/// The main class of the broadcast service.
pub fn service_class(config: &TobConfig) -> ClassExpr {
    let config = config.clone();
    mealy(
        "tob_transition",
        // Declared weight approximating the transition's AST size (the
        // EventML broadcast service in the paper is 820 nodes).
        700,
        ServerState::init().to_value(),
        tagged_union(&[
            BROADCAST_HEADER,
            DECIDE_HEADER,
            SUBSCRIBE_HEADER,
            UNSUBSCRIBE_HEADER,
        ]),
        Arc::new(move |slf, input, state| transition(&config, slf, input, state)),
    )
}

fn transition(
    config: &TobConfig,
    slf: Loc,
    input: &Value,
    state: &Value,
) -> (Value, Vec<SendInstr>) {
    let (tag, body) = input.unpair();
    let mut st = ServerState::from_value(state);
    let mut outs = Vec::new();
    match tag.as_str().expect("tag") {
        BROADCAST_HEADER => {
            let (client, rest) = body.unpair();
            let (msgid, _payload) = rest.unpair();
            if let Some(seen) = note_msgid(vmap::get(&st.last_enq, client), msgid.int()) {
                st.last_enq = vmap::set(&st.last_enq, client.clone(), seen);
                let mut pending: Vec<Value> = st.pending.elems().to_vec();
                pending.push(body.clone());
                st.pending = Value::list(pending);
            }
        }
        DECIDE_HEADER => {
            let (slot, batch) = body.unpair();
            // Slots below the delivery frontier have been delivered and
            // garbage-collected; a late duplicate decision for one is a
            // no-op.
            if slot.int() >= st.deliver_next && !vmap::contains(&st.decided, slot) {
                st.decided = vmap::set(&st.decided, slot.clone(), batch.clone());
                // Resolve whichever in-flight proposal this decision
                // settles: our batch winning (at any slot) retires its
                // entry; a TwoThird slot race lost to a foreign batch
                // re-queues ours at the head of the pending queue, to be
                // re-proposed at the next free slot.
                if let Some(i) = st.in_flight.iter().position(|(_, b)| b == batch) {
                    st.in_flight.remove(i);
                } else if let Some(i) = st
                    .in_flight
                    .iter()
                    .position(|(s, _)| s.is_some() && *s == slot.as_int())
                {
                    let (_, our_batch) = st.in_flight.remove(i);
                    let mut pending: Vec<Value> = batch_entries(&our_batch).to_vec();
                    pending.extend(st.pending.elems().iter().cloned());
                    st.pending = Value::list(pending);
                }
                deliver_ready(config, &mut st, &mut outs);
            }
        }
        SUBSCRIBE_HEADER => {
            // A joining replica wires itself into this server's delivery
            // fan-out. The acknowledgement carries the seq of the first
            // delivery it will see, so the joiner knows exactly which
            // prefix its snapshot must cover. Idempotent: re-subscribing
            // re-acks with the current frontier.
            let sub = body.loc();
            if !st.subs.contains(&sub) && !config.subscribers.contains(&sub) {
                st.subs.push(sub);
            }
            outs.push(SendInstr::now(
                sub,
                Msg::new(cached_header!(SUBOK_HEADER), Value::Int(st.seq)),
            ));
        }
        UNSUBSCRIBE_HEADER => {
            let sub = body.loc();
            st.subs.retain(|l| *l != sub);
        }
        other => panic!("unexpected tag {other}"),
    }
    try_propose(config, slf, &mut st, &mut outs);
    (st.to_value(), outs)
}

/// Delivers decided batches in slot order, garbage-collecting each slot
/// as it is delivered (the frontier check in the DECIDE arm keeps late
/// duplicates from resurrecting a collected slot).
fn deliver_ready(config: &TobConfig, st: &mut ServerState, outs: &mut Vec<SendInstr>) {
    let dynamic = st.subs.clone();
    while let Some(batch) = vmap::get(&st.decided, &Value::Int(st.deliver_next)).cloned() {
        for entry in batch_entries(&batch) {
            let (client, rest) = entry.unpair();
            let (msgid, _payload) = rest.unpair();
            let Some(seen) = note_msgid(vmap::get(&st.last_del, client), msgid.int()) else {
                continue; // duplicate of an already-delivered message
            };
            st.last_del = vmap::set(&st.last_del, client.clone(), seen);
            for sub in config.subscribers.iter().chain(dynamic.iter()) {
                outs.push(SendInstr::now(
                    *sub,
                    Msg::new(
                        cached_header!(DELIVER_HEADER),
                        Value::pair(Value::Int(st.seq), entry.clone()),
                    ),
                ));
            }
            st.seq += 1;
        }
        st.decided = vmap::remove(&st.decided, &Value::Int(st.deliver_next));
        st.deliver_next += 1;
    }
}

/// Proposes pending batches until the pipelining window is full or the
/// pending queue is drained.
fn try_propose(config: &TobConfig, slf: Loc, st: &mut ServerState, outs: &mut Vec<SendInstr>) {
    while st.in_flight.len() < config.window && !st.pending.elems().is_empty() {
        let take = st.pending.elems().len().min(config.max_batch);
        let (batch, rest) = {
            let pending = st.pending.elems();
            let (now, later) = pending.split_at(take);
            (
                batch_value(slf, st.batch_ctr, now),
                Value::list(later.to_vec()),
            )
        };
        st.batch_ctr += 1;
        st.pending = rest;
        match config.backend {
            Backend::TwoThird { member } => {
                // Choose the lowest slot at or after the delivery frontier
                // that is neither decided nor claimed by an earlier
                // in-flight proposal of ours; collisions with other servers
                // are resolved by consensus and re-queuing.
                let mut slot = st.deliver_next;
                while vmap::contains(&st.decided, &Value::Int(slot))
                    || st.in_flight.iter().any(|(s, _)| *s == Some(slot))
                {
                    slot += 1;
                }
                st.in_flight.push((Some(slot), batch.clone()));
                outs.push(SendInstr::now(member, twothird::propose_msg(slot, batch)));
            }
            Backend::Paxos { replica } => {
                st.in_flight.push((None, batch.clone()));
                outs.push(SendInstr::now(replica, synod::request_msg(batch)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{broadcast_msg, parse_deliver};
    use shadowdb_consensus::decide_body;
    use shadowdb_eventml::{Ctx, InterpretedProcess, Process};

    fn server(max_batch: usize) -> (InterpretedProcess, TobConfig) {
        server_windowed(max_batch, 1)
    }

    fn server_windowed(max_batch: usize, window: usize) -> (InterpretedProcess, TobConfig) {
        let config = TobConfig::new(
            Backend::TwoThird {
                member: Loc::new(50),
            },
            vec![Loc::new(60), Loc::new(61)],
        )
        .with_max_batch(max_batch)
        .with_window(window);
        (InterpretedProcess::compile(&service_class(&config)), config)
    }

    #[test]
    fn broadcast_triggers_batched_proposal() {
        let (mut p, _) = server(64);
        let slf = Loc::new(0);
        let outs = p.step(
            &Ctx::at(slf),
            &broadcast_msg(Loc::new(9), 0, Value::str("a")),
        );
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].dest, Loc::new(50));
        assert_eq!(outs[0].msg.header.name(), twothird::PROPOSE_HEADER);
        // A second broadcast while the first is outstanding: queued, no
        // second proposal.
        let outs = p.step(
            &Ctx::at(slf),
            &broadcast_msg(Loc::new(9), 1, Value::str("b")),
        );
        assert!(outs.is_empty());
    }

    #[test]
    fn decision_delivers_in_order_with_gapless_seq() {
        let (mut p, _) = server(64);
        let slf = Loc::new(0);
        let entry = |c: u32, id: i64| {
            Value::pair(
                Value::Loc(Loc::new(c)),
                Value::pair(Value::Int(id), Value::Unit),
            )
        };
        // Decide slot 1 first: nothing delivered yet.
        let b1 = batch_value(Loc::new(1), 0, &[entry(8, 0)]);
        let outs = p.step(
            &Ctx::at(slf),
            &Msg::new(cached_header!(DECIDE_HEADER), decide_body(1, &b1)),
        );
        assert!(outs.is_empty());
        // Decide slot 0: both batches flush, in slot order, seq 0..=1 at
        // each subscriber.
        let b0 = batch_value(Loc::new(2), 0, &[entry(9, 0)]);
        let outs = p.step(
            &Ctx::at(slf),
            &Msg::new(cached_header!(DECIDE_HEADER), decide_body(0, &b0)),
        );
        let deliveries: Vec<_> = outs
            .iter()
            .filter_map(|o| parse_deliver(&o.msg).map(|d| (o.dest, d)))
            .collect();
        assert_eq!(deliveries.len(), 4); // 2 messages × 2 subscribers
        assert_eq!(deliveries[0].1.client, Loc::new(9));
        assert_eq!(deliveries[0].1.seq, 0);
        assert_eq!(deliveries[2].1.client, Loc::new(8));
        assert_eq!(deliveries[2].1.seq, 1);
    }

    #[test]
    fn duplicate_submission_ignored() {
        let (mut p, _) = server(1);
        let slf = Loc::new(0);
        let m = broadcast_msg(Loc::new(9), 0, Value::str("a"));
        let first = p.step(&Ctx::at(slf), &m);
        assert_eq!(first.len(), 1);
        let again = p.step(&Ctx::at(slf), &m);
        assert!(again.is_empty(), "resend of an enqueued message is a no-op");
    }

    #[test]
    fn reordered_pipelined_submissions_all_enqueued() {
        // A lease-holder replica pipelines forwards through one msgid
        // counter; jittered links can deliver them out of order. Every
        // distinct msgid must still be enqueued exactly once — a plain
        // last-msgid high-water mark would swallow 1 and 2 here.
        let (mut p, _) = server_windowed(1, 8);
        let slf = Loc::new(0);
        let src = Loc::new(9);
        let mut proposals = 0;
        for id in [0i64, 3, 1, 2, 3, 1] {
            let outs = p.step(&Ctx::at(slf), &broadcast_msg(src, id, Value::str("x")));
            proposals += outs.len();
        }
        // Four distinct msgids → four single-entry batches proposed; the
        // two repeats are dropped as duplicates.
        assert_eq!(proposals, 4, "each distinct msgid proposed exactly once");
    }

    #[test]
    fn dedup_floor_slides_past_counter_jumps() {
        // A source that restarts its counter far ahead (a recovered
        // replica) must not pin an unclosable gap: the window caps the
        // tracked set, and msgids at or below the slid floor stay
        // recognised as stale.
        let mut entry = None;
        for id in 0..3i64 {
            entry = Some(note_msgid(entry.as_ref(), id).expect("fresh"));
        }
        for id in 1_000_000..(1_000_000 + DEDUP_WINDOW as i64 + 8) {
            entry = Some(note_msgid(entry.as_ref(), id).expect("fresh past the jump"));
        }
        let v = entry.as_ref().expect("entry");
        let (floor, above) = v.unpair();
        assert!(floor.int() >= 1_000_000, "floor slid into the new range");
        assert!(
            above.as_list().expect("list").len() <= DEDUP_WINDOW,
            "gap set stays bounded"
        );
        assert!(
            note_msgid(entry.as_ref(), 2).is_none(),
            "pre-jump stragglers written off as stale"
        );
    }

    #[test]
    fn lost_slot_race_requeues_batch() {
        let (mut p, _) = server(64);
        let slf = Loc::new(0);
        // Our batch goes out for slot 0.
        p.step(
            &Ctx::at(slf),
            &broadcast_msg(Loc::new(9), 0, Value::str("mine")),
        );
        // Slot 0 decides with someone else's batch.
        let other = batch_value(
            Loc::new(1),
            7,
            &[Value::pair(
                Value::Loc(Loc::new(8)),
                Value::pair(Value::Int(0), Value::Unit),
            )],
        );
        let outs = p.step(
            &Ctx::at(slf),
            &Msg::new(cached_header!(DECIDE_HEADER), decide_body(0, &other)),
        );
        // The other batch is delivered AND our batch is re-proposed (slot 1).
        let proposals: Vec<_> = outs
            .iter()
            .filter(|o| o.msg.header == cached_header!(twothird::PROPOSE_HEADER))
            .collect();
        assert_eq!(proposals.len(), 1);
        let (slot, batch) = proposals[0].msg.body.unpair();
        assert_eq!(slot.int(), 1);
        let payloads: Vec<_> = batch_entries(batch).to_vec();
        assert_eq!(payloads.len(), 1);
        assert_eq!(payloads[0].fst().unwrap().loc(), Loc::new(9));
    }

    #[test]
    fn window_keeps_multiple_proposals_in_flight() {
        let (mut p, _) = server_windowed(1, 3);
        let slf = Loc::new(0);
        // Three broadcasts from distinct clients, batch bound 1: each goes
        // out immediately at its own slot.
        let mut slots = Vec::new();
        for c in 0..3u32 {
            let outs = p.step(
                &Ctx::at(slf),
                &broadcast_msg(Loc::new(9 + c), 0, Value::str("m")),
            );
            assert_eq!(outs.len(), 1, "broadcast {c} proposes immediately");
            assert_eq!(outs[0].msg.header.name(), twothird::PROPOSE_HEADER);
            slots.push(outs[0].msg.body.fst().unwrap().int());
        }
        assert_eq!(
            slots,
            vec![0, 1, 2],
            "concurrent proposals claim distinct slots"
        );
        // A fourth broadcast: the window is full, so it queues.
        let outs = p.step(
            &Ctx::at(slf),
            &broadcast_msg(Loc::new(20), 0, Value::str("m")),
        );
        assert!(outs.is_empty(), "window full: no fourth proposal");
        // Deciding slot 0 with our batch frees a window seat: the queued
        // message is proposed at slot 3 (1 and 2 are still claimed).
        let won = batch_value(
            slf,
            0,
            &[Value::pair(
                Value::Loc(Loc::new(9)),
                Value::pair(Value::Int(0), Value::str("m")),
            )],
        );
        let outs = p.step(
            &Ctx::at(slf),
            &Msg::new(cached_header!(DECIDE_HEADER), decide_body(0, &won)),
        );
        let proposals: Vec<_> = outs
            .iter()
            .filter(|o| o.msg.header == cached_header!(twothird::PROPOSE_HEADER))
            .collect();
        assert_eq!(proposals.len(), 1);
        assert_eq!(proposals[0].msg.body.fst().unwrap().int(), 3);
    }

    #[test]
    fn lost_race_under_window_requeues_past_claimed_slots() {
        let (mut p, _) = server_windowed(1, 2);
        let slf = Loc::new(0);
        // Two proposals in flight at slots 0 and 1.
        p.step(
            &Ctx::at(slf),
            &broadcast_msg(Loc::new(9), 0, Value::str("a")),
        );
        p.step(
            &Ctx::at(slf),
            &broadcast_msg(Loc::new(10), 0, Value::str("b")),
        );
        // Slot 0 decides with a foreign batch: our slot-0 batch re-queues
        // and re-proposes at slot 2, skipping slot 1 (still ours).
        let other = batch_value(
            Loc::new(1),
            7,
            &[Value::pair(
                Value::Loc(Loc::new(8)),
                Value::pair(Value::Int(0), Value::Unit),
            )],
        );
        let outs = p.step(
            &Ctx::at(slf),
            &Msg::new(cached_header!(DECIDE_HEADER), decide_body(0, &other)),
        );
        let proposals: Vec<_> = outs
            .iter()
            .filter(|o| o.msg.header == cached_header!(twothird::PROPOSE_HEADER))
            .collect();
        assert_eq!(proposals.len(), 1);
        let (slot, batch) = proposals[0].msg.body.unpair();
        assert_eq!(slot.int(), 2, "re-proposal skips our own claimed slot 1");
        assert_eq!(batch_entries(batch)[0].fst().unwrap().loc(), Loc::new(9));
    }

    #[test]
    fn late_duplicate_decide_for_collected_slot_is_ignored() {
        let (mut p, _) = server(64);
        let slf = Loc::new(0);
        let entry = Value::pair(
            Value::Loc(Loc::new(9)),
            Value::pair(Value::Int(0), Value::Unit),
        );
        let b0 = batch_value(Loc::new(2), 0, std::slice::from_ref(&entry));
        let outs = p.step(
            &Ctx::at(slf),
            &Msg::new(cached_header!(DECIDE_HEADER), decide_body(0, &b0)),
        );
        assert_eq!(outs.len(), 2, "delivered to both subscribers");
        // Slot 0 has been delivered and garbage-collected; a duplicate
        // decision for it — even with a different batch — must not deliver
        // anything or disturb the frontier.
        let forged = batch_value(
            Loc::new(3),
            9,
            &[Value::pair(
                Value::Loc(Loc::new(11)),
                Value::pair(Value::Int(0), Value::Unit),
            )],
        );
        let outs = p.step(
            &Ctx::at(slf),
            &Msg::new(cached_header!(DECIDE_HEADER), decide_body(0, &forged)),
        );
        assert!(outs.is_empty(), "late duplicate decide is a no-op");
        // The frontier advanced: slot 1 delivers next with seq 1.
        let b1 = batch_value(
            Loc::new(2),
            1,
            &[Value::pair(
                Value::Loc(Loc::new(9)),
                Value::pair(Value::Int(1), Value::Unit),
            )],
        );
        let outs = p.step(
            &Ctx::at(slf),
            &Msg::new(cached_header!(DECIDE_HEADER), decide_body(1, &b1)),
        );
        let d = parse_deliver(&outs[0].msg).expect("delivery");
        assert_eq!(d.seq, 1);
    }

    #[test]
    fn dynamic_subscriber_joins_the_fanout_at_the_acked_seq() {
        let (mut p, _) = server(64);
        let slf = Loc::new(0);
        let entry = |c: u32, id: i64| {
            Value::pair(
                Value::Loc(Loc::new(c)),
                Value::pair(Value::Int(id), Value::Unit),
            )
        };
        // Slot 0 delivers before the joiner subscribes: 2 static subscribers.
        let b0 = batch_value(Loc::new(2), 0, &[entry(9, 0)]);
        let outs = p.step(
            &Ctx::at(slf),
            &Msg::new(cached_header!(DECIDE_HEADER), decide_body(0, &b0)),
        );
        assert_eq!(outs.len(), 2);
        // Subscribe loc 70: the ack carries next seq = 1.
        let joiner = Loc::new(70);
        let outs = p.step(&Ctx::at(slf), &crate::subscribe_msg(joiner));
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].dest, joiner);
        assert_eq!(crate::parse_subok(&outs[0].msg), Some(1));
        // Re-subscribing is idempotent: same ack, no duplicate fan-out later.
        let outs = p.step(&Ctx::at(slf), &crate::subscribe_msg(joiner));
        assert_eq!(crate::parse_subok(&outs[0].msg), Some(1));
        // Slot 1 delivers to the 2 static subscribers AND the joiner.
        let b1 = batch_value(Loc::new(2), 1, &[entry(9, 1)]);
        let outs = p.step(
            &Ctx::at(slf),
            &Msg::new(cached_header!(DECIDE_HEADER), decide_body(1, &b1)),
        );
        assert_eq!(outs.len(), 3);
        let to_joiner: Vec<_> = outs.iter().filter(|o| o.dest == joiner).collect();
        assert_eq!(to_joiner.len(), 1);
        assert_eq!(parse_deliver(&to_joiner[0].msg).expect("delivery").seq, 1);
        // Unsubscribe: slot 2 goes to the static subscribers only.
        let outs = p.step(&Ctx::at(slf), &crate::unsubscribe_msg(joiner));
        assert!(outs.is_empty());
        let b2 = batch_value(Loc::new(2), 2, &[entry(9, 2)]);
        let outs = p.step(
            &Ctx::at(slf),
            &Msg::new(cached_header!(DECIDE_HEADER), decide_body(2, &b2)),
        );
        assert_eq!(outs.len(), 2);
    }

    #[test]
    fn max_batch_splits_pending() {
        let (mut p, _) = server(2);
        let slf = Loc::new(0);
        for i in 0..5 {
            p.step(&Ctx::at(slf), &broadcast_msg(Loc::new(9), i, Value::Unit));
        }
        // First proposal (1 message went out immediately; the rest queued).
        // Decide it; the next proposal must carry exactly max_batch = 2.
        let st = |p: &mut InterpretedProcess, slot: i64, b: &Value| {
            p.step(
                &Ctx::at(slf),
                &Msg::new(cached_header!(DECIDE_HEADER), decide_body(slot, b)),
            )
        };
        // Reconstruct the outstanding batch: proposer slf, batchid 0, first msg.
        let b0 = batch_value(
            slf,
            0,
            &[Value::pair(
                Value::Loc(Loc::new(9)),
                Value::pair(Value::Int(0), Value::Unit),
            )],
        );
        let outs = st(&mut p, 0, &b0);
        let proposal = outs
            .iter()
            .find(|o| o.msg.header == cached_header!(twothird::PROPOSE_HEADER))
            .expect("next batch proposed");
        let (_, batch) = proposal.msg.body.unpair();
        assert_eq!(batch_entries(batch).len(), 2);
    }
}

#[cfg(test)]
mod size_tests {
    use super::*;

    /// Regression guard for the Table I reproduction: the broadcast
    /// service's specification size stays in the intended neighbourhood of
    /// the paper's 820-node EventML source.
    #[test]
    fn spec_size_reported_for_table1() {
        let spec = service_spec(&TobConfig::new(
            Backend::Paxos {
                replica: Loc::new(1),
            },
            vec![Loc::new(100)],
        ));
        let nodes = spec.ast_nodes();
        assert!((600..900).contains(&nodes), "nodes = {nodes}");
    }
}
