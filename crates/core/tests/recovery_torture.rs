//! Recovery torture: crash patterns against ShadowDB-PBR.
//!
//! The paper's recovery procedure must keep durability and exactly-once
//! answers through any single-failure pattern (and restart cleanly when
//! "failures occur during recovery"). Each scenario runs a bank workload,
//! injects its crash schedule, and requires: every transaction answered,
//! answered-before-crash deposits present in the survivors' state, and
//! surviving replicas in agreement.

use parking_lot::Mutex;
use shadowdb::deploy::{DeployOptions, PbrDeployment};
use shadowdb::diversity::DiversityPolicy;
use shadowdb::pbr::PbrOptions;
use shadowdb_loe::{Loc, VTime};
use shadowdb_simnet::Simulation;
use shadowdb_sqldb::Database;
use shadowdb_tob::ExecutionMode;
use shadowdb_workloads::bank;
use std::sync::Arc;
use std::time::Duration;

const ACCOUNTS: usize = 800;
const TXNS: usize = 120;
const CLIENTS: usize = 2;

struct Torture {
    sim: Simulation,
    d: PbrDeployment,
    dbs: Arc<Mutex<Vec<Database>>>,
}

fn setup(seed: u64, active_replicas: usize) -> Torture {
    let mut sim = shadowdb_simnet::testing::default_net(seed);
    let dbs: Arc<Mutex<Vec<Database>>> = Arc::new(Mutex::new(Vec::new()));
    let captured = dbs.clone();
    let options = DeployOptions {
        diversity: DiversityPolicy::Trio,
        mode: ExecutionMode::Compiled,
        client_timeout: Duration::from_millis(400),
        active_replicas,
        ..DeployOptions::new(
            CLIENTS,
            |client| {
                let mut g = bank::BankGen::new(70 + client as u64, ACCOUNTS);
                (0..TXNS).map(|_| g.next_txn()).collect()
            },
            move |db| {
                bank::load(db, ACCOUNTS).expect("loads");
                captured.lock().push(db.clone());
            },
        )
    };
    let pbr = PbrOptions {
        heartbeat_every: Duration::from_millis(50),
        detect_after: Duration::from_millis(300),
        ..PbrOptions::default()
    };
    let d = PbrDeployment::build(&mut sim, &options, pbr);
    Torture { sim, d, dbs }
}

fn run_until_some_commits(t: &mut Torture, target: usize) -> VTime {
    let mut ms = 5;
    while t.d.committed() < target {
        t.sim.run_until(VTime::from_millis(ms));
        ms += 5;
        assert!(ms < 120_000, "no progress toward {target} commits");
    }
    t.sim.now()
}

fn finish_and_check(mut t: Torture, crashed: &[usize]) {
    t.sim.run_until_quiescent(VTime::from_secs(1_200));
    assert_eq!(
        t.d.committed(),
        CLIENTS * TXNS,
        "every transaction answered"
    );
    // Surviving replicas agree on the final balance total.
    let dbs = t.dbs.lock();
    let sums: Vec<i64> = dbs
        .iter()
        .enumerate()
        .filter(|(i, _)| !crashed.contains(i))
        .map(|(_, db)| {
            db.execute("SELECT SUM(balance) FROM accounts")
                .expect("sums")
                .rows[0][0]
                .as_int()
                .expect("int")
        })
        .collect();
    assert!(
        sums.windows(2).all(|w| w[0] == w[1]),
        "survivors agree: {sums:?}"
    );
    // And the total is exactly initial money plus all answered deposits.
    let mut expected = (ACCOUNTS as i64) * 1_000;
    for client in 0..CLIENTS as u64 {
        let mut g = bank::BankGen::new(70 + client, ACCOUNTS);
        for _ in 0..TXNS {
            if let shadowdb_workloads::TxnRequest::BankDeposit { amount, .. } = g.next_txn() {
                expected += amount;
            }
        }
    }
    assert_eq!(sums[0], expected, "durability + exactly-once");
}

#[test]
fn primary_crash_early() {
    let mut t = setup(101, 2);
    let now = run_until_some_commits(&mut t, 5);
    t.sim.crash_at(now, t.d.replicas[0]);
    finish_and_check(t, &[0]);
}

#[test]
fn backup_crash_early() {
    let mut t = setup(102, 2);
    let now = run_until_some_commits(&mut t, 5);
    t.sim.crash_at(now, t.d.replicas[1]);
    finish_and_check(t, &[1]);
}

#[test]
fn primary_then_new_primary_crash() {
    // Two sequential failures: the promoted backup also dies; the spare —
    // brought up to date by the first recovery — must carry on alone.
    let mut t = setup(103, 2);
    let now = run_until_some_commits(&mut t, 5);
    t.sim.crash_at(now, t.d.replicas[0]);
    let before = t.d.committed();
    let now = run_until_some_commits(&mut t, before + 30);
    t.sim.crash_at(now, t.d.replicas[1]);
    finish_and_check(t, &[0, 1]);
}

#[test]
fn crash_during_recovery_restarts_procedure() {
    // The backup dies while the *first* recovery (from the primary crash)
    // is still running: "If failures occur during recovery, the procedure
    // is restarted."
    let mut t = setup(104, 3);
    let now = run_until_some_commits(&mut t, 5);
    t.sim.crash_at(now, t.d.replicas[0]);
    // Detection fires at +300 ms; the second crash lands mid-recovery.
    t.sim
        .crash_at(now + Duration::from_millis(350), t.d.replicas[1]);
    finish_and_check(t, &[0, 1]);
}

#[test]
fn three_active_replicas_tolerate_one_crash() {
    let mut t = setup(105, 3);
    let now = run_until_some_commits(&mut t, 10);
    t.sim.crash_at(now, t.d.replicas[1]);
    finish_and_check(t, &[1]);
}

mod election_safety_props {
    //! Property: under an *arbitrary* seeded nemesis schedule, no two PBR
    //! replicas ever execute client transactions as primary of the same
    //! configuration epoch. The [`shadowdb::pbr::PrimaryProbe`] records
    //! `(config seq, replica)` the first time a replica executes as
    //! primary of an epoch; split-brain would surface as one config seq
    //! mapped to two locations.

    use super::{ACCOUNTS, CLIENTS, TXNS};
    use parking_lot::Mutex;
    use proptest::prelude::*;
    use shadowdb::deploy::{DeployOptions, PbrDeployment};
    use shadowdb::pbr::{PbrOptions, PrimaryProbe};
    use shadowdb_loe::{Loc, VTime};
    use shadowdb_runtime::{schedule_node_faults, FaultTopology, Nemesis, NemesisProfile};
    use shadowdb_workloads::bank;
    use std::collections::HashMap;
    use std::sync::Arc;
    use std::time::Duration;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn at_most_one_primary_per_epoch_under_arbitrary_nemesis(
            seed in 0u64..(1u64 << 32),
            profile_idx in 0usize..NemesisProfile::ALL.len(),
            duration_ms in 500u64..3_000,
        ) {
            let profile = NemesisProfile::ALL[profile_idx];
            let duration = Duration::from_millis(duration_ms);
            let probe: PrimaryProbe = Arc::new(Mutex::new(Vec::new()));
            let mut sim = shadowdb_simnet::testing::default_net(seed ^ 0x5eed);
            let options = DeployOptions {
                client_timeout: Duration::from_millis(400),
                ..DeployOptions::new(
                    CLIENTS,
                    |client| {
                        let mut g = bank::BankGen::new(70 + client as u64, ACCOUNTS);
                        (0..TXNS).map(|_| g.next_txn()).collect()
                    },
                    |db| bank::load(db, ACCOUNTS).expect("loads"),
                )
            };
            let pbr = PbrOptions {
                heartbeat_every: Duration::from_millis(50),
                detect_after: Duration::from_millis(300),
                probe: Some(probe.clone()),
                ..PbrOptions::default()
            };
            let d = PbrDeployment::build(&mut sim, &options, pbr);
            let topo = FaultTopology {
                clients: d.clients.clone(),
                core: (CLIENTS as u32..sim.node_count()).map(Loc::new).collect(),
                victim: d.replicas[0],
                groups: Vec::new(),
                joiner: None,
                donor: None,
            };
            let plan = Nemesis::new(seed, profile, duration).plan(&topo);
            schedule_node_faults(&mut sim, &plan, |_, _| None);
            sim.install_fault_plan(plan);
            // Run well past the heal point; the property is about what was
            // *observed*, not convergence (the chaos soaks assert that).
            sim.run_until(VTime::ZERO + duration + Duration::from_secs(20));

            let mut by_epoch: HashMap<i64, Loc> = HashMap::new();
            for (epoch, loc) in probe.lock().iter() {
                if let Some(prev) = by_epoch.insert(*epoch, *loc) {
                    prop_assert!(
                        prev == *loc,
                        "two primaries in epoch {}: {:?} and {:?} (seed {}, {:?}, {} ms)",
                        epoch, prev, loc, seed, profile, duration_ms
                    );
                }
            }
        }
    }
}

#[test]
fn no_crash_no_resends_across_seeds() {
    for seed in [1u64, 2, 3] {
        let mut t = setup(200 + seed, 2);
        t.sim.run_until_quiescent(VTime::from_secs(1_200));
        assert_eq!(t.d.committed(), CLIENTS * TXNS);
        let resends: u64 = t.d.stats.iter().map(|s| s.lock().resends).sum();
        assert_eq!(resends, 0, "failure-free runs never retry (seed {seed})");
        let loc: Vec<Loc> = t.d.replicas.clone();
        let _ = loc;
    }
}
