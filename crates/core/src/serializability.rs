//! A strict-serializability checker for client-observed histories.
//!
//! ShadowDB promises that "to clients it appears as if transactions were
//! executed sequentially, each at some point between the time that a
//! client submitted the transaction and the client received the result"
//! (Sec. III). For the bank workload this is checkable: given every
//! client's observed `(submit, answer, transaction, result)` records, the
//! checker searches for a single sequential order of all committed
//! transactions that (a) respects real-time precedence — if transaction A
//! was answered before B was submitted, A must come first — and
//! (b) reproduces every observed read result when replayed against the
//! bank semantics.
//!
//! Deposits commute on distinct accounts and their results carry no state,
//! so the hard constraints come from `BankRead` results; the checker
//! greedily schedules by answer time and then verifies reads by replay,
//! which is sound and complete for histories whose reads pin the order (a
//! read that could be explained by several interleavings accepts any of
//! them).

use shadowdb_loe::VTime;
use shadowdb_sqldb::SqlValue;
use shadowdb_workloads::TxnRequest;
use std::collections::HashMap;

/// One client-observed operation.
#[derive(Clone, Debug)]
pub struct Observation {
    /// When the client submitted the transaction.
    pub submitted: VTime,
    /// When the client received the answer.
    pub answered: VTime,
    /// The transaction.
    pub txn: TxnRequest,
    /// The answer's result values.
    pub result: Vec<SqlValue>,
}

/// A strict-serializability violation.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// A read returned a balance no real-time-respecting order explains.
    UnexplainedRead {
        /// Index of the offending observation (in answer order).
        index: usize,
        /// The balance the replay predicts.
        expected: i64,
        /// The balance the client observed.
        observed: i64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::UnexplainedRead {
                index,
                expected,
                observed,
            } => write!(
                f,
                "read #{index}: observed balance {observed} but the serial order implies {expected}"
            ),
        }
    }
}

/// Checks a set of committed bank observations for strict serializability
/// against initial per-account balances of `initial_balance`.
///
/// Returns `Ok(())` with the witnessing serial order implicitly being
/// answer-time order, or the first violation found.
pub fn check_bank_history(
    observations: &[Observation],
    initial_balance: i64,
) -> Result<(), Violation> {
    // Strictly serializable bank histories are witnessed by answer-time
    // order: every transaction takes effect at some point inside its
    // [submitted, answered] window, and for single-row deposits/reads the
    // answer instant is such a point (the replica executed it before
    // answering; anything answered earlier was executed earlier on the
    // same sequential replica).
    let mut ordered: Vec<&Observation> = observations.iter().collect();
    ordered.sort_by_key(|o| o.answered);
    let mut balances: HashMap<i64, i64> = HashMap::new();
    for (index, o) in ordered.iter().enumerate() {
        match &o.txn {
            TxnRequest::BankDeposit { account, amount } => {
                *balances.entry(*account).or_insert(initial_balance) += amount;
            }
            TxnRequest::BankRead { account } => {
                let expected = *balances.entry(*account).or_insert(initial_balance);
                let observed = o
                    .result
                    .first()
                    .and_then(SqlValue::as_int)
                    .unwrap_or(i64::MIN);
                if observed != expected {
                    return Err(Violation::UnexplainedRead {
                        index,
                        expected,
                        observed,
                    });
                }
            }
            _ => {} // only bank semantics are modelled
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(sub_ms: u64, ans_ms: u64, txn: TxnRequest, result: Vec<SqlValue>) -> Observation {
        Observation {
            submitted: VTime::from_millis(sub_ms),
            answered: VTime::from_millis(ans_ms),
            txn,
            result,
        }
    }

    #[test]
    fn sequential_history_accepted() {
        let h = vec![
            obs(
                0,
                1,
                TxnRequest::BankDeposit {
                    account: 1,
                    amount: 10,
                },
                vec![],
            ),
            obs(
                2,
                3,
                TxnRequest::BankRead { account: 1 },
                vec![SqlValue::Int(110)],
            ),
            obs(
                4,
                5,
                TxnRequest::BankDeposit {
                    account: 1,
                    amount: 5,
                },
                vec![],
            ),
            obs(
                6,
                7,
                TxnRequest::BankRead { account: 1 },
                vec![SqlValue::Int(115)],
            ),
        ];
        check_bank_history(&h, 100).expect("serializable");
    }

    #[test]
    fn stale_read_rejected() {
        let h = vec![
            obs(
                0,
                1,
                TxnRequest::BankDeposit {
                    account: 1,
                    amount: 10,
                },
                vec![],
            ),
            // Submitted and answered strictly after the deposit's answer,
            // yet reads the old balance: a strict-serializability violation.
            obs(
                2,
                3,
                TxnRequest::BankRead { account: 1 },
                vec![SqlValue::Int(100)],
            ),
        ];
        let v = check_bank_history(&h, 100).expect_err("stale read");
        assert_eq!(
            v,
            Violation::UnexplainedRead {
                index: 1,
                expected: 110,
                observed: 100
            }
        );
    }

    #[test]
    fn concurrent_deposits_commute() {
        // Two overlapping deposits to different accounts; reads after both.
        let h = vec![
            obs(
                0,
                5,
                TxnRequest::BankDeposit {
                    account: 1,
                    amount: 1,
                },
                vec![],
            ),
            obs(
                0,
                4,
                TxnRequest::BankDeposit {
                    account: 2,
                    amount: 2,
                },
                vec![],
            ),
            obs(
                6,
                7,
                TxnRequest::BankRead { account: 1 },
                vec![SqlValue::Int(101)],
            ),
            obs(
                6,
                8,
                TxnRequest::BankRead { account: 2 },
                vec![SqlValue::Int(102)],
            ),
        ];
        check_bank_history(&h, 100).expect("serializable");
    }

    #[test]
    fn lost_update_detected() {
        // Two deposits to the same account, but a later read shows only one
        // of them: the replication lost an update.
        let h = vec![
            obs(
                0,
                1,
                TxnRequest::BankDeposit {
                    account: 3,
                    amount: 10,
                },
                vec![],
            ),
            obs(
                2,
                3,
                TxnRequest::BankDeposit {
                    account: 3,
                    amount: 10,
                },
                vec![],
            ),
            obs(
                4,
                5,
                TxnRequest::BankRead { account: 3 },
                vec![SqlValue::Int(110)],
            ),
        ];
        assert!(check_bank_history(&h, 100).is_err());
    }
}
