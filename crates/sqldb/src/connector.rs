//! URL-based connector: the "plug in any JDBC-enabled database" surface.
//!
//! "Our implementation allows to easily plug in any JDBC-enabled database
//! by specifying the database driver and the connection URL" (Sec. III-C).
//! This module is that seam: a [`Driver`] resolves `shadowdb:<engine>:
//! mem:<name>` URLs to shared database instances, so deployment code names
//! engines by string exactly as ShadowDB's configuration files would.

use crate::engine::Database;
use crate::profile::EngineProfile;
use crate::{Result, SqlError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A parsed connection URL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConnUrl {
    /// Engine name (`h2`, `hsqldb`, `derby`, `mysql-memory`, `mysql-innodb`).
    pub engine: String,
    /// Database name; connections to the same name share state.
    pub name: String,
}

impl ConnUrl {
    /// Parses `shadowdb:<engine>:mem:<name>`.
    ///
    /// # Errors
    ///
    /// Returns [`SqlError::Parse`] on malformed URLs.
    pub fn parse(url: &str) -> Result<ConnUrl> {
        let parts: Vec<&str> = url.split(':').collect();
        match parts.as_slice() {
            ["shadowdb", engine, "mem", name] if !name.is_empty() => Ok(ConnUrl {
                engine: (*engine).to_owned(),
                name: (*name).to_owned(),
            }),
            _ => Err(SqlError::Parse(format!(
                "bad connection url {url:?}; expected shadowdb:<engine>:mem:<name>"
            ))),
        }
    }
}

/// A driver: resolves URLs to (possibly shared) database instances.
#[derive(Clone, Default)]
pub struct Driver {
    registry: Arc<Mutex<HashMap<String, Database>>>,
}

impl std::fmt::Debug for Driver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Driver")
            .field("databases", &self.registry.lock().len())
            .finish()
    }
}

impl Driver {
    /// Creates a driver with an empty registry.
    pub fn new() -> Driver {
        Driver::default()
    }

    /// Connects to the database named by `url`, creating it (with the
    /// engine personality the URL names) on first use.
    ///
    /// # Errors
    ///
    /// Fails on malformed URLs, unknown engines, or when reconnecting to an
    /// existing database under a *different* engine name.
    pub fn connect(&self, url: &str) -> Result<Database> {
        let parsed = ConnUrl::parse(url)?;
        let profile = EngineProfile::by_name(&parsed.engine)
            .ok_or_else(|| SqlError::Unknown(format!("engine {}", parsed.engine)))?;
        let mut registry = self.registry.lock();
        if let Some(existing) = registry.get(&parsed.name) {
            if existing.profile().name != profile.name {
                return Err(SqlError::Constraint(format!(
                    "database {} already open with engine {}",
                    parsed.name,
                    existing.profile().name
                )));
            }
            return Ok(existing.clone());
        }
        let db = Database::new(profile);
        registry.insert(parsed.name, db.clone());
        Ok(db)
    }

    /// Names of the currently open databases.
    pub fn open_databases(&self) -> Vec<String> {
        let mut names: Vec<String> = self.registry.lock().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::SqlValue;

    #[test]
    fn url_parsing() {
        assert_eq!(
            ConnUrl::parse("shadowdb:h2:mem:bank").unwrap(),
            ConnUrl {
                engine: "h2".into(),
                name: "bank".into()
            }
        );
        assert!(ConnUrl::parse("jdbc:h2:mem:bank").is_err());
        assert!(ConnUrl::parse("shadowdb:h2:file:bank").is_err());
        assert!(ConnUrl::parse("shadowdb:h2:mem:").is_err());
    }

    #[test]
    fn connections_to_same_name_share_state() {
        let driver = Driver::new();
        let a = driver.connect("shadowdb:h2:mem:shared").unwrap();
        a.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
        a.execute("INSERT INTO t VALUES (1)").unwrap();
        let b = driver.connect("shadowdb:h2:mem:shared").unwrap();
        let r = b.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0], SqlValue::Int(1));
    }

    #[test]
    fn distinct_names_are_isolated() {
        let driver = Driver::new();
        let a = driver.connect("shadowdb:h2:mem:one").unwrap();
        let b = driver.connect("shadowdb:derby:mem:two").unwrap();
        a.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
        assert!(b.execute("SELECT id FROM t").is_err());
        assert_eq!(
            driver.open_databases(),
            vec!["one".to_owned(), "two".to_owned()]
        );
    }

    #[test]
    fn engine_mismatch_rejected() {
        let driver = Driver::new();
        driver.connect("shadowdb:h2:mem:db").unwrap();
        assert!(matches!(
            driver.connect("shadowdb:derby:mem:db"),
            Err(SqlError::Constraint(_))
        ));
    }

    #[test]
    fn unknown_engine_rejected() {
        let driver = Driver::new();
        assert!(matches!(
            driver.connect("shadowdb:oracle:mem:db"),
            Err(SqlError::Unknown(_))
        ));
    }

    #[test]
    fn diverse_trio_by_url() {
        // The deployment idiom: one URL per replica, three engines.
        let driver = Driver::new();
        for (i, engine) in ["h2", "hsqldb", "derby"].iter().enumerate() {
            let db = driver
                .connect(&format!("shadowdb:{engine}:mem:replica{i}"))
                .unwrap();
            assert_eq!(&db.profile().name, engine);
        }
    }
}
