//! Transaction requests: typed stored procedures with a wire encoding.

use crate::{bank, tpcc};
use shadowdb_eventml::Value;
use shadowdb_sqldb::{Database, SqlError, SqlValue};
use std::time::Duration;

/// A transaction submitted by a client: type plus parameters.
///
/// Execution is deterministic given the parameters and the database state,
/// which is what state-machine replication requires ("we assume that
/// sequential transaction execution is deterministic").
#[derive(Clone, Debug, PartialEq)]
pub enum TxnRequest {
    /// Deposit `amount` into `account` (micro-benchmark update).
    BankDeposit {
        /// Target account id.
        account: i64,
        /// Amount to add.
        amount: i64,
    },
    /// Read an account's balance (micro-benchmark read).
    BankRead {
        /// Target account id.
        account: i64,
    },
    /// One of the five TPC-C transactions.
    Tpcc(tpcc::TpccTxn),
    /// A raw SQL script executed statement by statement (generic client).
    Sql(Vec<String>),
}

/// The outcome of executing a transaction.
#[derive(Clone, Debug, PartialEq)]
pub struct TxnOutcome {
    /// Whether the transaction committed (TPC-C NewOrder aborts ~1% by
    /// spec; aborts are deterministic, so every replica aborts alike).
    pub committed: bool,
    /// The result set summary returned to the client (procedure-specific).
    pub result: Vec<SqlValue>,
    /// Virtual CPU time the execution cost, per the engine profile.
    pub cost: Duration,
}

impl TxnRequest {
    /// Executes this request against `db` in its own transaction.
    ///
    /// # Errors
    ///
    /// Infrastructure errors (unknown tables, lock timeouts) are returned;
    /// *semantic* aborts (e.g. TPC-C's invalid-item rollback) yield
    /// `Ok(TxnOutcome { committed: false, .. })`, since all replicas take
    /// them identically.
    pub fn apply(&self, db: &Database) -> Result<TxnOutcome, SqlError> {
        match self {
            TxnRequest::BankDeposit { account, amount } => bank::deposit(db, *account, *amount),
            TxnRequest::BankRead { account } => bank::read_balance(db, *account),
            TxnRequest::Tpcc(t) => t.apply(db),
            TxnRequest::Sql(stmts) => {
                let mut txn = db.begin()?;
                let mut result = Vec::new();
                for s in stmts {
                    let rs = txn.execute(s)?;
                    result.push(SqlValue::Int(rs.affected as i64));
                    if let Some(first) = rs.rows.first() {
                        result.extend(first.iter().cloned());
                    }
                }
                let cost = txn.virtual_cost();
                txn.commit()?;
                Ok(TxnOutcome {
                    committed: true,
                    result,
                    cost,
                })
            }
        }
    }

    /// Encodes the request for transport.
    pub fn to_value(&self) -> Value {
        match self {
            TxnRequest::BankDeposit { account, amount } => Value::pair(
                Value::str("deposit"),
                Value::pair(Value::Int(*account), Value::Int(*amount)),
            ),
            TxnRequest::BankRead { account } => {
                Value::pair(Value::str("read"), Value::Int(*account))
            }
            TxnRequest::Tpcc(t) => Value::pair(Value::str("tpcc"), t.to_value()),
            TxnRequest::Sql(stmts) => Value::pair(
                Value::str("sql"),
                Value::list(stmts.iter().map(|s| Value::str(s))),
            ),
        }
    }

    /// Decodes a request from transport.
    pub fn from_value(v: &Value) -> Option<TxnRequest> {
        let (tag, body) = v.fst().zip(v.snd())?;
        match tag.as_str()? {
            "deposit" => Some(TxnRequest::BankDeposit {
                account: body.fst()?.as_int()?,
                amount: body.snd()?.as_int()?,
            }),
            "read" => Some(TxnRequest::BankRead {
                account: body.as_int()?,
            }),
            "tpcc" => tpcc::TpccTxn::from_value(body).map(TxnRequest::Tpcc),
            "sql" => {
                let stmts: Option<Vec<String>> = body
                    .as_list()?
                    .iter()
                    .map(|s| s.as_str().map(str::to_owned))
                    .collect();
                Some(TxnRequest::Sql(stmts?))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let reqs = vec![
            TxnRequest::BankDeposit {
                account: 7,
                amount: 100,
            },
            TxnRequest::BankRead { account: 3 },
            TxnRequest::Sql(vec!["SELECT 1 FROM t".into(), "DELETE FROM t".into()]),
        ];
        for r in reqs {
            assert_eq!(TxnRequest::from_value(&r.to_value()), Some(r));
        }
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(TxnRequest::from_value(&Value::Int(3)), None);
        assert_eq!(
            TxnRequest::from_value(&Value::pair(Value::str("nope"), Value::Unit)),
            None
        );
    }
}
