//! A strict-serializability checker for client-observed histories.
//!
//! ShadowDB promises that "to clients it appears as if transactions were
//! executed sequentially, each at some point between the time that a
//! client submitted the transaction and the client received the result"
//! (Sec. III). For the bank workload this is checkable: given every
//! client's observed `(submit, answer, transaction, result)` records, the
//! checker searches for a single sequential order of all committed
//! transactions that (a) respects real-time precedence — if transaction A
//! was answered before B was submitted, A must come first — and
//! (b) reproduces every observed read result when replayed against the
//! bank semantics.
//!
//! Deposits commute on distinct accounts and their results carry no state,
//! so the hard constraints come from `BankRead` results; the checker
//! greedily schedules by answer time and then verifies reads by replay,
//! which is sound and complete for histories whose reads pin the order (a
//! read that could be explained by several interleavings accepts any of
//! them).

use shadowdb_loe::VTime;
use shadowdb_sqldb::SqlValue;
use shadowdb_workloads::TxnRequest;
use std::collections::HashMap;

/// One client-observed operation.
#[derive(Clone, Debug)]
pub struct Observation {
    /// When the client submitted the transaction.
    pub submitted: VTime,
    /// When the client received the answer.
    pub answered: VTime,
    /// The transaction.
    pub txn: TxnRequest,
    /// The answer's result values.
    pub result: Vec<SqlValue>,
}

/// A strict-serializability violation.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// A read returned a balance no real-time-respecting order explains.
    UnexplainedRead {
        /// Index of the offending observation (in answer order).
        index: usize,
        /// The balance the replay predicts.
        expected: i64,
        /// The balance the client observed.
        observed: i64,
    },
    /// A read's balance falls outside the window spanned by its real-time
    /// predecessor deposits (minimum) and those plus every concurrent
    /// deposit (maximum).
    ReadOutOfBounds {
        /// Index of the offending observation (in answer order).
        index: usize,
        /// The balance the client observed.
        observed: i64,
        /// Initial balance plus every deposit that *must* precede the read.
        min: i64,
        /// `min` plus every deposit that *may* precede the read.
        max: i64,
    },
    /// Two reads of the same account, one completed strictly before the
    /// other was submitted, returned shrinking balances (deposits only
    /// ever grow them).
    NonMonotonicReads {
        /// Index of the earlier read (in answer order).
        earlier: usize,
        /// Index of the later read (in answer order).
        later: usize,
        /// Balance the earlier read observed.
        first: i64,
        /// Smaller balance the later read observed.
        second: i64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::UnexplainedRead {
                index,
                expected,
                observed,
            } => write!(
                f,
                "read #{index}: observed balance {observed} but the serial order implies {expected}"
            ),
            Violation::ReadOutOfBounds {
                index,
                observed,
                min,
                max,
            } => write!(
                f,
                "read #{index}: observed balance {observed} outside the real-time \
                 window [{min}, {max}]"
            ),
            Violation::NonMonotonicReads {
                earlier,
                later,
                first,
                second,
            } => write!(
                f,
                "reads #{earlier} then #{later} (non-overlapping) observed balances \
                 {first} then {second}, but deposits only grow them"
            ),
        }
    }
}

/// Checks a set of committed bank observations for strict serializability
/// against initial per-account balances of `initial_balance`.
///
/// Returns `Ok(())` with the witnessing serial order implicitly being
/// answer-time order, or the first violation found.
pub fn check_bank_history(
    observations: &[Observation],
    initial_balance: i64,
) -> Result<(), Violation> {
    // Strictly serializable bank histories are witnessed by answer-time
    // order: every transaction takes effect at some point inside its
    // [submitted, answered] window, and for single-row deposits/reads the
    // answer instant is such a point (the replica executed it before
    // answering; anything answered earlier was executed earlier on the
    // same sequential replica).
    let mut ordered: Vec<&Observation> = observations.iter().collect();
    ordered.sort_by_key(|o| o.answered);
    let mut balances: HashMap<i64, i64> = HashMap::new();
    for (index, o) in ordered.iter().enumerate() {
        match &o.txn {
            TxnRequest::BankDeposit { account, amount } => {
                *balances.entry(*account).or_insert(initial_balance) += amount;
            }
            TxnRequest::BankTransfer { from, to, amount } => {
                *balances.entry(*from).or_insert(initial_balance) -= amount;
                *balances.entry(*to).or_insert(initial_balance) += amount;
            }
            TxnRequest::BankRead { account } => {
                let expected = *balances.entry(*account).or_insert(initial_balance);
                let observed = o
                    .result
                    .first()
                    .and_then(SqlValue::as_int)
                    .unwrap_or(i64::MIN);
                if observed != expected {
                    return Err(Violation::UnexplainedRead {
                        index,
                        expected,
                        observed,
                    });
                }
            }
            _ => {} // only bank semantics are modelled
        }
    }
    Ok(())
}

/// Checks a committed bank history for strict serializability when
/// answers may be *reordered* relative to execution — the situation under
/// fault injection, where a reply can be lost and only reach the client
/// on a later retransmission, long after concurrent transactions from
/// other clients completed.
///
/// Answer-time replay ([`check_bank_history`]) is then unsound: a read
/// executed early but answered late would be replayed after deposits it
/// legitimately never saw. This checker instead verifies, per read, the
/// real-time bounds every strictly serializable order must satisfy:
///
/// * **lower** — deposits to the account whose answer preceded the read's
///   submission *must* be serialized before it;
/// * **upper** — only deposits submitted before the read's answer *can*
///   be serialized before it;
/// * **monotonicity** — of two reads of one account where the first
///   answered before the second was submitted, the second never observes
///   less.
///
/// A duplicated execution inflates post-heal reads past the upper bound;
/// a lost update drags them under the lower bound. (The interval check
/// does not prove a single global order exists — it is a sound,
/// practically tight approximation; reads taken after the system
/// quiesces, where the window collapses to a point, carry the weight.)
///
/// Histories may contain [`TxnRequest::BankTransfer`]s, including
/// cross-shard ones from a sharded deployment. A transfer moves `amount`
/// atomically, so it contributes one delta per touched account: mandatory
/// predecessors shift both bounds, while an overlapping transfer widens
/// only the bound it can move the balance toward (a debit can only
/// lower it, a credit only raise it). This makes the bounds check a
/// **cross-shard atomicity pass**: if a crash mid-commit applied the
/// debit on one shard but lost the credit on the other, a post-quiescence
/// read of the credited account falls below its lower bound.
/// Monotonicity is only asserted for accounts no transfer (or negative
/// deposit) can shrink.
pub fn check_bank_history_concurrent(
    observations: &[Observation],
    initial_balance: i64,
) -> Result<(), Violation> {
    // The delta `txn` applies to `account`, if it touches it at all.
    fn delta_for(txn: &TxnRequest, account: i64) -> Option<i64> {
        match txn {
            TxnRequest::BankDeposit { account: a, amount } if *a == account => Some(*amount),
            TxnRequest::BankTransfer { from, to, amount } => {
                let d = if *to == account { *amount } else { 0 }
                    - if *from == account { *amount } else { 0 };
                (d != 0).then_some(d)
            }
            _ => None,
        }
    }
    let mut ordered: Vec<&Observation> = observations.iter().collect();
    ordered.sort_by_key(|o| o.answered);
    // Accounts some transaction can shrink: their reads have no
    // monotonicity guarantee.
    let shrinkable: std::collections::HashSet<i64> = ordered
        .iter()
        .flat_map(|o| match &o.txn {
            TxnRequest::BankDeposit { account, amount } if *amount < 0 => vec![*account],
            TxnRequest::BankTransfer { from, .. } => vec![*from],
            _ => vec![],
        })
        .collect();
    for (index, r) in ordered.iter().enumerate() {
        let TxnRequest::BankRead { account } = &r.txn else {
            continue;
        };
        let observed = r
            .result
            .first()
            .and_then(SqlValue::as_int)
            .unwrap_or(i64::MIN);
        let (mut min, mut max) = (initial_balance, initial_balance);
        for d in &ordered {
            let Some(delta) = delta_for(&d.txn, *account) else {
                continue;
            };
            if d.answered < r.submitted {
                min += delta;
                max += delta;
            } else if d.submitted < r.answered {
                if delta > 0 {
                    max += delta;
                } else {
                    min += delta;
                }
            }
        }
        if observed < min || observed > max {
            return Err(Violation::ReadOutOfBounds {
                index,
                observed,
                min,
                max,
            });
        }
        // Monotonicity against every earlier-answered read of the account
        // that completed before this one was submitted — only meaningful
        // while nothing can shrink the balance.
        if shrinkable.contains(account) {
            continue;
        }
        for (earlier, r1) in ordered[..index].iter().enumerate() {
            let TxnRequest::BankRead { account: a } = &r1.txn else {
                continue;
            };
            if a != account || r1.answered >= r.submitted {
                continue;
            }
            let first = r1
                .result
                .first()
                .and_then(SqlValue::as_int)
                .unwrap_or(i64::MIN);
            if first > observed {
                return Err(Violation::NonMonotonicReads {
                    earlier,
                    later: index,
                    first,
                    second: observed,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(sub_ms: u64, ans_ms: u64, txn: TxnRequest, result: Vec<SqlValue>) -> Observation {
        Observation {
            submitted: VTime::from_millis(sub_ms),
            answered: VTime::from_millis(ans_ms),
            txn,
            result,
        }
    }

    #[test]
    fn sequential_history_accepted() {
        let h = vec![
            obs(
                0,
                1,
                TxnRequest::BankDeposit {
                    account: 1,
                    amount: 10,
                },
                vec![],
            ),
            obs(
                2,
                3,
                TxnRequest::BankRead { account: 1 },
                vec![SqlValue::Int(110)],
            ),
            obs(
                4,
                5,
                TxnRequest::BankDeposit {
                    account: 1,
                    amount: 5,
                },
                vec![],
            ),
            obs(
                6,
                7,
                TxnRequest::BankRead { account: 1 },
                vec![SqlValue::Int(115)],
            ),
        ];
        check_bank_history(&h, 100).expect("serializable");
    }

    #[test]
    fn stale_read_rejected() {
        let h = vec![
            obs(
                0,
                1,
                TxnRequest::BankDeposit {
                    account: 1,
                    amount: 10,
                },
                vec![],
            ),
            // Submitted and answered strictly after the deposit's answer,
            // yet reads the old balance: a strict-serializability violation.
            obs(
                2,
                3,
                TxnRequest::BankRead { account: 1 },
                vec![SqlValue::Int(100)],
            ),
        ];
        let v = check_bank_history(&h, 100).expect_err("stale read");
        assert_eq!(
            v,
            Violation::UnexplainedRead {
                index: 1,
                expected: 110,
                observed: 100
            }
        );
    }

    #[test]
    fn concurrent_deposits_commute() {
        // Two overlapping deposits to different accounts; reads after both.
        let h = vec![
            obs(
                0,
                5,
                TxnRequest::BankDeposit {
                    account: 1,
                    amount: 1,
                },
                vec![],
            ),
            obs(
                0,
                4,
                TxnRequest::BankDeposit {
                    account: 2,
                    amount: 2,
                },
                vec![],
            ),
            obs(
                6,
                7,
                TxnRequest::BankRead { account: 1 },
                vec![SqlValue::Int(101)],
            ),
            obs(
                6,
                8,
                TxnRequest::BankRead { account: 2 },
                vec![SqlValue::Int(102)],
            ),
        ];
        check_bank_history(&h, 100).expect("serializable");
    }

    #[test]
    fn late_answered_read_tolerated_by_concurrent_checker() {
        // The read executed before the deposit but its answer was lost and
        // only arrived on a retransmission, after the deposit completed.
        // Answer-order replay rejects this; the real-time-bounds checker
        // accepts it (the two transactions overlap).
        let h = vec![
            obs(
                0,
                50,
                TxnRequest::BankRead { account: 1 },
                vec![SqlValue::Int(100)],
            ),
            obs(
                5,
                6,
                TxnRequest::BankDeposit {
                    account: 1,
                    amount: 10,
                },
                vec![],
            ),
        ];
        assert!(check_bank_history(&h, 100).is_err());
        check_bank_history_concurrent(&h, 100).expect("overlapping, legal");
    }

    #[test]
    fn concurrent_checker_rejects_duplicate_execution() {
        // One deposit, but a post-quiescence read sees it applied twice.
        let h = vec![
            obs(
                0,
                1,
                TxnRequest::BankDeposit {
                    account: 1,
                    amount: 10,
                },
                vec![],
            ),
            obs(
                5,
                6,
                TxnRequest::BankRead { account: 1 },
                vec![SqlValue::Int(120)],
            ),
        ];
        let v = check_bank_history_concurrent(&h, 100).expect_err("duplicate");
        assert!(matches!(
            v,
            Violation::ReadOutOfBounds {
                min: 110,
                max: 110,
                observed: 120,
                ..
            }
        ));
    }

    #[test]
    fn concurrent_checker_rejects_lost_update() {
        let h = vec![
            obs(
                0,
                1,
                TxnRequest::BankDeposit {
                    account: 1,
                    amount: 10,
                },
                vec![],
            ),
            obs(
                5,
                6,
                TxnRequest::BankRead { account: 1 },
                vec![SqlValue::Int(100)],
            ),
        ];
        assert!(check_bank_history_concurrent(&h, 100).is_err());
    }

    #[test]
    fn concurrent_checker_rejects_shrinking_reads() {
        // Two sequential reads with a concurrent deposit overlapping both:
        // each read's interval admits its value, but the later read sees
        // less than the earlier one — no serial order explains that.
        let h = vec![
            obs(
                0,
                100,
                TxnRequest::BankDeposit {
                    account: 1,
                    amount: 10,
                },
                vec![],
            ),
            obs(
                10,
                20,
                TxnRequest::BankRead { account: 1 },
                vec![SqlValue::Int(110)],
            ),
            obs(
                30,
                40,
                TxnRequest::BankRead { account: 1 },
                vec![SqlValue::Int(100)],
            ),
        ];
        let v = check_bank_history_concurrent(&h, 100).expect_err("shrinking");
        assert!(matches!(v, Violation::NonMonotonicReads { .. }));
    }

    #[test]
    fn transfer_history_accepted_by_both_checkers() {
        let h = vec![
            obs(
                0,
                1,
                TxnRequest::BankTransfer {
                    from: 1,
                    to: 2,
                    amount: 30,
                },
                vec![SqlValue::Int(2)],
            ),
            obs(
                2,
                3,
                TxnRequest::BankRead { account: 1 },
                vec![SqlValue::Int(70)],
            ),
            obs(
                4,
                5,
                TxnRequest::BankRead { account: 2 },
                vec![SqlValue::Int(130)],
            ),
        ];
        check_bank_history(&h, 100).expect("serializable");
        check_bank_history_concurrent(&h, 100).expect("serializable");
    }

    #[test]
    fn partial_cross_shard_commit_detected() {
        // A cross-shard transfer whose debit applied but whose credit was
        // lost (the atomicity failure 2PC must prevent): the post-
        // quiescence read of the credited account misses the money.
        let h = vec![
            obs(
                0,
                1,
                TxnRequest::BankTransfer {
                    from: 0,
                    to: 1,
                    amount: 10,
                },
                vec![SqlValue::Int(2)],
            ),
            obs(
                5,
                6,
                TxnRequest::BankRead { account: 0 },
                vec![SqlValue::Int(90)],
            ),
            obs(
                7,
                8,
                TxnRequest::BankRead { account: 1 },
                vec![SqlValue::Int(100)],
            ),
        ];
        let v = check_bank_history_concurrent(&h, 100).expect_err("lost credit");
        assert!(matches!(
            v,
            Violation::ReadOutOfBounds {
                observed: 100,
                min: 110,
                max: 110,
                ..
            }
        ));
    }

    #[test]
    fn overlapping_transfer_widens_only_reachable_bound() {
        // A transfer concurrent with both reads: the source account may
        // or may not have been debited yet, the destination may or may
        // not have been credited.
        let h = vec![
            obs(
                0,
                100,
                TxnRequest::BankTransfer {
                    from: 1,
                    to: 2,
                    amount: 40,
                },
                vec![SqlValue::Int(2)],
            ),
            obs(
                10,
                20,
                TxnRequest::BankRead { account: 1 },
                vec![SqlValue::Int(60)],
            ),
            obs(
                10,
                21,
                TxnRequest::BankRead { account: 2 },
                vec![SqlValue::Int(140)],
            ),
        ];
        check_bank_history_concurrent(&h, 100).expect("both orders legal");
        // But the source can never *gain* from its own outgoing transfer.
        let h2 = vec![
            h[0].clone(),
            obs(
                10,
                20,
                TxnRequest::BankRead { account: 1 },
                vec![SqlValue::Int(140)],
            ),
        ];
        assert!(check_bank_history_concurrent(&h2, 100).is_err());
    }

    #[test]
    fn monotonicity_skipped_for_transfer_sources() {
        // Account 1 is a transfer source: shrinking reads are legal
        // (the transfer serialized between them).
        let h = vec![
            obs(
                0,
                100,
                TxnRequest::BankTransfer {
                    from: 1,
                    to: 2,
                    amount: 10,
                },
                vec![SqlValue::Int(2)],
            ),
            obs(
                10,
                20,
                TxnRequest::BankRead { account: 1 },
                vec![SqlValue::Int(100)],
            ),
            obs(
                30,
                40,
                TxnRequest::BankRead { account: 1 },
                vec![SqlValue::Int(90)],
            ),
        ];
        check_bank_history_concurrent(&h, 100).expect("transfer explains the shrink");
    }

    #[test]
    fn lost_update_detected() {
        // Two deposits to the same account, but a later read shows only one
        // of them: the replication lost an update.
        let h = vec![
            obs(
                0,
                1,
                TxnRequest::BankDeposit {
                    account: 3,
                    amount: 10,
                },
                vec![],
            ),
            obs(
                2,
                3,
                TxnRequest::BankDeposit {
                    account: 3,
                    amount: 10,
                },
                vec![],
            ),
            obs(
                4,
                5,
                TxnRequest::BankRead { account: 3 },
                vec![SqlValue::Int(110)],
            ),
        ];
        assert!(check_bank_history(&h, 100).is_err());
    }
}
