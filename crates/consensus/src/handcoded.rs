//! Hand-coded Paxos: the native performance baseline.
//!
//! The paper notes that even the compiled broadcast service "remains one
//! order of magnitude slower than a hand-coded Paxos". This module is that
//! hand-coded Paxos: the same multi-decree Synod protocol as
//! [`crate::synod`], speaking the *same wire messages*, but implemented as
//! native processes with typed state (`BTreeMap`s instead of
//! association-list `Value`s, direct dispatch instead of combinator
//! evaluation).
//!
//! Wire compatibility is tested: a hand-coded acceptor can serve a
//! spec-generated leader and vice versa.

use crate::synod::{
    SynodConfig, DECISION_HEADER, P1A_HEADER, P1B_HEADER, P2A_HEADER, P2B_HEADER, PROPOSE_HEADER,
    REQUEST_HEADER, RESCOUT_BACKOFF, RESCOUT_HEADER, START_HEADER,
};
use crate::{decide_body, vmap, DECIDE_HEADER};
use shadowdb_eventml::process::HasherAdapter;
use shadowdb_eventml::{cached_header, Ctx, Msg, Process, SendInstr, Value};
use shadowdb_loe::Loc;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};

/// A ballot: `(round, leader)`, ordered lexicographically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ballot {
    /// Monotone per-leader round number.
    pub round: i64,
    /// The leader that owns the ballot.
    pub leader: Loc,
}

impl Ballot {
    /// The ballot below all real ballots.
    pub const fn bottom() -> Ballot {
        Ballot {
            round: -1,
            leader: Loc::new(0),
        }
    }

    fn to_value(self) -> Value {
        Value::pair(Value::Int(self.round), Value::Loc(self.leader))
    }

    fn from_value(v: &Value) -> Ballot {
        let (r, l) = v.unpair();
        Ballot {
            round: r.int(),
            leader: l.loc(),
        }
    }
}

// ---------------------------------------------------------------------------
// Acceptor
// ---------------------------------------------------------------------------

/// A native Synod acceptor.
#[derive(Clone, Debug, Default)]
pub struct HandAcceptor {
    ballot: Option<Ballot>,
    accepted: BTreeMap<i64, (Ballot, Value)>,
}

impl HandAcceptor {
    /// Creates an acceptor with empty state.
    pub fn new() -> HandAcceptor {
        HandAcceptor::default()
    }

    fn cur(&self) -> Ballot {
        self.ballot.unwrap_or(Ballot::bottom())
    }

    fn accepted_value(&self) -> Value {
        let mut map = vmap::empty();
        for (slot, (b, cmd)) in &self.accepted {
            map = vmap::set(
                &map,
                Value::Int(*slot),
                Value::pair(b.to_value(), cmd.clone()),
            );
        }
        map
    }
}

impl Process for HandAcceptor {
    fn step_into(&mut self, ctx: &Ctx, msg: &Msg, out: &mut Vec<SendInstr>) {
        // Dispatch on the interned symbol: one integer comparison per arm.
        let h = msg.header;
        if h == cached_header!(P1A_HEADER) {
            let (leader, b) = msg.body.unpair();
            let b = Ballot::from_value(b);
            if b > self.cur() {
                self.ballot = Some(b);
            }
            out.push(SendInstr::now(
                leader.loc(),
                Msg::new(
                    cached_header!(P1B_HEADER),
                    Value::pair(
                        Value::Loc(ctx.slf),
                        Value::pair(self.cur().to_value(), self.accepted_value()),
                    ),
                ),
            ));
        } else if h == cached_header!(P2A_HEADER) {
            let (leader, rest) = msg.body.unpair();
            let (b, sc) = rest.unpair();
            let (slot, cmd) = sc.unpair();
            let b = Ballot::from_value(b);
            if b >= self.cur() {
                self.ballot = Some(b);
                self.accepted.insert(slot.int(), (b, cmd.clone()));
            }
            out.push(SendInstr::now(
                leader.loc(),
                Msg::new(
                    cached_header!(P2B_HEADER),
                    Value::pair(
                        Value::Loc(ctx.slf),
                        Value::pair(self.cur().to_value(), slot.clone()),
                    ),
                ),
            ));
        }
    }
    fn clone_box(&self) -> Box<dyn Process> {
        Box::new(self.clone())
    }
    fn digest(&self, hasher: &mut dyn Hasher) {
        let mut h = HasherAdapter(hasher);
        self.ballot.hash(&mut h);
        self.accepted.hash(&mut h);
    }
}

// ---------------------------------------------------------------------------
// Leader
// ---------------------------------------------------------------------------

/// An in-progress scout: the acceptors still awaited and the accepted
/// pvalues (slot → highest-ballot command) gathered so far.
type ScoutState = (BTreeSet<Loc>, BTreeMap<i64, (Ballot, Value)>);

/// A native Synod leader with folded scout/commander sub-state.
#[derive(Clone, Debug)]
pub struct HandLeader {
    config: SynodConfig,
    round: i64,
    active: bool,
    proposals: BTreeMap<i64, Value>,
    scout: Option<ScoutState>,
    commanders: BTreeMap<i64, BTreeSet<Loc>>,
}

impl HandLeader {
    /// Creates a leader for the given deployment.
    pub fn new(config: SynodConfig) -> HandLeader {
        HandLeader {
            config,
            round: -1,
            active: false,
            proposals: BTreeMap::new(),
            scout: None,
            commanders: BTreeMap::new(),
        }
    }

    fn ballot(&self, slf: Loc) -> Ballot {
        Ballot {
            round: self.round,
            leader: slf,
        }
    }

    fn spawn_scout(&mut self, slf: Loc, outs: &mut Vec<SendInstr>) {
        self.scout = Some((
            self.config.acceptors.iter().copied().collect(),
            BTreeMap::new(),
        ));
        for a in &self.config.acceptors {
            outs.push(SendInstr::now(
                *a,
                Msg::new(
                    cached_header!(P1A_HEADER),
                    Value::pair(Value::Loc(slf), self.ballot(slf).to_value()),
                ),
            ));
        }
    }

    fn spawn_commander(&mut self, slf: Loc, slot: i64, cmd: &Value, outs: &mut Vec<SendInstr>) {
        self.commanders
            .insert(slot, self.config.acceptors.iter().copied().collect());
        for a in &self.config.acceptors {
            outs.push(SendInstr::now(
                *a,
                Msg::new(
                    cached_header!(P2A_HEADER),
                    Value::pair(
                        Value::Loc(slf),
                        Value::pair(
                            self.ballot(slf).to_value(),
                            Value::pair(Value::Int(slot), cmd.clone()),
                        ),
                    ),
                ),
            ));
        }
    }

    fn preempt(&mut self, slf: Loc, seen: Ballot, outs: &mut Vec<SendInstr>) {
        self.round = seen.round.max(self.round) + 1;
        self.active = false;
        self.scout = None;
        self.commanders.clear();
        outs.push(SendInstr::after(
            RESCOUT_BACKOFF,
            slf,
            Msg::new(cached_header!(RESCOUT_HEADER), Value::Unit),
        ));
    }

    fn majority(&self) -> usize {
        self.config.acceptors.len() / 2 + 1
    }
}

impl Process for HandLeader {
    fn step_into(&mut self, ctx: &Ctx, msg: &Msg, out: &mut Vec<SendInstr>) {
        let slf = ctx.slf;
        let outs = out;
        let h = msg.header;
        if h == cached_header!(START_HEADER) {
            if self.round < 0 {
                self.round = 0;
                self.spawn_scout(slf, outs);
            }
        } else if h == cached_header!(RESCOUT_HEADER) {
            if !self.active && self.scout.is_none() {
                self.spawn_scout(slf, outs);
            }
        } else if h == cached_header!(PROPOSE_HEADER) {
            let (slot, cmd) = msg.body.unpair();
            let slot = slot.int();
            if let std::collections::btree_map::Entry::Vacant(e) = self.proposals.entry(slot) {
                e.insert(cmd.clone());
                if self.active {
                    let cmd = cmd.clone();
                    self.spawn_commander(slf, slot, &cmd, outs);
                }
            }
        } else if h == cached_header!(P1B_HEADER) {
            let (acceptor, rest) = msg.body.unpair();
            let (b, accepted) = rest.unpair();
            let b = Ballot::from_value(b);
            if b == self.ballot(slf) {
                if let Some((mut waitfor, mut pvals)) = self.scout.take() {
                    for (slot, bc) in vmap::iter(accepted) {
                        let (pb, cmd) = bc.unpair();
                        let pb = Ballot::from_value(pb);
                        let slot = slot.int();
                        if pvals.get(&slot).map(|(eb, _)| pb > *eb).unwrap_or(true) {
                            pvals.insert(slot, (pb, cmd.clone()));
                        }
                    }
                    waitfor.remove(&acceptor.loc());
                    let heard = self.config.acceptors.len() - waitfor.len();
                    if heard >= self.majority() {
                        self.active = true;
                        for (slot, (_, cmd)) in &pvals {
                            self.proposals.insert(*slot, cmd.clone());
                        }
                        let proposals: Vec<(i64, Value)> = self
                            .proposals
                            .iter()
                            .map(|(s, c)| (*s, c.clone()))
                            .collect();
                        for (slot, cmd) in proposals {
                            self.spawn_commander(slf, slot, &cmd, outs);
                        }
                    } else {
                        self.scout = Some((waitfor, pvals));
                    }
                }
            } else if b > self.ballot(slf) {
                self.preempt(slf, b, outs);
            }
        } else if h == cached_header!(P2B_HEADER) {
            let (acceptor, rest) = msg.body.unpair();
            let (b, slot) = rest.unpair();
            let b = Ballot::from_value(b);
            let slot = slot.int();
            if b == self.ballot(slf) {
                if let Some(mut waitfor) = self.commanders.remove(&slot) {
                    waitfor.remove(&acceptor.loc());
                    let heard = self.config.acceptors.len() - waitfor.len();
                    if heard >= self.majority() {
                        let cmd = self
                            .proposals
                            .get(&slot)
                            .expect("commander implies proposal");
                        for r in &self.config.replicas {
                            outs.push(SendInstr::now(
                                *r,
                                Msg::new(
                                    cached_header!(DECISION_HEADER),
                                    Value::pair(Value::Int(slot), cmd.clone()),
                                ),
                            ));
                        }
                    } else {
                        self.commanders.insert(slot, waitfor);
                    }
                }
            } else if b > self.ballot(slf) {
                self.preempt(slf, b, outs);
            }
        }
    }
    fn clone_box(&self) -> Box<dyn Process> {
        Box::new(self.clone())
    }
    fn digest(&self, hasher: &mut dyn Hasher) {
        let mut h = HasherAdapter(hasher);
        (self.round, self.active).hash(&mut h);
        self.proposals.hash(&mut h);
        if let Some((w, p)) = &self.scout {
            w.hash(&mut h);
            p.hash(&mut h);
        }
        self.commanders.hash(&mut h);
    }
}

// ---------------------------------------------------------------------------
// Replica
// ---------------------------------------------------------------------------

/// A native Synod replica.
#[derive(Clone, Debug)]
pub struct HandReplica {
    config: SynodConfig,
    slot_in: i64,
    slot_out: i64,
    proposals: BTreeMap<i64, Value>,
    decisions: BTreeMap<i64, Value>,
}

impl HandReplica {
    /// Creates a replica for the given deployment.
    pub fn new(config: SynodConfig) -> HandReplica {
        HandReplica {
            config,
            slot_in: 0,
            slot_out: 0,
            proposals: BTreeMap::new(),
            decisions: BTreeMap::new(),
        }
    }

    fn propose(&mut self, cmd: &Value, outs: &mut Vec<SendInstr>) {
        if self.decisions.values().any(|c| c == cmd) {
            return;
        }
        while self.proposals.contains_key(&self.slot_in)
            || self.decisions.contains_key(&self.slot_in)
        {
            self.slot_in += 1;
        }
        self.proposals.insert(self.slot_in, cmd.clone());
        for l in &self.config.leaders {
            outs.push(SendInstr::now(
                *l,
                Msg::new(
                    cached_header!(PROPOSE_HEADER),
                    Value::pair(Value::Int(self.slot_in), cmd.clone()),
                ),
            ));
        }
    }
}

impl Process for HandReplica {
    fn step_into(&mut self, _ctx: &Ctx, msg: &Msg, out: &mut Vec<SendInstr>) {
        let h = msg.header;
        if h == cached_header!(REQUEST_HEADER) {
            let outstanding = self.proposals.values().any(|c| c == &msg.body);
            if !outstanding {
                let cmd = msg.body.clone();
                self.propose(&cmd, out);
            }
        } else if h == cached_header!(DECISION_HEADER) {
            let (slot, cmd) = msg.body.unpair();
            self.decisions
                .entry(slot.int())
                .or_insert_with(|| cmd.clone());
            while let Some(decided) = self.decisions.get(&self.slot_out).cloned() {
                if let Some(ours) = self.proposals.remove(&self.slot_out) {
                    if ours != decided {
                        self.propose(&ours, out);
                    }
                }
                for learner in &self.config.learners {
                    out.push(SendInstr::now(
                        *learner,
                        Msg::new(
                            cached_header!(DECIDE_HEADER),
                            decide_body(self.slot_out, &decided),
                        ),
                    ));
                }
                self.slot_out += 1;
            }
        }
    }
    fn clone_box(&self) -> Box<dyn Process> {
        Box::new(self.clone())
    }
    fn digest(&self, hasher: &mut dyn Hasher) {
        let mut h = HasherAdapter(hasher);
        (self.slot_in, self.slot_out).hash(&mut h);
        self.proposals.hash(&mut h);
        self.decisions.hash(&mut h);
    }
}

/// Convenience: build the full set of native processes for a deployment,
/// in the location order `replicas ++ leaders ++ acceptors`.
pub fn deployment(config: &SynodConfig) -> Vec<(Loc, Box<dyn Process>)> {
    let mut procs: Vec<(Loc, Box<dyn Process>)> = Vec::new();
    for r in &config.replicas {
        procs.push((*r, Box::new(HandReplica::new(config.clone()))));
    }
    for l in &config.leaders {
        procs.push((*l, Box::new(HandLeader::new(config.clone()))));
    }
    for a in &config.acceptors {
        procs.push((*a, Box::new(HandAcceptor::new())));
    }
    procs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_decide;
    use crate::synod::{request_msg, start_msg};
    use std::collections::VecDeque;

    fn config() -> SynodConfig {
        SynodConfig {
            replicas: vec![Loc::new(0)],
            leaders: vec![Loc::new(1)],
            acceptors: vec![Loc::new(2), Loc::new(3), Loc::new(4)],
            learners: vec![Loc::new(100)],
        }
    }

    fn run(
        mut procs: Vec<(Loc, Box<dyn Process>)>,
        injections: Vec<(Loc, Msg)>,
        learner: Loc,
    ) -> Vec<(i64, Value)> {
        let mut queue: VecDeque<(Loc, Msg)> = injections.into();
        let mut decisions = Vec::new();
        let mut steps = 0;
        while let Some((dest, msg)) = queue.pop_front() {
            steps += 1;
            assert!(steps < 100_000);
            if dest == learner {
                if let Some(d) = parse_decide(&msg) {
                    decisions.push(d);
                }
                continue;
            }
            if let Some((_, p)) = procs.iter_mut().find(|(l, _)| *l == dest) {
                for o in p.step(&Ctx::at(dest), &msg) {
                    queue.push_back((o.dest, o.msg));
                }
            }
        }
        decisions
    }

    #[test]
    fn handcoded_decides_in_order() {
        let cfg = config();
        let mut inj = vec![(cfg.leaders[0], start_msg())];
        for i in 0..5 {
            inj.push((cfg.replicas[0], request_msg(Value::Int(i))));
        }
        let decisions = run(deployment(&cfg), inj, Loc::new(100));
        let slots: Vec<i64> = decisions.iter().map(|(s, _)| *s).collect();
        assert_eq!(slots, vec![0, 1, 2, 3, 4]);
    }

    /// Wire compatibility: spec-generated acceptors under a hand-coded
    /// leader and replica.
    #[test]
    fn interoperates_with_spec_generated_acceptors() {
        use shadowdb_eventml::InterpretedProcess;
        let cfg = config();
        let mut procs: Vec<(Loc, Box<dyn Process>)> = vec![
            (cfg.replicas[0], Box::new(HandReplica::new(cfg.clone()))),
            (cfg.leaders[0], Box::new(HandLeader::new(cfg.clone()))),
        ];
        for a in &cfg.acceptors {
            procs.push((
                *a,
                Box::new(InterpretedProcess::compile(&crate::synod::acceptor_class(
                    &cfg,
                ))),
            ));
        }
        let inj = vec![
            (cfg.leaders[0], start_msg()),
            (cfg.replicas[0], request_msg(Value::str("mixed"))),
        ];
        let decisions = run(procs, inj, Loc::new(100));
        assert_eq!(decisions, vec![(0, Value::str("mixed"))]);
    }

    /// And the other direction: hand-coded acceptors under spec-generated
    /// leader and replica.
    #[test]
    fn spec_roles_accept_handcoded_acceptors() {
        use shadowdb_eventml::InterpretedProcess;
        let cfg = config();
        let mut procs: Vec<(Loc, Box<dyn Process>)> = vec![
            (
                cfg.replicas[0],
                Box::new(InterpretedProcess::compile(&crate::synod::replica_class(
                    &cfg,
                ))),
            ),
            (
                cfg.leaders[0],
                Box::new(InterpretedProcess::compile(&crate::synod::leader_class(
                    &cfg,
                ))),
            ),
        ];
        for a in &cfg.acceptors {
            procs.push((*a, Box::new(HandAcceptor::new())));
        }
        let inj = vec![
            (cfg.leaders[0], start_msg()),
            (cfg.replicas[0], request_msg(Value::str("mixed2"))),
        ];
        let decisions = run(procs, inj, Loc::new(100));
        assert_eq!(decisions, vec![(0, Value::str("mixed2"))]);
    }
}
