//! Shared test scaffolding.
//!
//! Deployment tests across the workspace all want the same thing: a LAN-like
//! simulated network with a fixed seed. Building it lives here so the recipe
//! is written once instead of copy-pasted per test module.

use crate::{NetworkConfig, SimBuilder, Simulation};

/// A simulation over [`NetworkConfig::lan`] with the given seed — the
/// standard substrate for deployment and protocol tests.
pub fn default_net(seed: u64) -> Simulation {
    SimBuilder::new(seed).network(NetworkConfig::lan()).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_net_is_deterministic_per_seed() {
        let a = default_net(42);
        let b = default_net(42);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.now(), b.now());
    }
}
