//! TPC-C on ShadowDB-SMR: the paper's headline workload.
//!
//! Loads a (reduced) one-warehouse TPC-C database into three diverse
//! replicas, drives the standard five-transaction mix through the
//! compiled broadcast service, and verifies what state machine replication
//! promises: replicas that executed the same totally ordered transaction
//! stream, including the deterministic 1 % NewOrder rollbacks, with the
//! crash of one replica invisible to the clients.
//!
//! Run with: `cargo run --release --example tpcc_smr`

use shadowdb::deploy::{DeployOptions, SmrDeployment};
use shadowdb::diversity::DiversityPolicy;
use shadowdb_loe::VTime;
use shadowdb_simnet::{NetworkConfig, SimBuilder};
use shadowdb_workloads::tpcc::{TpccGen, TpccScale};
use shadowdb_workloads::TxnRequest;

fn main() {
    let scale = TpccScale {
        districts: 4,
        customers_per_district: 100,
        items: 2_000,
        orders_per_district: 100,
    };
    let clients = 3;
    let txns_per_client = 150;

    let mut sim = SimBuilder::new(31).network(NetworkConfig::lan()).build();
    let options = DeployOptions {
        diversity: DiversityPolicy::Trio,
        ..DeployOptions::new(
            clients,
            move |client| {
                let mut g = TpccGen::new(80 + client as u64, scale, client as u64 + 1);
                (0..txns_per_client)
                    .map(|_| TxnRequest::Tpcc(g.next_txn()))
                    .collect()
            },
            move |db| shadowdb_workloads::tpcc::load(db, &scale, 5).expect("warehouse loads"),
        )
    };
    let deployment = SmrDeployment::build(&mut sim, &options);
    println!(
        "loaded 1 warehouse (~{} rows) into 3 diverse replicas",
        scale.total_rows()
    );

    // One replica crashes halfway; SMR masks it ("the protocol proceeds
    // normally with no interruptions as long as at least one replica
    // survives").
    sim.run_until(VTime::from_secs(1));
    println!(
        "crashing replica {} — clients should not notice",
        deployment.replicas[1]
    );
    sim.crash_at(sim.now(), deployment.replicas[1]);
    sim.run_until_quiescent(VTime::from_secs(3_600));

    let mut committed = 0;
    let mut aborted = 0;
    for s in &deployment.stats {
        let s = s.lock();
        committed += s.committed();
        aborted += s.completed.len() - s.committed();
    }
    println!(
        "answered: {} committed + {} rolled back (the spec's invalid-item NewOrders)",
        committed, aborted
    );
    assert_eq!(committed + aborted, clients * txns_per_client);
    let resends: u64 = deployment.stats.iter().map(|s| s.lock().resends).sum();
    println!("client retransmissions despite the crash: {resends}");

    for (i, s) in deployment.stats.iter().enumerate() {
        println!(
            "client {i}: mean latency {:?}",
            s.lock().mean_latency().expect("has commits")
        );
    }
    println!("done — all five TPC-C transaction types executed under total order.");
}
