//! Model checking online reconfiguration.
//!
//! The shipping deployment builders assemble into `shadowdb_mck`'s
//! `WorldBuilder`, a joiner replica is grafted on exactly the way
//! `ReconfigHandle` grafts one (subscribe to the broadcast service, then
//! race a configuration command through it), and the checker explores
//! the delivery interleavings. Three bounded claims:
//!
//! * **Configuration agreement** — any two replicas reporting the same
//!   configuration sequence number report the same membership, and two
//!   *settled* reports of the same sequence agree on the primary
//!   (`members[0]`). No interleaving of the add, the client submission,
//!   the heartbeats, and the service traffic produces two primaries in
//!   one configuration.
//! * **First proposal per configuration wins** — a racing `AddReplica`
//!   and `RemoveReplica`, both CAS-guarded on sequence 0, resolve to
//!   exactly one of the two successor memberships, never a merge.
//! * **Joiner state equals donor state** — under SMR a snapshot-joining
//!   replica's answers are indistinguishable from the incumbents': the
//!   handoff (snapshot at the subscription point, replay after) puts it
//!   in the same deterministic state, so replicas never disagree on an
//!   answer.
//!
//! TwoThird keeps the broadcast service bounded; `machines: 2` and depth
//! bounds keep the space explorable (a smoke check, not a proof — the
//! full election+transfer handshake is deeper than the bound, but every
//! partial-adoption state on the way is checked).

use shadowdb::deploy::{DeployOptions, PbrDeployment, SmrDeployment};
use shadowdb::diversity::DiversityPolicy;
use shadowdb::msgs::{
    config_query_msg, parse_config_reply, parse_reply, submit_msg, ConfigCommand, TxnEnvelope,
};
use shadowdb::pbr::{PbrOptions, PbrReplica};
use shadowdb::smr::SmrReplica;
use shadowdb_loe::{Loc, VTime};
use shadowdb_mck::{Options, WorldBuilder};
use shadowdb_runtime::Runtime;
use shadowdb_sqldb::SqlValue;
use shadowdb_tob::deploy::BackendKind;
use shadowdb_tob::{broadcast_msg, subscribe_msg};
use shadowdb_workloads::{bank, TxnRequest};
use std::collections::BTreeMap;

const ACCOUNTS: usize = 4;

fn checker_options() -> DeployOptions {
    let mut options = DeployOptions::new(
        0, // clients are environment ports, not deployed processes
        |_| Vec::new(),
        |db| bank::load(db, ACCOUNTS).expect("bank loads"),
    );
    options.machines = 2;
    options.backend = BackendKind::TwoThird;
    options
}

fn sorted(members: &[Loc]) -> Vec<Loc> {
    let mut v = members.to_vec();
    v.sort_unstable();
    v
}

/// Grafts a PBR joiner onto a built deployment the way the reconfig
/// handle does: fresh loaded database, joiner process, subscriptions at
/// every broadcast server.
fn graft_pbr_joiner(world: &mut WorldBuilder, d: &PbrDeployment) -> Loc {
    let db = DiversityPolicy::Uniform.database(d.replicas.len());
    bank::load(&db, ACCOUNTS).expect("bank loads");
    let joiner = world.add_node(Box::new(PbrReplica::joiner(
        db,
        d.tob.servers.clone(),
        PbrOptions::default(),
    )));
    for s in &d.tob.servers {
        world.send_at(VTime::ZERO, *s, subscribe_msg(joiner));
    }
    joiner
}

/// A deposit, an `AddReplica`, and configuration queries race through
/// the deployment: in every reachable state, same-sequence configuration
/// reports agree on membership (and settled ones on the primary), and
/// the only sequence-1 membership is the add applied to sequence 0.
#[test]
fn mck_pbr_add_replica_config_agreement() {
    let mut world = WorldBuilder::new();
    let (client, _rx) = world.port();
    let options = checker_options();
    let d = PbrDeployment::build(&mut world, &options, PbrOptions::default());
    // The initial configuration is the active members; the deployment's
    // remaining replica is a spare outside it.
    let members = d.replicas[..options.active_replicas].to_vec();
    let joiner = graft_pbr_joiner(&mut world, &d);

    let env = TxnEnvelope::new(
        client,
        0,
        TxnRequest::BankDeposit {
            account: 0,
            amount: 5,
        },
    );
    world.send_at(VTime::ZERO, d.replicas[0], submit_msg(&env));
    let cmd = ConfigCommand::add(&members, joiner).expect("joiner is not a member");
    world.send_at(
        VTime::ZERO,
        d.tob.servers[0],
        broadcast_msg(client, 100, cmd.to_payload(0)),
    );
    for r in d.replicas.iter().chain([&joiner]) {
        world.send_at(VTime::ZERO, *r, config_query_msg(client));
    }

    let mut grown = sorted(&members);
    grown.push(joiner);
    grown.sort_unstable();
    let initial = sorted(&members);

    let outcome = world.explore(
        Options {
            max_depth: 14,
            max_states: 20_000,
            ..Options::default()
        },
        |w| {
            // seq → (membership set, settled primary if any)
            let mut by_seq: BTreeMap<i64, (Vec<Loc>, Option<Loc>)> = BTreeMap::new();
            for (_, _, msg) in &w.observations {
                if let Some(reply) = parse_reply(msg) {
                    if reply.cseq != 0 || !reply.committed {
                        return Err(format!(
                            "unexpected answer: cseq {} committed {}",
                            reply.cseq, reply.committed
                        ));
                    }
                }
                let Some(rep) = parse_config_reply(msg) else {
                    continue;
                };
                if rep.config.seq < 0 {
                    continue; // the joiner before it anchors
                }
                let set = sorted(&rep.config.members);
                let primary = rep.normal.then(|| rep.config.primary());
                match by_seq.get_mut(&rep.config.seq) {
                    Some((prev_set, prev_primary)) => {
                        if *prev_set != set {
                            return Err(format!(
                                "config {} has two memberships: {prev_set:?} vs {set:?}",
                                rep.config.seq
                            ));
                        }
                        match (&prev_primary, primary) {
                            (Some(a), Some(b)) if *a != b => {
                                return Err(format!(
                                    "two primaries in config {}: {a:?} vs {b:?}",
                                    rep.config.seq
                                ));
                            }
                            (None, Some(b)) => *prev_primary = Some(b),
                            _ => {}
                        }
                    }
                    None => {
                        by_seq.insert(rep.config.seq, (set, primary));
                    }
                }
            }
            // The only configurations expressible here are the initial one
            // and the add applied to it.
            for (seq, (set, _)) in &by_seq {
                let ok = match seq {
                    0 => *set == initial,
                    1 => *set == grown,
                    _ => false,
                };
                if !ok {
                    return Err(format!("config {seq} has unexplainable membership {set:?}"));
                }
            }
            Ok(())
        },
    );
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    assert!(
        outcome.states_visited > 100,
        "the interleaving space should be non-trivial: {}",
        outcome.states_visited
    );
    eprintln!(
        "PBR add-replica: explored {} states (truncated: {})",
        outcome.states_visited, outcome.truncated
    );
}

/// Two configuration commands race for sequence 0's successor: an
/// `AddReplica` through one broadcast server and a `RemoveReplica`
/// through the other. In every interleaving exactly one wins — every
/// sequence-1 report is either the grown or the shrunk membership, all
/// of them the same one, never a merge of the two.
#[test]
fn mck_pbr_racing_config_commands_first_wins() {
    let mut world = WorldBuilder::new();
    let (client, _rx) = world.port();
    let options = checker_options();
    let d = PbrDeployment::build(&mut world, &options, PbrOptions::default());
    let members = d.replicas[..options.active_replicas].to_vec();
    let joiner = graft_pbr_joiner(&mut world, &d);

    let add = ConfigCommand::add(&members, joiner).expect("joiner is not a member");
    let remove =
        ConfigCommand::remove(&members, *members.last().expect("members")).expect("is a member");
    world.send_at(
        VTime::ZERO,
        d.tob.servers[0],
        broadcast_msg(client, 100, add.to_payload(0)),
    );
    world.send_at(
        VTime::ZERO,
        d.tob.servers[1 % d.tob.servers.len()],
        broadcast_msg(client, 101, remove.to_payload(0)),
    );
    for r in d.replicas.iter().chain([&joiner]) {
        world.send_at(VTime::ZERO, *r, config_query_msg(client));
    }

    let mut grown = sorted(&members);
    grown.push(joiner);
    grown.sort_unstable();
    let shrunk = sorted(&members[..members.len() - 1]);

    let outcome = world.explore(
        Options {
            max_depth: 14,
            max_states: 20_000,
            ..Options::default()
        },
        |w| {
            let mut winner: Option<Vec<Loc>> = None;
            for (_, _, msg) in &w.observations {
                let Some(rep) = parse_config_reply(msg) else {
                    continue;
                };
                if rep.config.seq != 1 {
                    continue;
                }
                let set = sorted(&rep.config.members);
                if set != grown && set != shrunk {
                    return Err(format!("config 1 is neither command's result: {set:?}"));
                }
                match &winner {
                    Some(prev) if *prev != set => {
                        return Err(format!(
                            "both commands won sequence 0: {prev:?} and {set:?}"
                        ));
                    }
                    Some(_) => {}
                    None => winner = Some(set),
                }
            }
            Ok(())
        },
    );
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    eprintln!(
        "PBR racing commands: explored {} states (truncated: {})",
        outcome.states_visited, outcome.truncated
    );
}

/// An SMR joiner grafted mid-race: its snapshot handoff anchors at the
/// subscription point and replays from there, so its answers — the
/// observable projection of its state — never disagree with the
/// incumbents'. A deposit and a read race through the service; every
/// reply for a given client sequence is identical across replicas
/// including the joiner, and the read admits a serial explanation.
#[test]
fn mck_smr_joiner_state_matches_donors() {
    let mut world = WorldBuilder::new();
    let (client, _rx) = world.port();
    let d = SmrDeployment::build(&mut world, &checker_options());
    let db = DiversityPolicy::Uniform.database(d.replicas.len());
    bank::load(&db, ACCOUNTS).expect("bank loads");
    let joiner = world.add_node(Box::new(SmrReplica::joining_from(db, d.replicas.clone())));
    for s in &d.tob.servers {
        world.send_at(VTime::ZERO, *s, subscribe_msg(joiner));
    }

    let txns = [
        TxnRequest::BankDeposit {
            account: 0,
            amount: 5,
        },
        TxnRequest::BankRead { account: 0 },
    ];
    for (cseq, txn) in txns.iter().enumerate() {
        let env = TxnEnvelope::new(client, cseq as i64, txn.clone());
        world.send_at(
            VTime::ZERO,
            d.tob.servers[cseq % d.tob.servers.len()],
            broadcast_msg(client, cseq as i64, env.to_value()),
        );
    }

    let outcome = world.explore(
        Options {
            max_depth: 16,
            max_states: 20_000,
            ..Options::default()
        },
        |w| {
            let mut answers: BTreeMap<i64, (bool, Vec<SqlValue>)> = BTreeMap::new();
            for (_, _, msg) in &w.observations {
                let Some(reply) = parse_reply(msg) else {
                    continue;
                };
                let this = (reply.committed, reply.results.clone());
                if let Some(prev) = answers.get(&reply.cseq) {
                    if *prev != this {
                        return Err(format!(
                            "replicas disagree on cseq {}: {prev:?} vs {this:?}",
                            reply.cseq
                        ));
                    }
                } else {
                    answers.insert(reply.cseq, this);
                }
                if reply.cseq == 1 && reply.committed {
                    match reply.results.first() {
                        Some(SqlValue::Int(b)) if *b == 1_000 || *b == 1_005 => {}
                        other => return Err(format!("unexplainable read result {other:?}")),
                    }
                }
            }
            Ok(())
        },
    );
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    assert!(
        outcome.states_visited > 100,
        "the interleaving space should be non-trivial: {}",
        outcome.states_visited
    );
    eprintln!(
        "SMR joiner: explored {} states (truncated: {})",
        outcome.states_visited, outcome.truncated
    );
}
