//! Property tests of the causal-order relations.
//!
//! LoE's reasoning rests on happens-before being a strict partial order
//! consistent with the trace structure; these tests check the order's
//! axioms on randomly generated causally consistent traces.

use proptest::prelude::*;
use shadowdb_loe::causal::{causal_past, concurrent, happens_before, immediate_preds};
use shadowdb_loe::{EventId, EventOrder, Loc, VTime};

/// A random causally consistent trace: each event happens at a random
/// location; with probability ~1/2 it is caused by some earlier event.
fn arb_trace() -> impl Strategy<Value = EventOrder<u32>> {
    proptest::collection::vec((0u32..4, any::<bool>(), 0usize..64), 1..40).prop_map(|plan| {
        let mut eo = EventOrder::new();
        let mut ids: Vec<EventId> = Vec::new();
        for (i, (loc, caused, pick)) in plan.into_iter().enumerate() {
            let cause = if caused && !ids.is_empty() {
                Some(ids[pick % ids.len()])
            } else {
                None
            };
            let sender = cause.map(|c| eo.event(c).loc());
            let id = eo.record(
                Loc::new(loc),
                VTime::from_micros(i as u64 + 1),
                i as u32,
                cause,
                sender,
            );
            ids.push(id);
        }
        eo
    })
}

fn all_ids(eo: &EventOrder<u32>) -> Vec<EventId> {
    eo.iter().map(|e| e.id()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Irreflexivity: no event happens before itself.
    #[test]
    fn irreflexive(eo in arb_trace()) {
        for e in all_ids(&eo) {
            prop_assert!(!happens_before(&eo, e, e));
        }
    }

    /// Antisymmetry: a → b and b → a never both hold.
    #[test]
    fn antisymmetric(eo in arb_trace()) {
        let ids = all_ids(&eo);
        for &a in &ids {
            for &b in &ids {
                prop_assert!(!(happens_before(&eo, a, b) && happens_before(&eo, b, a)));
            }
        }
    }

    /// Transitivity: a → b and b → c implies a → c.
    #[test]
    fn transitive(eo in arb_trace()) {
        let ids = all_ids(&eo);
        for &a in &ids {
            for &b in &ids {
                if !happens_before(&eo, a, b) {
                    continue;
                }
                for &c in &ids {
                    if happens_before(&eo, b, c) {
                        prop_assert!(happens_before(&eo, a, c), "{a} -> {b} -> {c}");
                    }
                }
            }
        }
    }

    /// Same-location events are always ordered (processes are sequential);
    /// order direction follows the trace.
    #[test]
    fn local_events_totally_ordered(eo in arb_trace()) {
        let ids = all_ids(&eo);
        for &a in &ids {
            for &b in &ids {
                if a != b && eo.event(a).loc() == eo.event(b).loc() {
                    prop_assert!(!concurrent(&eo, a, b));
                    let (earlier, later) = if a < b { (a, b) } else { (b, a) };
                    prop_assert!(happens_before(&eo, earlier, later));
                }
            }
        }
    }

    /// A cause always happens before its effect.
    #[test]
    fn causes_precede_effects(eo in arb_trace()) {
        for e in all_ids(&eo) {
            if let Some(c) = eo.event(e).cause() {
                prop_assert!(happens_before(&eo, c, e));
            }
        }
    }

    /// `happens_before` agrees with reachability over `causal_past`.
    #[test]
    fn past_and_happens_before_agree(eo in arb_trace()) {
        let ids = all_ids(&eo);
        for &b in &ids {
            let past = causal_past(&eo, b);
            for &a in &ids {
                prop_assert_eq!(past.contains(&a), happens_before(&eo, a, b));
            }
        }
    }

    /// `concurrent` is symmetric and disjoint from the order.
    #[test]
    fn concurrency_is_symmetric(eo in arb_trace()) {
        let ids = all_ids(&eo);
        for &a in &ids {
            for &b in &ids {
                prop_assert_eq!(concurrent(&eo, a, b), concurrent(&eo, b, a));
                if concurrent(&eo, a, b) {
                    prop_assert!(!happens_before(&eo, a, b));
                    prop_assert!(!happens_before(&eo, b, a));
                }
            }
        }
    }

    /// Immediate predecessors are a subset of the causal past and generate
    /// all of it.
    #[test]
    fn immediate_preds_generate_past(eo in arb_trace()) {
        for e in all_ids(&eo) {
            let preds = immediate_preds(&eo, e);
            let past = causal_past(&eo, e);
            for p in &preds {
                prop_assert!(past.contains(p));
            }
            // Everything in the past is reachable through some pred.
            for q in &past {
                prop_assert!(
                    preds.iter().any(|p| p == q || happens_before(&eo, *q, *p)),
                    "{q} in past of {e} but unreachable via {preds:?}"
                );
            }
        }
    }
}
