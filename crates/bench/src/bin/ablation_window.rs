//! Ablation: slot-window pipelining in the broadcast service.
//!
//! The service's Paxos backend (à la *Paxos Made Moderately Complex*)
//! decides many slots concurrently; this harness quantifies what that
//! buys by sweeping the in-flight window (1 = the stop-and-wait baseline:
//! one proposal in flight per server) crossed with the batch bound
//! (1 = batching disabled), at a fixed offered load. Window pipelining
//! and batching attack the same stall from different ends: batching
//! amortizes the per-proposal consensus cost, pipelining overlaps the
//! consensus round trips themselves.
//!
//! Emits a human-readable table plus one JSON line per configuration
//! (`{"window":w,"batch":b,"throughput_per_sec":t,"latency_ms":l}`) for
//! the record in `BENCH_hotpaths.json` (group `pipeline`).

use parking_lot::Mutex;
use shadowdb_bench::{output, scaled};
use shadowdb_eventml::Value;
use shadowdb_loe::{Loc, VTime};
use shadowdb_simnet::{Latency, NetworkConfig, SimBuilder};
use shadowdb_tob::deploy::BackendKind;
use shadowdb_tob::{ClientStats, ExecutionMode, TobClient, TobDeployment, TobOptions};
use std::sync::Arc;
use std::time::Duration;

fn run(window: usize, max_batch: usize, n_clients: u32, msgs_each: u64) -> (f64, f64) {
    // A 2 ms hop keeps the consensus round trip — the thing pipelining
    // overlaps — visible against the CPU cost model.
    let net = NetworkConfig {
        latency: Latency::Jittered {
            base: Duration::from_millis(2),
            jitter: Duration::from_micros(100),
        },
        ..NetworkConfig::lan()
    };
    let mut sim = SimBuilder::new(4).network(net).build();
    let servers: Vec<Loc> = (0..3u32).map(|i| Loc::new(n_clients + i * 4)).collect();
    let mut stats = Vec::new();
    let mut clients = Vec::new();
    for c in 0..n_clients {
        let s = Arc::new(Mutex::new(ClientStats::default()));
        stats.push(s.clone());
        let mut order = servers.clone();
        order.rotate_left((c % 3) as usize);
        clients.push(sim.add_node(Box::new(TobClient::new(
            order,
            Value::Int(c as i64),
            msgs_each,
            s,
        ))));
    }
    let d = TobDeployment::build(
        &mut sim,
        &TobOptions {
            machines: 3,
            backend: BackendKind::Paxos,
            mode: ExecutionMode::Compiled,
            max_batch,
            window: Some(window),
            ..TobOptions::default()
        },
        clients.clone(),
    );
    assert_eq!(d.servers, servers);
    for c in &clients {
        sim.send_at(VTime::ZERO, *c, TobClient::start_msg());
    }
    sim.run_until_quiescent(VTime::from_secs(36_000));
    let mut all: Vec<(VTime, VTime)> = Vec::new();
    for s in &stats {
        let s = s.lock();
        assert_eq!(
            s.completed.len(),
            msgs_each as usize,
            "window {window} batch {max_batch}: every broadcast must deliver"
        );
        let warm = s.completed.len() / 10;
        all.extend(s.completed.iter().skip(warm));
    }
    let first = all.iter().map(|(a, _)| *a).min().expect("deliveries");
    let last = all.iter().map(|(_, b)| *b).max().expect("deliveries");
    let span = last.saturating_since(first).as_secs_f64().max(1e-9);
    let lat = all
        .iter()
        .map(|(a, b)| b.saturating_since(*a).as_secs_f64() * 1e3)
        .sum::<f64>()
        / all.len() as f64;
    (all.len() as f64 / span, lat)
}

fn main() {
    output::banner(
        "Ablation — slot-window pipelining × batching",
        "the concurrent-slot design of Paxos Made Moderately Complex",
    );
    let clients = 24;
    let msgs = scaled(1_000, 10) as u64;
    output::kv("clients", clients);
    output::kv("messages per client", msgs);
    let mut json = Vec::new();
    for &batch in &[1usize, 64] {
        let rows: Vec<(String, String)> = [1usize, 2, 4, 8, 16]
            .iter()
            .map(|&w| {
                let (tput, lat) = run(w, batch, clients, msgs);
                json.push(format!(
                    "{{\"window\":{w},\"batch\":{batch},\"throughput_per_sec\":{tput:.1},\"latency_ms\":{lat:.2}}}"
                ));
                (
                    format!("window {w}"),
                    format!("{tput:>8.1}/s   {lat:>8.2} ms"),
                )
            })
            .collect();
        output::pairs(
            &format!("throughput by window (batch ≤ {batch})"),
            "window",
            "delivered/s, latency",
            &rows,
        );
    }
    println!();
    for line in &json {
        println!("{line}");
    }
    println!();
    println!("with batching disabled the window is the only concurrency, so");
    println!("throughput roughly doubles from window 1 to 4 before the CPU");
    println!("cost model saturates. at batch 64 under this saturating load");
    println!("the trade-off inverts: stop-and-wait lets the queue build full");
    println!("proposals, while a wide window drains it in fragments that each");
    println!("pay a consensus round — pipelining pays off exactly when");
    println!("batching cannot fill proposals (small batches or light load).");
}
