//! Denotational semantics of event classes over concrete traces.
//!
//! A core LoE abstraction is the *event class*: a function that takes events
//! as inputs and outputs some information (a bag of values per event). Base
//! classes recognize messages; combinators build richer classes. This module
//! gives those combinators their meaning as pure functions over an
//! [`EventOrder`] — no process state, everything recomputed from history.
//!
//! The executable side (the GPM processes of `shadowdb-eventml`) must agree
//! with these semantics; that agreement is this repository's analogue of the
//! paper's automatic proof that generated programs comply with their LoE
//! specifications.

use crate::event::EventOrder;
use crate::ids::{EventId, Loc};

/// A function from events (within a trace) to bags of values.
pub trait EventClass<M> {
    /// The type of information the class produces.
    type Out;

    /// The bag of values this class produces at event `e`.
    fn observe(&self, eo: &EventOrder<M>, e: EventId) -> Vec<Self::Out>;
}

/// A base class: recognizes events by pattern-matching their message and
/// extracts content (the `msg'base` of an EventML specification).
#[derive(Clone, Debug)]
pub struct Base<F> {
    recognize: F,
}

impl<F> Base<F> {
    /// Creates a base class from a recognizer function.
    pub fn new(recognize: F) -> Self {
        Base { recognize }
    }
}

impl<M, O, F> EventClass<M> for Base<F>
where
    F: Fn(&M) -> Option<O>,
{
    type Out = O;
    fn observe(&self, eo: &EventOrder<M>, e: EventId) -> Vec<O> {
        (self.recognize)(eo.event(e).msg()).into_iter().collect()
    }
}

/// A state-machine class (EventML's `State` keyword).
///
/// The class folds an update function over the inputs produced by an inner
/// class at the same location. At an event where the inner class produces,
/// it outputs the *updated* state — matching the paper's ILF
/// characterization (Fig. 5), where `ClockVal@e` already incorporates the
/// message received at `e`.
#[derive(Clone, Debug)]
pub struct StateClass<C, S, U> {
    inner: C,
    init: S,
    update: U,
}

impl<C, S, U> StateClass<C, S, U> {
    /// Creates a state class with initial state `init` over inputs from
    /// `inner`, applying `update(loc, input, state) -> state`.
    pub fn new(init: S, update: U, inner: C) -> Self {
        StateClass {
            inner,
            init,
            update,
        }
    }

    /// The single-valued function of this class (the `ClockVal` analogue):
    /// the state at `loc` after processing every recognized event up to and
    /// including `e`.
    pub fn value_at<M, In>(&self, eo: &EventOrder<M>, e: EventId) -> S
    where
        C: EventClass<M, Out = In>,
        S: Clone,
        U: Fn(Loc, &In, &S) -> S,
    {
        let loc = eo.event(e).loc();
        let mut state = self.init.clone();
        for ev in eo.at(loc) {
            if ev.id() > e {
                break;
            }
            for input in self.inner.observe(eo, ev.id()) {
                state = (self.update)(loc, &input, &state);
            }
        }
        state
    }
}

impl<M, C, In, S, U> EventClass<M> for StateClass<C, S, U>
where
    C: EventClass<M, Out = In>,
    S: Clone,
    U: Fn(Loc, &In, &S) -> S,
{
    type Out = S;
    fn observe(&self, eo: &EventOrder<M>, e: EventId) -> Vec<S> {
        if self.inner.observe(eo, e).is_empty() {
            Vec::new()
        } else {
            vec![self.value_at(eo, e)]
        }
    }
}

/// Simultaneous composition of two classes (EventML's `o` combinator, binary
/// form): produces `f(loc, a, b)` at events where both components produce.
#[derive(Clone, Debug)]
pub struct Compose2<A, B, F> {
    a: A,
    b: B,
    f: F,
}

impl<A, B, F> Compose2<A, B, F> {
    /// Creates the composition `f o (a, b)`.
    pub fn new(f: F, a: A, b: B) -> Self {
        Compose2 { a, b, f }
    }
}

impl<M, A, B, F, O> EventClass<M> for Compose2<A, B, F>
where
    A: EventClass<M>,
    B: EventClass<M>,
    F: Fn(Loc, &A::Out, &B::Out) -> O,
{
    type Out = O;
    fn observe(&self, eo: &EventOrder<M>, e: EventId) -> Vec<O> {
        let loc = eo.event(e).loc();
        let xs = self.a.observe(eo, e);
        let ys = self.b.observe(eo, e);
        let mut out = Vec::new();
        for x in &xs {
            for y in &ys {
                out.push((self.f)(loc, x, y));
            }
        }
        out
    }
}

/// Parallel composition (EventML's `||`): the bag union of both components'
/// outputs, handled in parallel.
#[derive(Clone, Debug)]
pub struct Parallel<A, B> {
    a: A,
    b: B,
}

impl<A, B> Parallel<A, B> {
    /// Creates `a || b`.
    pub fn new(a: A, b: B) -> Self {
        Parallel { a, b }
    }
}

impl<M, A, B, O> EventClass<M> for Parallel<A, B>
where
    A: EventClass<M, Out = O>,
    B: EventClass<M, Out = O>,
{
    type Out = O;
    fn observe(&self, eo: &EventOrder<M>, e: EventId) -> Vec<O> {
        let mut out = self.a.observe(eo, e);
        out.extend(self.b.observe(eo, e));
        out
    }
}

/// The `Once` combinator: only the first (local) output of the inner class
/// is produced; later outputs at the same location are suppressed.
#[derive(Clone, Debug)]
pub struct Once<C> {
    inner: C,
}

impl<C> Once<C> {
    /// Wraps `inner` so it produces at most once per location.
    pub fn new(inner: C) -> Self {
        Once { inner }
    }
}

impl<M, C> EventClass<M> for Once<C>
where
    C: EventClass<M>,
{
    type Out = C::Out;
    fn observe(&self, eo: &EventOrder<M>, e: EventId) -> Vec<C::Out> {
        let loc = eo.event(e).loc();
        for prior in eo.at(loc) {
            if prior.id() >= e {
                break;
            }
            if !self.inner.observe(eo, prior.id()).is_empty() {
                return Vec::new();
            }
        }
        let mut out = self.inner.observe(eo, e);
        out.truncate(1);
        out
    }
}

/// Maps a function over the outputs of a class, optionally filtering.
#[derive(Clone, Debug)]
pub struct MapClass<C, F> {
    inner: C,
    f: F,
}

impl<C, F> MapClass<C, F> {
    /// Creates a class producing `f(loc, v)` for each inner output `v`,
    /// dropping `None`s.
    pub fn new(f: F, inner: C) -> Self {
        MapClass { inner, f }
    }
}

impl<M, C, F, O> EventClass<M> for MapClass<C, F>
where
    C: EventClass<M>,
    F: Fn(Loc, &C::Out) -> Option<O>,
{
    type Out = O;
    fn observe(&self, eo: &EventOrder<M>, e: EventId) -> Vec<O> {
        let loc = eo.event(e).loc();
        self.inner
            .observe(eo, e)
            .iter()
            .filter_map(|v| (self.f)(loc, v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VTime;

    /// A tiny typed message: (value, timestamp), as in the CLK example.
    type ClkMsg = (&'static str, i64);

    fn l(i: u32) -> Loc {
        Loc::new(i)
    }
    fn t(us: u64) -> VTime {
        VTime::from_micros(us)
    }

    fn msg_base() -> Base<impl Fn(&ClkMsg) -> Option<ClkMsg>> {
        Base::new(|m: &ClkMsg| Some(*m))
    }

    /// The Clock class of the paper: `State(0, upd_clock, msg'base)` where
    /// `upd_clock` takes `imax(timestamp, clock) + 1`.
    // The nested generics cannot be aliased: `impl Trait` is not allowed in
    // type aliases on stable.
    #[allow(clippy::type_complexity)]
    fn clock(
    ) -> StateClass<Base<impl Fn(&ClkMsg) -> Option<ClkMsg>>, i64, impl Fn(Loc, &ClkMsg, &i64) -> i64>
    {
        StateClass::new(
            0i64,
            |_l, (_v, ts): &ClkMsg, clk: &i64| (*ts).max(*clk) + 1,
            msg_base(),
        )
    }

    #[test]
    fn base_recognizes_all() {
        let mut eo = EventOrder::new();
        let e = eo.record(l(0), t(1), ("x", 7), None, None);
        assert_eq!(msg_base().observe(&eo, e), vec![("x", 7)]);
    }

    #[test]
    fn state_class_folds_history() {
        let mut eo = EventOrder::new();
        let e1 = eo.record(l(0), t(1), ("a", 0), None, None);
        let e2 = eo.record(l(0), t(2), ("b", 10), None, None);
        let e3 = eo.record(l(1), t(3), ("c", 2), None, None);
        let c = clock();
        assert_eq!(c.observe(&eo, e1), vec![1]); // max(0,0)+1
        assert_eq!(c.observe(&eo, e2), vec![11]); // max(10,1)+1
        assert_eq!(c.observe(&eo, e3), vec![3]); // independent location
        assert_eq!(c.value_at(&eo, e2), 11);
    }

    #[test]
    fn compose_pairs_outputs() {
        let mut eo = EventOrder::new();
        let e = eo.record(l(0), t(1), ("v", 4), None, None);
        let handler = Compose2::new(
            |_loc, (v, _ts): &ClkMsg, clk: &i64| (*v, *clk),
            msg_base(),
            clock(),
        );
        assert_eq!(handler.observe(&eo, e), vec![("v", 5)]);
    }

    #[test]
    fn parallel_unions() {
        let mut eo = EventOrder::new();
        let e = eo.record(l(0), t(1), ("v", 4), None, None);
        let left = MapClass::new(|_l, m: &ClkMsg| Some(m.1), msg_base());
        let right = MapClass::new(|_l, m: &ClkMsg| Some(m.1 * 10), msg_base());
        let both = Parallel::new(left, right);
        assert_eq!(both.observe(&eo, e), vec![4, 40]);
    }

    #[test]
    fn once_suppresses_later() {
        let mut eo = EventOrder::new();
        let e1 = eo.record(l(0), t(1), ("a", 1), None, None);
        let e2 = eo.record(l(0), t(2), ("b", 2), None, None);
        let e3 = eo.record(l(1), t(3), ("c", 3), None, None);
        let once = Once::new(msg_base());
        assert_eq!(once.observe(&eo, e1).len(), 1);
        assert!(once.observe(&eo, e2).is_empty());
        assert_eq!(once.observe(&eo, e3).len(), 1); // per-location
    }

    #[test]
    fn map_filters() {
        let mut eo = EventOrder::new();
        let e1 = eo.record(l(0), t(1), ("a", 1), None, None);
        let e2 = eo.record(l(0), t(2), ("b", -1), None, None);
        let pos = MapClass::new(
            |_l, m: &ClkMsg| if m.1 > 0 { Some(m.1) } else { None },
            msg_base(),
        );
        assert_eq!(pos.observe(&eo, e1), vec![1]);
        assert!(pos.observe(&eo, e2).is_empty());
    }
}
