//! Logic of Events (LoE): the specification side of the EventML methodology.
//!
//! The paper reasons about distributed programs using the *Logic of Events*,
//! where events are abstract points in space/time: the "space" aspect is the
//! location at which an event occurs, and the "time" aspect is a well-founded
//! causal order. An *event class* is a function from events (in the context
//! of an event ordering) to bags of values.
//!
//! This crate implements that model operationally:
//!
//! * [`Loc`], [`EventId`], [`VTime`] — identifiers shared by the whole stack;
//! * [`EventOrder`] — a concrete event ordering (a trace) recording, for each
//!   event, its location, time, message, and the event that caused it;
//! * [`causal`] — Lamport's happens-before and LoE's causal-order relations;
//! * [`classes`] — denotational semantics of the EventML combinators as
//!   functions over traces;
//! * [`props`] — reusable property checkers (progress, clock condition).
//!
//! The denotational semantics in [`classes`] is deliberately *independent* of
//! the executable process implementation in the `shadowdb-eventml` crate.
//! Where the paper proves in Nuprl that the generated GPM program implements
//! the LoE specification, we check trace-by-trace that the two produce the
//! same observations (see the `gpm_complies_with_loe` tests in
//! `shadowdb-eventml`).
//!
//! # Example
//!
//! ```
//! use shadowdb_loe::{EventOrder, Loc, VTime};
//!
//! let a = Loc::new(0);
//! let b = Loc::new(1);
//! let mut eo: EventOrder<&'static str> = EventOrder::new();
//! let e1 = eo.record(a, VTime::from_micros(10), "ping", None, None);
//! let e2 = eo.record(b, VTime::from_micros(25), "pong", Some(e1), Some(a));
//! assert!(eo.happens_before(e1, e2));
//! assert!(!eo.happens_before(e2, e1));
//! ```

pub mod causal;
pub mod classes;
pub mod event;
pub mod ids;
pub mod props;

pub use event::{Event, EventOrder};
pub use ids::{EventId, Loc, VTime};
