//! The dynamic value universe of EventML programs.
//!
//! Nuprl's programming language is an applied, lazy, untyped λ-calculus; the
//! data flowing through generated GPM programs is untyped. [`Value`] plays
//! that role here: every message body, every state-machine state, and every
//! combinator output is a `Value`. Typed protocol layers (consensus, the
//! broadcast service, ShadowDB) encode to and decode from this universe at
//! their boundary.
//!
//! Values are cheap to clone: compound values share their payload through
//! [`std::sync::Arc`].

use shadowdb_loe::Loc;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// A dynamically typed value.
///
/// Values are totally ordered (derived lexicographic order on the variant
/// and contents); protocols rely on this to pick canonical representatives
/// ("smallest most frequent value") and to compare ballots.
///
/// # Example
///
/// ```
/// use shadowdb_eventml::Value;
/// let v = Value::pair(Value::from(3), Value::from("ts"));
/// assert_eq!(v.fst().unwrap().as_int(), Some(3));
/// assert_eq!(v.snd().unwrap().as_str(), Some("ts"));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// The unit value.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// A location (process identity).
    Loc(Loc),
    /// An immutable string.
    Str(Arc<str>),
    /// Raw bytes (opaque application payloads).
    Bytes(bytes::Bytes),
    /// An ordered pair.
    Pair(Arc<(Value, Value)>),
    /// A list.
    List(Arc<Vec<Value>>),
}

impl Value {
    /// Builds a pair.
    pub fn pair(a: Value, b: Value) -> Value {
        Value::Pair(Arc::new((a, b)))
    }

    /// Builds a list.
    pub fn list<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::List(Arc::new(items.into_iter().collect()))
    }

    /// Builds a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// The integer content, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean content, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The location content, if this is a `Loc`.
    pub fn as_loc(&self) -> Option<Loc> {
        match self {
            Value::Loc(l) => Some(*l),
            _ => None,
        }
    }

    /// The string content, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The byte content, if this is `Bytes`.
    pub fn as_bytes(&self) -> Option<&bytes::Bytes> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// The first component, if this is a `Pair`.
    pub fn fst(&self) -> Option<&Value> {
        match self {
            Value::Pair(p) => Some(&p.0),
            _ => None,
        }
    }

    /// The second component, if this is a `Pair`.
    pub fn snd(&self) -> Option<&Value> {
        match self {
            Value::Pair(p) => Some(&p.1),
            _ => None,
        }
    }

    /// The elements, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Like [`Value::as_int`] but panicking: for protocol code whose message
    /// shapes are established by construction.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `Int`.
    pub fn int(&self) -> i64 {
        self.as_int().unwrap_or_else(|| panic!("expected Int, got {self:?}"))
    }

    /// Like [`Value::as_loc`] but panicking.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `Loc`.
    pub fn loc(&self) -> Loc {
        self.as_loc().unwrap_or_else(|| panic!("expected Loc, got {self:?}"))
    }

    /// Destructures a pair, panicking otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `Pair`.
    pub fn unpair(&self) -> (&Value, &Value) {
        match self {
            Value::Pair(p) => (&p.0, &p.1),
            _ => panic!("expected Pair, got {self:?}"),
        }
    }

    /// Destructures a list, panicking otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `List`.
    pub fn elems(&self) -> &[Value] {
        self.as_list().unwrap_or_else(|| panic!("expected List, got {self:?}"))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Loc(l) => write!(f, "{l}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "bytes[{}]", b.len()),
            Value::Pair(p) => write!(f, "<{:?}, {:?}>", p.0, p.1),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{v:?}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Unit
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<Loc> for Value {
    fn from(l: Loc) -> Value {
        Value::Loc(l)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::str(s)
    }
}

impl From<bytes::Bytes> for Value {
    fn from(b: bytes::Bytes) -> Value {
        Value::Bytes(b)
    }
}

impl FromIterator<Value> for Value {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Value {
        Value::list(iter)
    }
}

/// A message header: the tag that base classes pattern-match on.
///
/// Headers intern their name behind an `Arc`, so cloning is cheap.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Header(Arc<str>);

impl Header {
    /// Creates a header with the given name.
    pub fn new(name: &str) -> Header {
        Header(Arc::from(name))
    }

    /// The header's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Header {
    fn from(name: &str) -> Header {
        Header::new(name)
    }
}

impl fmt::Display for Header {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "``{}``", self.0)
    }
}

impl fmt::Debug for Header {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A message: a header plus an untyped body.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Msg {
    /// The header recognized by base classes.
    pub header: Header,
    /// The payload.
    pub body: Value,
}

impl Msg {
    /// Creates a message (the `make-Msg` of the paper's ILF).
    pub fn new(header: impl Into<Header>, body: Value) -> Msg {
        Msg { header: header.into(), body }
    }
}

/// A send instruction: the output of a GPM program.
///
/// `msg'send recipient content` in EventML builds one of these; the optional
/// delay `d` (Fig. 4's "period of time the process must wait before sending")
/// is what timers are built from.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SendInstr {
    /// The destination process.
    pub dest: Loc,
    /// How long to wait before the message leaves the sender.
    pub delay: Duration,
    /// The message to send.
    pub msg: Msg,
}

impl SendInstr {
    /// An immediate send.
    pub fn now(dest: Loc, msg: Msg) -> SendInstr {
        SendInstr { dest, delay: Duration::ZERO, msg }
    }

    /// A delayed send (the basis of timers: a delayed send to oneself).
    pub fn after(delay: Duration, dest: Loc, msg: Msg) -> SendInstr {
        SendInstr { dest, delay, msg }
    }
}

/// Encodes a send instruction as a [`Value`] so combinator programs can emit
/// it: `<"#send", <<dest, delay_us>, <header, body>>>`.
pub fn send_value(instr: &SendInstr) -> Value {
    Value::pair(
        Value::str("#send"),
        Value::pair(
            Value::pair(Value::Loc(instr.dest), Value::Int(instr.delay.as_micros() as i64)),
            Value::pair(Value::str(instr.msg.header.name()), instr.msg.body.clone()),
        ),
    )
}

/// Decodes a send instruction from a [`Value`], if it is one.
pub fn as_send_value(v: &Value) -> Option<SendInstr> {
    let (tag, rest) = v.fst().zip(v.snd())?;
    if tag.as_str()? != "#send" {
        return None;
    }
    let (addr, msg) = rest.fst().zip(rest.snd())?;
    let dest = addr.fst()?.as_loc()?;
    let delay = Duration::from_micros(addr.snd()?.as_int()?.max(0) as u64);
    let header = Header::new(msg.fst()?.as_str()?);
    let body = msg.snd()?.clone();
    Some(SendInstr { dest, delay, msg: Msg { header, body } })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        let v = Value::pair(Value::from(1), Value::list([Value::from(true), Value::Unit]));
        assert_eq!(v.fst().unwrap().int(), 1);
        assert_eq!(v.snd().unwrap().elems().len(), 2);
        assert_eq!(v.snd().unwrap().elems()[0].as_bool(), Some(true));
        assert!(v.as_int().is_none());
    }

    #[test]
    fn values_hash_and_compare() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::pair(Value::from(1), Value::from("a")));
        assert!(set.contains(&Value::pair(Value::from(1), Value::from("a"))));
        assert!(!set.contains(&Value::pair(Value::from(2), Value::from("a"))));
    }

    #[test]
    fn debug_formatting() {
        let v = Value::list([Value::from(1), Value::pair(Value::Unit, Value::from("x"))]);
        assert_eq!(format!("{v:?}"), "[1; <(), \"x\">]");
    }

    #[test]
    fn send_value_roundtrip() {
        let instr = SendInstr::after(
            Duration::from_micros(250),
            Loc::new(3),
            Msg::new("vote", Value::from(42)),
        );
        let v = send_value(&instr);
        assert_eq!(as_send_value(&v), Some(instr));
    }

    #[test]
    fn non_send_values_rejected() {
        assert_eq!(as_send_value(&Value::from(3)), None);
        assert_eq!(as_send_value(&Value::pair(Value::str("other"), Value::Unit)), None);
    }

    #[test]
    fn header_equality_by_name() {
        assert_eq!(Header::new("msg"), Header::from("msg"));
        assert_ne!(Header::new("msg"), Header::new("msG"));
    }

    #[test]
    fn from_iterator_collects() {
        let v: Value = (0..3).map(Value::from).collect();
        assert_eq!(v.elems().len(), 3);
    }
}
