//! Bounded model checking of GPM protocols.
//!
//! The paper proves safety properties of its protocols semi-automatically in
//! Nuprl. This repository cannot embed a theorem prover; instead, this crate
//! systematically explores *every* schedule of a small protocol instance —
//! all message-delivery interleavings, optionally all message losses, and
//! all crash placements within a budget — checking a safety invariant in
//! every reachable state. Where the paper reports "we found the bug when we
//! were unable to prove the safety properties", here the explorer hands back
//! the violating schedule as a counterexample.
//!
//! Timers need no special treatment: a delayed self-send is just an
//! in-flight message, and exploring all delivery orders covers all timings.
//!
//! # Example
//!
//! ```
//! use shadowdb_eventml::{Ctx, FnProcess, Msg, Process, SendInstr, Value};
//! use shadowdb_loe::Loc;
//! use shadowdb_mck::{explore, Options, Spec, World};
//!
//! // Two nodes that each report to an observer; in every schedule the
//! // observer hears at most two messages.
//! let observer = Loc::new(2);
//! let reporter = || {
//!     Box::new(FnProcess::new((), move |_s, _c: &Ctx, m: &Msg| {
//!         vec![SendInstr::now(Loc::new(2), m.clone())]
//!     })) as Box<dyn Process>
//! };
//! let spec = Spec {
//!     procs: vec![reporter(), reporter()],
//!     env: vec![observer],
//!     init_msgs: vec![(Loc::new(0), Msg::new("go", Value::Unit)),
//!                     (Loc::new(1), Msg::new("go", Value::Unit))],
//! };
//! let outcome = explore(spec, Options::default(), |w: &World| {
//!     if w.observations.len() <= 2 { Ok(()) } else { Err("too many".into()) }
//! });
//! assert!(outcome.violation.is_none());
//! ```

use shadowdb_eventml::{Ctx, FxHasher, Msg, Process};
use shadowdb_loe::{Loc, VTime};
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// The initial configuration of a checking run.
pub struct Spec {
    /// One process per location `0..n`.
    pub procs: Vec<Box<dyn Process>>,
    /// Environment locations: messages sent to them become *observations*
    /// rather than deliverable messages (they model clients/learners).
    pub env: Vec<Loc>,
    /// Initially in-flight messages (external inputs).
    pub init_msgs: Vec<(Loc, Msg)>,
}

/// Exploration bounds and fault budgets.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Maximum schedule length (delivery + fault actions).
    pub max_depth: usize,
    /// Cap on distinct states visited; exceeded ⇒ exploration is truncated
    /// (reported in the outcome, never silent).
    pub max_states: usize,
    /// How many crash actions the adversary may take.
    pub crash_budget: usize,
    /// Whether the adversary may drop in-flight messages (lossy links).
    pub loss_budget: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_depth: 24,
            max_states: 200_000,
            crash_budget: 0,
            loss_budget: 0,
        }
    }
}

/// One step of a schedule (for counterexample reporting).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Choice {
    /// Deliver the in-flight message at this queue position.
    Deliver {
        /// Destination of the delivered message.
        dest: Loc,
        /// Header of the delivered message.
        header: String,
    },
    /// Crash this node.
    Crash(Loc),
    /// Drop the in-flight message at this queue position.
    Drop {
        /// Destination of the dropped message.
        dest: Loc,
        /// Header of the dropped message.
        header: String,
    },
}

/// The world state the invariant can inspect.
pub struct World {
    /// Messages delivered to environment locations, in emission order:
    /// `(env_loc, sender, msg)`.
    pub observations: Vec<(Loc, Loc, Msg)>,
    /// Which protocol nodes are crashed.
    pub crashed: Vec<bool>,
    /// Depth of the current schedule.
    pub depth: usize,
}

/// A violated invariant together with the schedule that reaches it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The invariant's error message.
    pub message: String,
    /// The schedule (root to violation).
    pub schedule: Vec<Choice>,
}

/// The result of an exploration.
#[derive(Debug, Default)]
pub struct Outcome {
    /// A counterexample, if the invariant can be violated within bounds.
    pub violation: Option<Violation>,
    /// Distinct states visited.
    pub states_visited: usize,
    /// Whether bounds truncated the search (if true and no violation, the
    /// result is "no violation found within bounds", not a proof).
    pub truncated: bool,
    /// The maximum schedule depth reached.
    pub max_depth_reached: usize,
}

struct Node {
    procs: Vec<Box<dyn Process>>,
    alive: Vec<bool>,
    inflight: Vec<(Loc, Loc, Msg)>, // (dest, src, msg)
    observations: Vec<(Loc, Loc, Msg)>,
    crash_budget: usize,
    loss_budget: usize,
}

impl Node {
    fn fingerprint(&self) -> u64 {
        // FxHasher: stable across runs and processes (DefaultHasher's
        // SipHash keys are randomized per process), and much cheaper —
        // every explored state is hashed.
        let mut h = FxHasher::new();
        for p in &self.procs {
            p.digest(&mut h);
        }
        self.alive.hash(&mut h);
        // In-flight messages as a multiset: hash a sorted projection.
        let mut keys: Vec<u64> = self
            .inflight
            .iter()
            .map(|(d, s, m)| {
                let mut mh = FxHasher::new();
                (d, s, m).hash(&mut mh);
                mh.finish()
            })
            .collect();
        keys.sort_unstable();
        keys.hash(&mut h);
        self.observations.hash(&mut h);
        (self.crash_budget, self.loss_budget).hash(&mut h);
        h.finish()
    }

    fn clone_node(&self) -> Node {
        Node {
            procs: self.procs.iter().map(|p| p.clone_box()).collect(),
            alive: self.alive.clone(),
            inflight: self.inflight.clone(),
            observations: self.observations.clone(),
            crash_budget: self.crash_budget,
            loss_budget: self.loss_budget,
        }
    }
}

/// Explores all schedules of `spec` within `options`, checking `invariant`
/// in every reachable state.
pub fn explore(
    spec: Spec,
    options: Options,
    invariant: impl Fn(&World) -> Result<(), String>,
) -> Outcome {
    let env: HashSet<Loc> = spec.env.iter().copied().collect();
    let n = spec.procs.len();
    let mut root = Node {
        procs: spec.procs,
        alive: vec![true; n],
        inflight: Vec::new(),
        observations: Vec::new(),
        crash_budget: options.crash_budget,
        loss_budget: options.loss_budget,
    };
    for (dest, msg) in spec.init_msgs {
        root.inflight.push((dest, dest, msg)); // external: src = dest
    }
    let mut outcome = Outcome::default();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut schedule: Vec<Choice> = Vec::new();
    dfs(
        &root,
        &env,
        &options,
        &invariant,
        &mut visited,
        &mut schedule,
        &mut outcome,
    );
    outcome
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    node: &Node,
    env: &HashSet<Loc>,
    options: &Options,
    invariant: &impl Fn(&World) -> Result<(), String>,
    visited: &mut HashSet<u64>,
    schedule: &mut Vec<Choice>,
    outcome: &mut Outcome,
) {
    if outcome.violation.is_some() {
        return;
    }
    let fp = node.fingerprint();
    if !visited.insert(fp) {
        return;
    }
    outcome.states_visited = visited.len();
    outcome.max_depth_reached = outcome.max_depth_reached.max(schedule.len());
    if visited.len() > options.max_states {
        outcome.truncated = true;
        return;
    }
    let world = World {
        observations: node.observations.clone(),
        crashed: node.alive.iter().map(|a| !a).collect(),
        depth: schedule.len(),
    };
    if let Err(message) = invariant(&world) {
        outcome.violation = Some(Violation {
            message,
            schedule: schedule.clone(),
        });
        return;
    }
    if schedule.len() >= options.max_depth {
        if !node.inflight.is_empty() {
            outcome.truncated = true;
        }
        return;
    }

    // Choice 1: deliver any in-flight message.
    let mut outputs = Vec::new();
    for i in 0..node.inflight.len() {
        let mut next = node.clone_node();
        // Take the message out of the fork's own queue: no extra clone of
        // the (potentially large) payload per branch.
        let (dest, _src, msg) = next.inflight.remove(i);
        let idx = dest.index() as usize;
        if idx < next.procs.len() && next.alive[idx] {
            let ctx = Ctx::new(dest, VTime::from_micros(schedule.len() as u64));
            outputs.clear();
            next.procs[idx].step_into(&ctx, &msg, &mut outputs);
            for instr in outputs.drain(..) {
                if env.contains(&instr.dest) {
                    next.observations.push((instr.dest, dest, instr.msg));
                } else {
                    next.inflight.push((instr.dest, dest, instr.msg));
                }
            }
        }
        // Delivery to a crashed or unknown node silently consumes the message.
        schedule.push(Choice::Deliver {
            dest,
            header: msg.header.name().to_owned(),
        });
        dfs(&next, env, options, invariant, visited, schedule, outcome);
        schedule.pop();
        if outcome.violation.is_some() {
            return;
        }
    }

    // Choice 2: crash any alive node (within budget).
    if node.crash_budget > 0 {
        for idx in 0..node.procs.len() {
            if !node.alive[idx] {
                continue;
            }
            let mut next = node.clone_node();
            next.alive[idx] = false;
            next.crash_budget -= 1;
            schedule.push(Choice::Crash(Loc::new(idx as u32)));
            dfs(&next, env, options, invariant, visited, schedule, outcome);
            schedule.pop();
            if outcome.violation.is_some() {
                return;
            }
        }
    }

    // Choice 3: drop any in-flight message (within budget).
    if node.loss_budget > 0 {
        for i in 0..node.inflight.len() {
            let mut next = node.clone_node();
            let (dest, _src, msg) = next.inflight.remove(i);
            next.loss_budget -= 1;
            schedule.push(Choice::Drop {
                dest,
                header: msg.header.name().to_owned(),
            });
            dfs(&next, env, options, invariant, visited, schedule, outcome);
            schedule.pop();
            if outcome.violation.is_some() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadowdb_eventml::{FnProcess, SendInstr, Value};

    /// Node 0 and node 1 both tell the observer (loc 2) their own id; the
    /// observer must never hear two different ids… which is false, so the
    /// checker must find a counterexample.
    #[test]
    fn finds_violation_with_schedule() {
        let teller = |id: i64| {
            Box::new(FnProcess::new((), move |_s, _c: &Ctx, m: &Msg| {
                if m.header.name() == "go" {
                    vec![SendInstr::now(Loc::new(2), Msg::new("id", Value::Int(id)))]
                } else {
                    vec![]
                }
            })) as Box<dyn Process>
        };
        let spec = Spec {
            procs: vec![teller(0), teller(1)],
            env: vec![Loc::new(2)],
            init_msgs: vec![
                (Loc::new(0), Msg::new("go", Value::Unit)),
                (Loc::new(1), Msg::new("go", Value::Unit)),
            ],
        };
        let outcome = explore(spec, Options::default(), |w| {
            let ids: HashSet<i64> = w
                .observations
                .iter()
                .filter_map(|(_, _, m)| m.body.as_int())
                .collect();
            if ids.len() <= 1 {
                Ok(())
            } else {
                Err(format!("observer heard {} different ids", ids.len()))
            }
        });
        let v = outcome.violation.as_ref().expect("must find the violation");
        assert_eq!(v.schedule.len(), 2); // both deliveries
    }

    /// A ping-pong pair under a crash budget: the total number of pongs the
    /// observer hears never exceeds the number of pings delivered.
    #[test]
    fn crash_budget_explored_without_violation() {
        let ponger = Box::new(FnProcess::new(0u32, move |n, _c: &Ctx, m: &Msg| {
            if m.header.name() == "ping" {
                *n += 1;
                vec![SendInstr::now(
                    Loc::new(1),
                    Msg::new("pong", Value::Int(*n as i64)),
                )]
            } else {
                vec![]
            }
        })) as Box<dyn Process>;
        let spec = Spec {
            procs: vec![ponger],
            env: vec![Loc::new(1)],
            init_msgs: vec![
                (Loc::new(0), Msg::new("ping", Value::Unit)),
                (Loc::new(0), Msg::new("ping", Value::Unit)),
            ],
        };
        let outcome = explore(
            spec,
            Options {
                crash_budget: 1,
                ..Options::default()
            },
            |w| {
                if w.observations.len() <= 2 {
                    Ok(())
                } else {
                    Err("more pongs than pings".into())
                }
            },
        );
        assert!(outcome.violation.is_none());
        assert!(!outcome.truncated);
        // Crash placements multiply the state space: > the 4 states of the
        // crash-free run.
        assert!(
            outcome.states_visited > 4,
            "visited {}",
            outcome.states_visited
        );
    }

    /// Loss budget lets the adversary eat messages; an invariant demanding a
    /// reply for every request must then fail only if stated as a *safety*
    /// property incorrectly. Here we state a true safety property and check
    /// no violation is reported even with loss.
    #[test]
    fn loss_budget_preserves_safety_invariants() {
        let echo = Box::new(FnProcess::new((), move |_s, _c: &Ctx, m: &Msg| {
            if m.header.name() == "req" {
                vec![SendInstr::now(
                    Loc::new(1),
                    Msg::new("resp", m.body.clone()),
                )]
            } else {
                vec![]
            }
        })) as Box<dyn Process>;
        let spec = Spec {
            procs: vec![echo],
            env: vec![Loc::new(1)],
            init_msgs: vec![
                (Loc::new(0), Msg::new("req", Value::Int(1))),
                (Loc::new(0), Msg::new("req", Value::Int(2))),
            ],
        };
        let outcome = explore(
            spec,
            Options {
                loss_budget: 2,
                ..Options::default()
            },
            |w| {
                // Safety: responses only ever carry values that were requested.
                for (_, _, m) in &w.observations {
                    let v = m.body.as_int().unwrap_or(-1);
                    if v != 1 && v != 2 {
                        return Err(format!("spurious response {v}"));
                    }
                }
                Ok(())
            },
        );
        assert!(outcome.violation.is_none());
        assert!(!outcome.truncated);
    }

    /// Visited-state deduplication: two deliveries that commute lead to the
    /// same state, explored once.
    #[test]
    fn dedup_collapses_commuting_schedules() {
        let sink = || {
            Box::new(FnProcess::new(0i64, |n, _c: &Ctx, _m: &Msg| {
                *n += 1;
                vec![]
            })) as Box<dyn Process>
        };
        let spec = Spec {
            procs: vec![sink(), sink()],
            env: vec![],
            init_msgs: vec![
                (Loc::new(0), Msg::new("a", Value::Unit)),
                (Loc::new(1), Msg::new("b", Value::Unit)),
            ],
        };
        let outcome = explore(spec, Options::default(), |_| Ok(()));
        // States: init, a-done, b-done, both-done = 4 (not 1+2+2 paths = 5).
        assert_eq!(outcome.states_visited, 4);
    }

    #[test]
    fn depth_bound_truncates_and_reports() {
        // An infinite *counting* ping-pong: every hop changes state, so the
        // space is unbounded and the explorer must hit max_depth and say so.
        let bouncer = |other: u32| {
            Box::new(FnProcess::new(0i64, move |hops, _c: &Ctx, m: &Msg| {
                *hops += 1;
                vec![SendInstr::now(Loc::new(other), m.clone())]
            })) as Box<dyn Process>
        };
        let spec = Spec {
            procs: vec![bouncer(1), bouncer(0)],
            env: vec![],
            init_msgs: vec![(Loc::new(0), Msg::new("ball", Value::Unit))],
        };
        let outcome = explore(
            spec,
            Options {
                max_depth: 6,
                ..Options::default()
            },
            |_| Ok(()),
        );
        assert!(outcome.violation.is_none());
        assert!(outcome.truncated);
        assert_eq!(outcome.max_depth_reached, 6);
    }

    /// A stateless ping-pong closes a 2-state cycle: the explorer proves the
    /// (trivial) invariant over the *entire* state space without truncation.
    #[test]
    fn cyclic_state_space_fully_explored() {
        let bouncer = |other: u32| {
            Box::new(FnProcess::new((), move |_s, _c: &Ctx, m: &Msg| {
                vec![SendInstr::now(Loc::new(other), m.clone())]
            })) as Box<dyn Process>
        };
        let spec = Spec {
            procs: vec![bouncer(1), bouncer(0)],
            env: vec![],
            init_msgs: vec![(Loc::new(0), Msg::new("ball", Value::Unit))],
        };
        let outcome = explore(
            spec,
            Options {
                max_depth: 50,
                ..Options::default()
            },
            |_| Ok(()),
        );
        assert!(outcome.violation.is_none());
        assert!(!outcome.truncated);
        // init (external ball), ball at node1, ball back at node0; the third
        // state differs from the first only in the recorded sender, after
        // which the cycle closes.
        assert_eq!(outcome.states_visited, 3);
    }
}
