//! The CLK specification: Lamport's logical clocks (paper Fig. 3).
//!
//! ```text
//! specification CLK
//! parameter locs : Loc Bag
//! parameter MsgVal: Type
//! parameter handle: Loc x MsgVal -> MsgVal x Loc
//!
//! type Timestamp = Int
//! internal msg : MsgVal x Timestamp
//!
//! let upd_clock slf (_,timestamp) clock = (imax timestamp clock) + 1 ;;
//! class Clock = State (0, upd_clock, msg'base) ;;
//!
//! let on_msg slf (value,_) clock =
//!   let (newval, recipient) = handle (slf, value)
//!   in {msg'send recipient (newval, clock)} ;;
//! class Handler = on_msg o (msg'base, Clock) ;;
//!
//! main Handler @ locs
//! ```
//!
//! Message bodies are pairs `<value, timestamp>`. The `handle` parameter
//! decides, per process, what new value to compute and where to send it.

use crate::ast::{ClassExpr, HandlerFn, Spec, UpdateFn};
use crate::value::{send_value, Msg, SendInstr, Value};
use shadowdb_loe::Loc;
use std::sync::Arc;

/// The message-handling parameter of CLK: `(slf, value) -> (newval, recipient)`.
pub type HandleFn = Arc<dyn Fn(Loc, &Value) -> (Value, Loc) + Send + Sync>;

/// The header of CLK's internal message type.
pub const MSG_HEADER: &str = "msg";

/// Builds a CLK message body `<value, timestamp>`.
pub fn clk_msg(value: Value, timestamp: i64) -> Msg {
    Msg::new(
        crate::cached_header!(MSG_HEADER),
        Value::pair(value, Value::Int(timestamp)),
    )
}

/// The timestamp carried by a CLK message, if it is one.
pub fn timestamp_of(msg: &Msg) -> Option<i64> {
    if msg.header != crate::cached_header!(MSG_HEADER) {
        return None;
    }
    msg.body.snd()?.as_int()
}

/// The `Clock` event class: `State (0, upd_clock, msg'base)`.
pub fn clock_class() -> ClassExpr {
    // upd_clock slf (_, timestamp) clock = (imax timestamp clock) + 1
    let upd_clock = UpdateFn::new("upd_clock", 8, |_slf, input, clock| {
        let ts = input.snd().and_then(Value::as_int).unwrap_or(0);
        Value::Int(ts.max(clock.int()) + 1)
    });
    ClassExpr::base(MSG_HEADER).state(Value::Int(0), upd_clock)
}

/// The `Handler` class: `on_msg o (msg'base, Clock)`.
pub fn handler_class(handle: HandleFn) -> ClassExpr {
    // on_msg slf (value, _) clock = {msg'send recipient (newval, clock)}
    let on_msg = HandlerFn::new("on_msg", 12, move |slf, args| {
        let value = args[0].fst().cloned().unwrap_or(Value::Unit);
        let clock = args[1].int();
        let (newval, recipient) = handle(slf, &value);
        vec![send_value(&SendInstr::now(
            recipient,
            clk_msg(newval, clock),
        ))]
    });
    ClassExpr::compose(on_msg, vec![ClassExpr::base(MSG_HEADER), clock_class()])
}

/// The full CLK specification.
pub fn clk_spec(handle: HandleFn) -> Spec {
    Spec::new("CLK", handler_class(handle))
}

/// A standard `handle` parameter: forward the value unchanged around a ring
/// of `n` locations.
pub fn ring_handle(n: u32) -> HandleFn {
    Arc::new(move |slf, value| {
        let next = Loc::new((slf.index() + 1) % n);
        (value.clone(), next)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::InterpretedProcess;
    use crate::process::{Ctx, Process};

    #[test]
    fn clock_updates_like_fig5() {
        let mut clock = InterpretedProcess::compile(&clock_class());
        let slf = Loc::new(0);
        // first(e): imax(ts, 0) + 1
        assert_eq!(
            clock.step_values(slf, &clk_msg(Value::Unit, 10)),
            vec![Value::Int(11)]
        );
        // later: imax(ts, prior) + 1
        assert_eq!(
            clock.step_values(slf, &clk_msg(Value::Unit, 3)),
            vec![Value::Int(12)]
        );
    }

    #[test]
    fn handler_sends_tagged_with_clock() {
        let mut h = InterpretedProcess::compile(&handler_class(ring_handle(3)));
        let slf = Loc::new(2);
        let out = h.step(&Ctx::at(slf), &clk_msg(Value::str("v"), 5));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dest, Loc::new(0)); // ring wraps 2 -> 0
        assert_eq!(timestamp_of(&out[0].msg), Some(6)); // imax(5,0)+1
        assert_eq!(out[0].msg.body.fst().unwrap().as_str(), Some("v"));
    }

    #[test]
    fn spec_counts_are_stable() {
        let spec = clk_spec(ring_handle(2));
        // A fixed count documents the structure; update deliberately if the
        // spec changes. Feeds the Table I reproduction.
        assert_eq!(spec.ast_nodes(), 27);
    }

    #[test]
    fn ignores_foreign_messages() {
        let mut h = InterpretedProcess::compile(&handler_class(ring_handle(2)));
        assert!(h
            .step(&Ctx::at(Loc::new(0)), &Msg::new("other", Value::Unit))
            .is_empty());
    }
}
