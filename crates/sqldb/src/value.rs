//! SQL values with a total order.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single SQL value.
///
/// Values are totally ordered (NULL < INT/REAL < TEXT, numerics compared
/// numerically across INT and REAL) and hashable (REAL by bit pattern), so
/// they can key B-tree indexes.
#[derive(Clone, Debug)]
pub enum SqlValue {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Real(f64),
    /// UTF-8 string.
    Text(String),
}

impl SqlValue {
    /// The value as an integer (REALs truncate), if numeric.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            SqlValue::Int(i) => Some(*i),
            SqlValue::Real(r) => Some(*r as i64),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_real(&self) -> Option<f64> {
        match self {
            SqlValue::Int(i) => Some(*i as f64),
            SqlValue::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// The value as text, if a string.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            SqlValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, SqlValue::Null)
    }

    /// Approximate in-memory/wire size in bytes (used for batch sizing and
    /// the paper's row-size accounting).
    pub fn byte_size(&self) -> usize {
        match self {
            SqlValue::Null => 1,
            SqlValue::Int(_) | SqlValue::Real(_) => 8,
            SqlValue::Text(s) => s.len(),
        }
    }

    fn rank(&self) -> u8 {
        match self {
            SqlValue::Null => 0,
            SqlValue::Int(_) | SqlValue::Real(_) => 1,
            SqlValue::Text(_) => 2,
        }
    }
}

impl PartialEq for SqlValue {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for SqlValue {}

impl PartialOrd for SqlValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SqlValue {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (SqlValue::Int(a), SqlValue::Int(b)) => a.cmp(b),
            (SqlValue::Real(a), SqlValue::Real(b)) => a.total_cmp(b),
            (SqlValue::Int(a), SqlValue::Real(b)) => (*a as f64).total_cmp(b),
            (SqlValue::Real(a), SqlValue::Int(b)) => a.total_cmp(&(*b as f64)),
            (SqlValue::Text(a), SqlValue::Text(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Hash for SqlValue {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            SqlValue::Null => 0u8.hash(state),
            // Int and Real that compare equal must hash equal: hash the
            // f64 bits of the numeric value.
            SqlValue::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            SqlValue::Real(r) => {
                1u8.hash(state);
                r.to_bits().hash(state);
            }
            SqlValue::Text(s) => {
                2u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for SqlValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlValue::Null => write!(f, "NULL"),
            SqlValue::Int(i) => write!(f, "{i}"),
            SqlValue::Real(r) => write!(f, "{r}"),
            SqlValue::Text(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for SqlValue {
    fn from(i: i64) -> SqlValue {
        SqlValue::Int(i)
    }
}

impl From<f64> for SqlValue {
    fn from(r: f64) -> SqlValue {
        SqlValue::Real(r)
    }
}

impl From<&str> for SqlValue {
    fn from(s: &str) -> SqlValue {
        SqlValue::Text(s.to_owned())
    }
}

impl From<String> for SqlValue {
    fn from(s: String) -> SqlValue {
        SqlValue::Text(s)
    }
}

/// A row: one value per schema column.
pub type Row = Vec<SqlValue>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_spans_types() {
        assert!(SqlValue::Null < SqlValue::Int(i64::MIN));
        assert!(SqlValue::Int(5) < SqlValue::Text(String::new()));
        assert!(SqlValue::Int(2) < SqlValue::Real(2.5));
        assert!(SqlValue::Real(1.5) < SqlValue::Int(2));
        assert_eq!(SqlValue::Int(2), SqlValue::Real(2.0));
    }

    #[test]
    fn equal_numerics_hash_equal() {
        use std::collections::hash_map::DefaultHasher;
        let h = |v: &SqlValue| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&SqlValue::Int(2)), h(&SqlValue::Real(2.0)));
        assert_ne!(h(&SqlValue::Int(2)), h(&SqlValue::Int(3)));
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(SqlValue::Int(1).byte_size(), 8);
        assert_eq!(SqlValue::Text("abcd".into()).byte_size(), 4);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SqlValue::Null.to_string(), "NULL");
        assert_eq!(SqlValue::Text("x".into()).to_string(), "'x'");
    }
}
