//! Scalar expressions and predicates.

use crate::schema::TableSchema;
use crate::value::SqlValue;
use crate::{Result, SqlError};

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the comparison (NULL compares false against everything,
    /// as in SQL's three-valued logic collapsed to boolean).
    pub fn apply(self, a: &SqlValue, b: &SqlValue) -> bool {
        if a.is_null() || b.is_null() {
            return false;
        }
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// Arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A scalar expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A column reference, resolved to an index at bind time.
    Col(usize),
    /// A literal.
    Lit(SqlValue),
    /// Arithmetic on two sub-expressions.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Comparison producing a boolean.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

impl Expr {
    /// Evaluates the expression over a row.
    pub fn eval(&self, row: &[SqlValue]) -> Result<SqlValue> {
        Ok(match self {
            Expr::Col(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| SqlError::Unknown(format!("column index {i}")))?,
            Expr::Lit(v) => v.clone(),
            Expr::Arith(op, a, b) => {
                let a = a.eval(row)?;
                let b = b.eval(row)?;
                if a.is_null() || b.is_null() {
                    return Ok(SqlValue::Null);
                }
                match (&a, &b) {
                    (SqlValue::Int(x), SqlValue::Int(y)) => match op {
                        ArithOp::Add => SqlValue::Int(x + y),
                        ArithOp::Sub => SqlValue::Int(x - y),
                        ArithOp::Mul => SqlValue::Int(x * y),
                        ArithOp::Div => {
                            if *y == 0 {
                                SqlValue::Null
                            } else {
                                SqlValue::Int(x / y)
                            }
                        }
                    },
                    _ => {
                        let x = a
                            .as_real()
                            .ok_or_else(|| SqlError::Constraint(format!("arithmetic on {a}")))?;
                        let y = b
                            .as_real()
                            .ok_or_else(|| SqlError::Constraint(format!("arithmetic on {b}")))?;
                        match op {
                            ArithOp::Add => SqlValue::Real(x + y),
                            ArithOp::Sub => SqlValue::Real(x - y),
                            ArithOp::Mul => SqlValue::Real(x * y),
                            ArithOp::Div => SqlValue::Real(x / y),
                        }
                    }
                }
            }
            Expr::Cmp(op, a, b) => SqlValue::Int(op.apply(&a.eval(row)?, &b.eval(row)?) as i64),
            Expr::And(a, b) => {
                SqlValue::Int((truthy(&a.eval(row)?) && truthy(&b.eval(row)?)) as i64)
            }
            Expr::Or(a, b) => {
                SqlValue::Int((truthy(&a.eval(row)?) || truthy(&b.eval(row)?)) as i64)
            }
            Expr::Not(a) => SqlValue::Int(!truthy(&a.eval(row)?) as i64),
        })
    }

    /// Evaluates as a predicate.
    pub fn matches(&self, row: &[SqlValue]) -> Result<bool> {
        Ok(truthy(&self.eval(row)?))
    }

    /// If this predicate pins a prefix of the primary key with equalities,
    /// returns the pinned values in key order (used for index lookups).
    /// Only conjunctions of `col = literal` participate.
    pub fn pk_prefix(&self, schema: &TableSchema) -> Vec<SqlValue> {
        let mut eqs: Vec<(usize, SqlValue)> = Vec::new();
        collect_eqs(self, &mut eqs);
        let mut prefix = Vec::new();
        for &k in &schema.primary_key {
            match eqs.iter().find(|(c, _)| *c == k) {
                Some((_, v)) => prefix.push(v.clone()),
                None => break,
            }
        }
        prefix
    }
}

fn truthy(v: &SqlValue) -> bool {
    match v {
        SqlValue::Null => false,
        SqlValue::Int(i) => *i != 0,
        SqlValue::Real(r) => *r != 0.0,
        SqlValue::Text(s) => !s.is_empty(),
    }
}

fn collect_eqs(e: &Expr, out: &mut Vec<(usize, SqlValue)>) {
    match e {
        Expr::And(a, b) => {
            collect_eqs(a, out);
            collect_eqs(b, out);
        }
        Expr::Cmp(CmpOp::Eq, a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Col(c), Expr::Lit(v)) | (Expr::Lit(v), Expr::Col(c)) => {
                out.push((*c, v.clone()));
            }
            _ => {}
        },
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType};

    fn lit(i: i64) -> Box<Expr> {
        Box::new(Expr::Lit(SqlValue::Int(i)))
    }
    fn col(i: usize) -> Box<Expr> {
        Box::new(Expr::Col(i))
    }

    #[test]
    fn arithmetic_and_comparison() {
        let row = vec![SqlValue::Int(10), SqlValue::Real(2.5)];
        let e = Expr::Arith(ArithOp::Add, col(0), lit(5));
        assert_eq!(e.eval(&row).unwrap(), SqlValue::Int(15));
        let e = Expr::Arith(ArithOp::Mul, col(0), col(1));
        assert_eq!(e.eval(&row).unwrap(), SqlValue::Real(25.0));
        let e = Expr::Cmp(CmpOp::Gt, col(0), lit(3));
        assert!(e.matches(&row).unwrap());
    }

    #[test]
    fn null_propagates_and_compares_false() {
        let row = vec![SqlValue::Null];
        let e = Expr::Arith(ArithOp::Add, col(0), lit(1));
        assert_eq!(e.eval(&row).unwrap(), SqlValue::Null);
        let e = Expr::Cmp(CmpOp::Eq, col(0), col(0));
        assert!(!e.matches(&row).unwrap());
    }

    #[test]
    fn division_by_zero_is_null() {
        let e = Expr::Arith(ArithOp::Div, lit(5), lit(0));
        assert_eq!(e.eval(&[]).unwrap(), SqlValue::Null);
    }

    #[test]
    fn boolean_connectives() {
        let t = Expr::Cmp(CmpOp::Eq, lit(1), lit(1));
        let f = Expr::Cmp(CmpOp::Eq, lit(1), lit(2));
        assert!(Expr::And(Box::new(t.clone()), Box::new(t.clone()))
            .matches(&[])
            .unwrap());
        assert!(!Expr::And(Box::new(t.clone()), Box::new(f.clone()))
            .matches(&[])
            .unwrap());
        assert!(Expr::Or(Box::new(f.clone()), Box::new(t.clone()))
            .matches(&[])
            .unwrap());
        assert!(Expr::Not(Box::new(f)).matches(&[]).unwrap());
        let _ = t;
    }

    #[test]
    fn pk_prefix_detection() {
        let schema = TableSchema::new(
            "t",
            vec![
                Column {
                    name: "a".into(),
                    dtype: DataType::Int,
                },
                Column {
                    name: "b".into(),
                    dtype: DataType::Int,
                },
                Column {
                    name: "c".into(),
                    dtype: DataType::Int,
                },
            ],
            vec![0, 1],
        )
        .unwrap();
        // a = 1 AND b = 2 → full key prefix.
        let e = Expr::And(
            Box::new(Expr::Cmp(CmpOp::Eq, col(0), lit(1))),
            Box::new(Expr::Cmp(CmpOp::Eq, col(1), lit(2))),
        );
        assert_eq!(
            e.pk_prefix(&schema),
            vec![SqlValue::Int(1), SqlValue::Int(2)]
        );
        // b = 2 only → no prefix (a unpinned).
        let e = Expr::Cmp(CmpOp::Eq, col(1), lit(2));
        assert!(e.pk_prefix(&schema).is_empty());
        // a = 1 AND c > 0 → prefix of length 1.
        let e = Expr::And(
            Box::new(Expr::Cmp(CmpOp::Eq, col(0), lit(1))),
            Box::new(Expr::Cmp(CmpOp::Gt, col(2), lit(0))),
        );
        assert_eq!(e.pk_prefix(&schema), vec![SqlValue::Int(1)]);
    }
}
