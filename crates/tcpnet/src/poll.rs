//! A minimal std-only readiness poller: epoll on Linux, `poll(2)` on
//! other unix systems. No external crates — the handful of syscalls the
//! shard event loops need are declared directly.
//!
//! Semantics are level-triggered on both backends: an event for a token
//! keeps firing while the condition holds, so the loop reads until
//! `WouldBlock` and only registers write interest while an output queue
//! is nonempty.

use std::io;
use std::os::raw::c_int;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// One readiness event delivered by [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct PollEvent {
    /// The token the fd was registered under.
    pub token: usize,
    /// Readable (or a pending accept on a listener).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup: the owner should try the I/O and observe the
    /// failure — both backends fold `ERR`/`HUP` in here.
    pub hangup: bool,
}

/// Interest to (re)register an fd with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when readable / acceptable.
    pub readable: bool,
    /// Wake when writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of every connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read plus write — an outbound link parked on write readiness,
    /// still watching for peer close.
    pub const RW: Interest = Interest {
        readable: true,
        writable: true,
    };
}

#[cfg(target_os = "linux")]
mod imp {
    use super::*;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;

    const EPOLL_CLOEXEC: c_int = 0o2000000;

    // The kernel's struct epoll_event is packed on x86_64 only.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// The epoll backend: O(ready) wait, no per-call fd scan.
    pub struct Poller {
        epfd: c_int,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(
            &mut self,
            op: c_int,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            let mut events = EPOLLRDHUP;
            if interest.readable {
                events |= EPOLLIN;
            }
            if interest.writable {
                events |= EPOLLOUT;
            }
            let mut ev = EpollEvent {
                events,
                data: token as u64,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(())
            }
        }

        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, std::ptr::null_mut()) };
            if rc < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(())
            }
        }

        pub fn wait(
            &mut self,
            timeout: Option<Duration>,
            out: &mut Vec<PollEvent>,
        ) -> io::Result<()> {
            let ms: c_int = match timeout {
                // Round up so a 1µs timer does not spin at timeout 0.
                Some(t) => {
                    t.as_millis().min(c_int::MAX as u128) as c_int
                        + if t.subsec_micros() % 1000 != 0 { 1 } else { 0 }
                }
                None => -1,
            };
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in &self.buf[..n as usize] {
                let bits = ev.events;
                out.push(PollEvent {
                    token: ev.data as usize,
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::*;
    use std::os::raw::{c_short, c_ulong};

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// The portable `poll(2)` backend: O(fds) per wait, which is fine at
    /// the loopback scales this runtime hosts.
    pub struct Poller {
        fds: Vec<PollFd>,
        tokens: Vec<usize>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                fds: Vec::new(),
                tokens: Vec::new(),
            })
        }

        fn events_of(interest: Interest) -> c_short {
            let mut e = 0;
            if interest.readable {
                e |= POLLIN;
            }
            if interest.writable {
                e |= POLLOUT;
            }
            e
        }

        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.fds.push(PollFd {
                fd,
                events: Self::events_of(interest),
                revents: 0,
            });
            self.tokens.push(token);
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            for (slot, tok) in self.fds.iter_mut().zip(self.tokens.iter_mut()) {
                if slot.fd == fd {
                    slot.events = Self::events_of(interest);
                    *tok = token;
                    return Ok(());
                }
            }
            Err(io::Error::from(io::ErrorKind::NotFound))
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            if let Some(i) = self.fds.iter().position(|s| s.fd == fd) {
                self.fds.swap_remove(i);
                self.tokens.swap_remove(i);
                Ok(())
            } else {
                Err(io::Error::from(io::ErrorKind::NotFound))
            }
        }

        pub fn wait(
            &mut self,
            timeout: Option<Duration>,
            out: &mut Vec<PollEvent>,
        ) -> io::Result<()> {
            let ms: c_int = match timeout {
                Some(t) => {
                    t.as_millis().min(c_int::MAX as u128) as c_int
                        + if t.subsec_micros() % 1000 != 0 { 1 } else { 0 }
                }
                None => -1,
            };
            for slot in self.fds.iter_mut() {
                slot.revents = 0;
            }
            let n = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as c_ulong, ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (slot, &token) in self.fds.iter().zip(self.tokens.iter()) {
                if slot.revents != 0 {
                    out.push(PollEvent {
                        token,
                        readable: slot.revents & POLLIN != 0,
                        writable: slot.revents & POLLOUT != 0,
                        hangup: slot.revents & (POLLERR | POLLHUP) != 0,
                    });
                }
            }
            Ok(())
        }
    }
}

pub use imp::Poller;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readable_event_fires_and_clears() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        poller
            .wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert!(events.is_empty(), "no data yet");

        a.write_all(b"x").unwrap();
        poller
            .wait(Some(Duration::from_millis(1000)), &mut events)
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        // Level-triggered: still readable until drained.
        events.clear();
        poller
            .wait(Some(Duration::from_millis(100)), &mut events)
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        let mut buf = [0u8; 8];
        let mut b2 = &b;
        assert_eq!(b2.read(&mut buf).unwrap(), 1);

        events.clear();
        poller
            .wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert!(events.is_empty(), "drained fd must go quiet");
    }

    #[test]
    fn write_interest_tracks_modify_and_deregister() {
        let (a, _b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(a.as_raw_fd(), 1, Interest::RW).unwrap();
        let mut events = Vec::new();
        poller
            .wait(Some(Duration::from_millis(1000)), &mut events)
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));

        poller.modify(a.as_raw_fd(), 1, Interest::READ).unwrap();
        events.clear();
        poller
            .wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert!(events.is_empty(), "write interest withdrawn");

        poller.deregister(a.as_raw_fd()).unwrap();
        events.clear();
        poller
            .wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert!(events.is_empty());
    }
}
