//! The General Process Model (GPM): executable processes.
//!
//! In GPM a process is a tail-recursive function that takes an input message,
//! produces outputs, and computes a new process to replace itself. In Rust
//! the idiomatic rendering is a trait with a mutating [`Process::step`]; the
//! "new process" is the mutated receiver, and a halted process answers
//! [`Process::halted`].
//!
//! Processes must be cloneable (model checking forks executions) and
//! digestible (model checking fingerprints states), so the trait carries
//! [`Process::clone_box`] and [`Process::digest`].

use crate::value::{Msg, SendInstr};
use shadowdb_loe::{Loc, VTime};
use std::hash::{Hash, Hasher};

/// The execution context a process steps in: who it is and what time it is.
///
/// EventML leaf functions never see the clock (time reaches specifications
/// only through timer messages, i.e. delayed self-sends), but native
/// processes — clients measuring latency, failure detectors — need it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ctx {
    /// The location this process runs at (`slf`).
    pub slf: Loc,
    /// The current (virtual) time.
    pub now: VTime,
}

impl Ctx {
    /// A context at time zero (sufficient for time-oblivious processes).
    pub fn at(slf: Loc) -> Ctx {
        Ctx {
            slf,
            now: VTime::ZERO,
        }
    }

    /// A context at a given time.
    pub fn new(slf: Loc, now: VTime) -> Ctx {
        Ctx { slf, now }
    }
}

/// An executable process in the General Process Model.
pub trait Process: Send {
    /// Handles one input message, appending the send instructions it emits
    /// to `out`. This is the required method so runtimes can drain a
    /// reusable buffer instead of allocating a `Vec` per step; `out` is not
    /// cleared — the caller owns its lifecycle.
    fn step_into(&mut self, ctx: &Ctx, msg: &Msg, out: &mut Vec<SendInstr>);

    /// Handles one input message, returning the send instructions it emits.
    /// Convenience wrapper over [`Process::step_into`]; allocates, so hot
    /// loops should prefer `step_into`.
    fn step(&mut self, ctx: &Ctx, msg: &Msg) -> Vec<SendInstr> {
        let mut out = Vec::new();
        self.step_into(ctx, msg, &mut out);
        out
    }

    /// Whether this process has halted (a halted process ignores inputs).
    fn halted(&self) -> bool {
        false
    }

    /// CPU time the *last* [`Process::step`] consumed beyond message
    /// handling (e.g. executing a database transaction). A simulator reads
    /// and resets this after each step and charges it to the hosting
    /// machine. Defaults to zero.
    fn take_step_cost(&mut self) -> std::time::Duration {
        std::time::Duration::ZERO
    }

    /// Clones the process behind a box (processes are forked by the model
    /// checker and by reconfiguration logic).
    fn clone_box(&self) -> Box<dyn Process>;

    /// Feeds the process's state into `hasher`, for state-space
    /// fingerprinting. Two processes with equal behaviour from here on
    /// should feed equal data; differing states should (with high
    /// probability) feed differing data.
    fn digest(&self, hasher: &mut dyn Hasher);
}

impl Clone for Box<dyn Process> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Computes a 64-bit fingerprint of a process's state.
///
/// Uses [`crate::fxhash::FxHasher`]: fingerprints are stable across runs
/// (reproducible model-checking statistics) and cheap — state spaces hash
/// every explored node.
pub fn fingerprint(p: &dyn Process) -> u64 {
    let mut h = crate::fxhash::FxHasher::new();
    p.digest(&mut h);
    h.finish()
}

/// The halted process: consumes every input and produces nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Halt;

impl Process for Halt {
    fn step_into(&mut self, _ctx: &Ctx, _msg: &Msg, _out: &mut Vec<SendInstr>) {}
    fn halted(&self) -> bool {
        true
    }
    fn clone_box(&self) -> Box<dyn Process> {
        Box::new(Halt)
    }
    fn digest(&self, hasher: &mut dyn Hasher) {
        "halt".hash(&mut HasherAdapter(hasher));
    }
}

/// A process defined by a state value and a transition function; convenient
/// for tests and simple native protocols.
///
/// # Example
///
/// ```
/// use shadowdb_eventml::{Ctx, FnProcess, Msg, Process, SendInstr, Value};
/// use shadowdb_loe::Loc;
///
/// let mut counter = FnProcess::new(0u64, |count, ctx: &Ctx, msg: &Msg| {
///     *count += 1;
///     vec![SendInstr::now(ctx.slf, Msg::new("count", Value::Int(*count as i64)))]
/// });
/// let out = counter.step(&Ctx::at(Loc::new(0)), &Msg::new("tick", Value::Unit));
/// assert_eq!(out[0].msg.body, Value::Int(1));
/// ```
pub struct FnProcess<S, F> {
    state: S,
    f: F,
}

impl<S, F> FnProcess<S, F>
where
    S: Clone + Hash + Send + 'static,
    F: FnMut(&mut S, &Ctx, &Msg) -> Vec<SendInstr> + Clone + Send + 'static,
{
    /// Creates a process with the given initial state and transition.
    pub fn new(state: S, f: F) -> Self {
        FnProcess { state, f }
    }

    /// Read access to the process state (for assertions in tests).
    pub fn state(&self) -> &S {
        &self.state
    }
}

impl<S, F> Process for FnProcess<S, F>
where
    S: Clone + Hash + Send + 'static,
    F: FnMut(&mut S, &Ctx, &Msg) -> Vec<SendInstr> + Clone + Send + 'static,
{
    fn step_into(&mut self, ctx: &Ctx, msg: &Msg, out: &mut Vec<SendInstr>) {
        out.extend((self.f)(&mut self.state, ctx, msg));
    }
    fn clone_box(&self) -> Box<dyn Process> {
        Box::new(FnProcess {
            state: self.state.clone(),
            f: self.f.clone(),
        })
    }
    fn digest(&self, hasher: &mut dyn Hasher) {
        self.state.hash(&mut HasherAdapter(hasher));
    }
}

/// Adapts `&mut dyn Hasher` to the `Hasher` trait so `Hash::hash` can be
/// called through it.
pub struct HasherAdapter<'a>(pub &'a mut dyn Hasher);

impl Hasher for HasherAdapter<'_> {
    fn finish(&self) -> u64 {
        self.0.finish()
    }
    fn write(&mut self, bytes: &[u8]) {
        self.0.write(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn halt_ignores_input() {
        let mut h = Halt;
        assert!(h.halted());
        assert!(h
            .step(&Ctx::at(Loc::new(0)), &Msg::new("x", Value::Unit))
            .is_empty());
    }

    #[test]
    fn fn_process_steps_and_clones() {
        let mut p = FnProcess::new(0i64, |s: &mut i64, ctx: &Ctx, _m: &Msg| {
            *s += 1;
            vec![SendInstr::now(ctx.slf, Msg::new("n", Value::Int(*s)))]
        });
        let ctx = Ctx::at(Loc::new(1));
        p.step(&ctx, &Msg::new("t", Value::Unit));
        let mut q = p.clone_box();
        p.step(&ctx, &Msg::new("t", Value::Unit));
        // The clone took a snapshot: it continues from 1, not 2.
        let out = q.step(&ctx, &Msg::new("t", Value::Unit));
        assert_eq!(out[0].msg.body, Value::Int(2));
        assert_eq!(p.state(), &2);
    }

    #[test]
    fn fingerprints_separate_states() {
        let p = FnProcess::new(1i64, |_s: &mut i64, _c: &Ctx, _m: &Msg| Vec::new());
        let q = FnProcess::new(2i64, |_s: &mut i64, _c: &Ctx, _m: &Msg| Vec::new());
        let r = FnProcess::new(1i64, |_s: &mut i64, _c: &Ctx, _m: &Msg| Vec::new());
        assert_ne!(fingerprint(&p), fingerprint(&q));
        assert_eq!(fingerprint(&p), fingerprint(&r));
    }
}
