//! Ablation: lease-based read fast path × read fraction.
//!
//! The lease tentpole's claim is that linearizable reads need not pay
//! the ordering machinery — a backup-acknowledgment round on PBR, a full
//! total-order broadcast on SMR — as long as a time-bounded lease pins
//! the answering replica. This harness quantifies that across the read
//! mix: a YCSB-style zipfian workload (`shadowdb_workloads::kv`) swept
//! over read fractions, each point run twice on identical virtual-time
//! deployments — leases off (every transaction ordered) and leases on
//! (reads served locally by the holder) — on both replication designs.
//!
//! Virtual time makes every number deterministic: the deltas are
//! protocol costs (messages, round trips, virtual CPU), not host noise.
//! Writes always pay the ordered path, so the payoff must grow with the
//! read fraction and vanish at 0% reads — the sweep's shape is itself
//! the correctness argument for the gating in `perf_smoke`
//! (`read_leases_speedup_95r`).
//!
//! Emits a human-readable table plus one JSON line per configuration
//! (`{"mode":m,"read_pct":p,"leases":b,"throughput_per_sec":t,
//! "latency_ms":l}`) for the record in `BENCH_hotpaths.json` (group
//! `reads`).

use shadowdb::deploy::{DeployOptions, PbrDeployment, SmrDeployment};
use shadowdb::pbr::PbrOptions;
use shadowdb::smr::SmrLeaseOptions;
use shadowdb_bench::output;
use shadowdb_loe::VTime;
use shadowdb_simnet::testing::default_net;
use shadowdb_workloads::{bank, KvGen, KvOptions};
use std::time::Duration;

const ROWS: usize = 256;
const CLIENTS: usize = 16;
const TXNS_EACH: usize = 60;

fn deploy_options(read_pct: u32) -> DeployOptions {
    DeployOptions::new(
        CLIENTS,
        move |client| {
            let opts = KvOptions {
                rows: ROWS,
                read_fraction: read_pct as f64 / 100.0,
                theta: 0.99,
            };
            KvGen::new(0x5EED + client as u64, opts).script(TXNS_EACH)
        },
        |db| bank::load(db, ROWS).expect("bank loads"),
    )
}

/// Virtual-time throughput + mean latency over the answered history.
fn measure(
    stats: &[std::sync::Arc<parking_lot::Mutex<shadowdb::client::DbClientStats>>],
) -> (f64, f64) {
    let mut all: Vec<(VTime, VTime)> = Vec::new();
    for s in stats {
        let s = s.lock();
        assert_eq!(s.completed.len(), TXNS_EACH, "every transaction answers");
        let warm = s.completed.len() / 10;
        all.extend(s.completed.iter().skip(warm).map(|(a, b, _)| (*a, *b)));
    }
    let first = all.iter().map(|(a, _)| *a).min().expect("answers");
    let last = all.iter().map(|(_, b)| *b).max().expect("answers");
    let span = last.saturating_since(first).as_secs_f64().max(1e-9);
    let lat = all
        .iter()
        .map(|(a, b)| b.saturating_since(*a).as_secs_f64() * 1e3)
        .sum::<f64>()
        / all.len() as f64;
    (all.len() as f64 / span, lat)
}

fn run_pbr(read_pct: u32, leases: bool) -> (f64, f64) {
    let mut sim = default_net(4_200 + read_pct as u64 * 2 + leases as u64);
    let pbr = PbrOptions {
        // Echo-granted leases renew off the heartbeat plane; a tight
        // cadence keeps the first grant well before the workload drains.
        heartbeat_every: Duration::from_millis(2),
        read_leases: leases,
        ..PbrOptions::default()
    };
    let d = PbrDeployment::build(&mut sim, &deploy_options(read_pct), pbr);
    sim.run_until_quiescent(VTime::from_secs(3_600));
    measure(&d.stats)
}

fn run_smr(read_pct: u32, leases: bool) -> (f64, f64) {
    let mut sim = default_net(4_300 + read_pct as u64 * 2 + leases as u64);
    let mut options = deploy_options(read_pct);
    if leases {
        options.smr_leases = Some(SmrLeaseOptions::default());
    }
    let d = SmrDeployment::build(&mut sim, &options);
    sim.run_until_quiescent(VTime::from_secs(3_600));
    measure(&d.stats)
}

fn main() {
    output::banner(
        "Ablation — lease read fast path × read fraction",
        "linearizable reads without the ordering round (PBR acks / SMR TOB)",
    );
    output::kv("clients", CLIENTS);
    output::kv("transactions per client", TXNS_EACH);
    output::kv("keys (zipfian θ=0.99)", ROWS);
    let mut json = Vec::new();
    for (mode, run) in [
        ("pbr", run_pbr as fn(u32, bool) -> (f64, f64)),
        ("smr", run_smr as fn(u32, bool) -> (f64, f64)),
    ] {
        let rows: Vec<(String, String)> = [0u32, 50, 95, 99]
            .iter()
            .map(|&pct| {
                let (off_t, off_l) = run(pct, false);
                let (on_t, on_l) = run(pct, true);
                for (leases, t, l) in [(false, off_t, off_l), (true, on_t, on_l)] {
                    json.push(format!(
                        "{{\"mode\":\"{mode}\",\"read_pct\":{pct},\"leases\":{leases},\
                         \"throughput_per_sec\":{t:.1},\"latency_ms\":{l:.2}}}"
                    ));
                }
                (
                    format!("{pct}% reads"),
                    format!(
                        "off {off_t:>8.1}/s {off_l:>6.2} ms   on {on_t:>8.1}/s {on_l:>6.2} ms   {:>5.2}x",
                        on_t / off_t
                    ),
                )
            })
            .collect();
        output::pairs(
            &format!("{mode}: leases off vs on"),
            "mix",
            "throughput, latency, speedup",
            &rows,
        );
    }
    println!();
    for line in &json {
        println!("{line}");
    }
    println!();
    println!("the write-only row is the no-regression control: leases touch");
    println!("nothing on the ordered path, so 0% reads must not move. the");
    println!("payoff then scales with the read fraction — on SMR every avoided");
    println!("read is a whole total-order broadcast, so the high-read rows");
    println!("gain the most; on PBR it is the backup round trip plus the");
    println!("primary's forward/ack handling that the fast path sheds.");
}
