//! State machine replication (Sec. III-B).
//!
//! "With state machine replication, all transactions are ordered by the
//! total order broadcast service": (i) the client broadcasts `T` to all
//! replicas using the service; (ii) upon delivering `T`, each database
//! executes and commits the transaction and sends the answer to the
//! client; (iii) the client waits for the first answer.
//!
//! "When a replica crashes, the protocol proceeds normally with no
//! interruptions as long as at least one replica survives." Adding a
//! replica is a reconfiguration broadcast: the request carries the
//! sequence number of the last ordered transaction, and the new replica
//! fetches the snapshot from the proposer.

use crate::msgs::{
    lease_audit_msg, reply_msg, sql_to_value, value_to_sql, TxnEnvelope, SUBMIT_HEADER,
};
use crate::pbr::{LeaseProbe, TransferKind, TransferProbe};
use crate::shard::{ShardRole, TwoPcEngine};
use shadowdb_eventml::process::HasherAdapter;
use shadowdb_eventml::{cached_header, Ctx, Msg, Process, SendInstr, Value};
use shadowdb_loe::{Loc, VTime};
use shadowdb_sqldb::{Database, RowBatch, Snapshot, SqlValue};
use shadowdb_tob::{broadcast_msg, parse_deliver, parse_subok, Delivery, InOrderBuffer};
use shadowdb_wal::{Disk, Wal};
use shadowdb_workloads::{apply_group, TxnRequest};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::time::Duration;

/// Request a snapshot from a replica: body `<requester>` or
/// `<requester, min_seq>` (the donor defers until it has executed at
/// least `min_seq` deliveries, so the snapshot can never undershoot the
/// requester's subscription point).
pub const FETCH_SNAPSHOT_HEADER: &str = "smr/fetchsnap";
/// A snapshot chunk: body `<chunk, <<total, next_seq>, bytes>>`.
pub const SNAPSHOT_CHUNK_HEADER: &str = "smr/snapchunk";
/// Joiner-internal retry timer: if the snapshot has not landed (donor
/// crashed mid-stream), re-request from the next donor on the list.
const JOIN_RETRY_HEADER: &str = "smr/joinretry";
/// A disk-recovered replica asks a donor for the delivery suffix it
/// missed: body `<requester, <from_seq, min_seq>>`. The donor answers
/// from its recent-delivery cache when it reaches back to `from_seq`,
/// else falls back to a full snapshot.
const FETCH_DELTA_HEADER: &str = "smr/fetchdelta";
/// The missed suffix: body `<from_seq, [payload...]>` (consecutive
/// delivery payloads starting at `from_seq`).
const DELTA_HEADER: &str = "smr/delta";
/// Self-rearming renewal/claim tick for the read-lease plane.
const LEASE_TIMER_HEADER: &str = "smr/leasetick";
/// Tag of a lease marker ordered through the TOB:
/// `<"lease!", <holder, send_ts_us>>`. Markers ride the ordinary delivery
/// stream (and the WAL with it), so every replica observes the same
/// holder sequence at the same slots.
const LEASE_MARKER_TAG: &str = "lease!";

/// Tuning for the SMR read-lease fast path. The TOB remains the write
/// path; a marker ordered through it elects one replica (the holder)
/// whose database provably reflects every acknowledged write, because
/// every *other* replica suppresses client replies while the marker is
/// fresh — during the lease only the holder acknowledges, and anything
/// the holder acknowledged it has executed.
#[derive(Clone, Debug)]
pub struct SmrLeaseOptions {
    /// Lease length `D`: a marker delivered at local time `t` suppresses
    /// a non-holder's replies until `t + D`, while the holder's fast
    /// window ends at `send_ts + D - margin` on its own clock. Delivery
    /// follows the send, so the suppression horizon dominates the fast
    /// window at every non-holder.
    pub lease_duration: Duration,
    /// Clock-*rate* safety margin subtracted from the holder's window
    /// (virtual clocks are exact, so simulation runs keep this zero).
    pub lease_margin: Duration,
    /// Holder renewal period, also the unit of the claim stagger; `D/4`
    /// keeps the lease continuously covered with slack for TOB latency.
    pub renew_every: Duration,
    /// Test probe recording `(term, loc, served_at, until)` per fast read.
    pub lease_probe: Option<LeaseProbe>,
    /// When set, every fast read is also announced to this location as a
    /// [`crate::msgs::LEASE_AUDIT_HEADER`] message — unlike the probe,
    /// messages fork soundly under the model checker.
    pub lease_audit: Option<Loc>,
}

impl Default for SmrLeaseOptions {
    fn default() -> SmrLeaseOptions {
        SmrLeaseOptions {
            lease_duration: Duration::from_secs(4),
            lease_margin: Duration::ZERO,
            renew_every: Duration::from_secs(1),
            lease_probe: None,
            lease_audit: None,
        }
    }
}

/// The read-lease plane of one replica (present iff leases are enabled).
#[derive(Clone)]
struct LeaseState {
    opts: SmrLeaseOptions,
    /// TOB entry points for this replica's own broadcasts (markers and
    /// forwarded reads).
    tob_servers: Vec<Loc>,
    /// Claim stagger rank: rank 0 claims a lapsed lease first, higher
    /// ranks wait `rank * renew_every` longer, so the group converges on
    /// a single claimant without a coordination round.
    claim_rank: u64,
    /// Holder named by the latest executed marker.
    holder: Option<Loc>,
    /// The holder's clock (µs) stamped into that marker.
    marker_send_us: i64,
    /// Local delivery time of that marker. `None` means the marker was
    /// WAL-replayed: its receipt time is unknown, so it anchors no live
    /// suppression window (see `post_recovery`).
    marker_deliv: Option<VTime>,
    /// Holder-side wait-out: no fast reads before this. Covers the
    /// previous holder's entire window across a hand-off.
    fast_from: VTime,
    /// msgid counter for this replica's own broadcasts.
    msgid: i64,
    /// Disk-recovered: the first live step re-anchors suppression at its
    /// own clock and forgets any replayed holder identity, conservatively
    /// covering whatever lease was outstanding at the crash.
    post_recovery: bool,
}

/// Decodes a lease marker payload, if `v` is one (transaction envelopes
/// lead with a `Loc`, so the string tag is unambiguous).
fn parse_lease_marker(v: &Value) -> Option<(Loc, i64)> {
    let (tag, rest) = v.fst().zip(v.snd())?;
    if tag.as_str()? != LEASE_MARKER_TAG {
        return None;
    }
    let (holder, ts) = rest.fst().zip(rest.snd())?;
    Some((holder.as_loc()?, ts.as_int()?))
}

/// An SMR ShadowDB replica: a broadcast-service subscriber executing every
/// delivered transaction.
pub struct SmrReplica {
    db: Database,
    incoming: InOrderBuffer,
    /// client -> (last cseq, committed, results) for duplicate suppression.
    last_reply: HashMap<Loc, (i64, bool, Vec<SqlValue>)>,
    executed: i64,
    /// Snapshot-joining state: deliveries buffer inside `incoming` until
    /// the snapshot establishes the starting sequence number.
    joining: bool,
    /// Donor candidates for a self-driven join ([`SmrReplica::joining_from`]):
    /// the subscription ack triggers the fetch, retries rotate through the
    /// list so a donor crash mid-stream does not strand the joiner.
    donors: Vec<Loc>,
    /// The TOB subscription point, once acked — the fetch's `min_seq`.
    sub_seq: Option<i64>,
    /// Fetch attempts so far (indexes the donor rotation).
    join_attempts: u64,
    snap_chunks: BTreeMap<i64, bytes::Bytes>,
    snap_total: Option<(i64, i64)>,
    transfer_batch_bytes: usize,
    step_cost: Duration,
    /// Reusable envelope buffer for group apply (always empty between
    /// steps; excluded from digests and cloned empty).
    group_scratch: Vec<TxnEnvelope>,
    /// Sharded deployments: this group's place in the shard map.
    role: Option<ShardRole>,
    /// The replicated 2PC state machine (present iff `role` is).
    engine: Option<TwoPcEngine>,
    /// Per-target-shard emission counters. Under SMR *every* replica
    /// emits (there is no primary); receivers deduplicate semantically,
    /// since each replica's envelopes carry its own location.
    twopc_seq: Vec<i64>,
    /// Durability plane: the write-ahead log, when this replica persists
    /// the delivery stream. One fsync per step covers every delivery the
    /// step executed (group commit), before any reply escapes.
    wal: Option<Wal>,
    /// `next_seq` at the last durable snapshot (truncation point).
    wal_snap_at: i64,
    /// Take a durable snapshot every this many deliveries.
    snapshot_every: i64,
    /// Disk-recovered and waiting to fetch the delivery suffix the disk
    /// missed from a donor.
    rejoin: bool,
    /// Recent in-order deliveries `(seq, payload)`, consecutive up to
    /// `next_seq` — the donor-side cache for suffix-only rejoins.
    recent: VecDeque<(i64, Value)>,
    /// Bound on `recent` (0 disables the cache).
    recent_limit: usize,
    /// Optional donor-side probe recording which transfer path each
    /// rejoin request took.
    transfer_probe: Option<TransferProbe>,
    /// Lease-based read fast path, when enabled.
    lease: Option<LeaseState>,
}

impl SmrReplica {
    /// Creates a replica that executes from sequence number 0.
    pub fn new(db: Database) -> SmrReplica {
        SmrReplica {
            db,
            incoming: InOrderBuffer::new(),
            last_reply: HashMap::new(),
            executed: 0,
            joining: false,
            donors: Vec::new(),
            sub_seq: None,
            join_attempts: 0,
            snap_chunks: BTreeMap::new(),
            snap_total: None,
            transfer_batch_bytes: 50_000,
            step_cost: Duration::ZERO,
            group_scratch: Vec::new(),
            role: None,
            engine: None,
            twopc_seq: Vec::new(),
            wal: None,
            wal_snap_at: 0,
            snapshot_every: i64::MAX,
            rejoin: false,
            recent: VecDeque::new(),
            recent_limit: 0,
            transfer_probe: None,
            lease: None,
        }
    }

    /// Enables the lease-based read fast path: markers broadcast through
    /// `tob_servers` elect a holder that answers read-only transactions
    /// from its local database without a broadcast round. `claim_rank`
    /// staggers lapse claims (rank 0 moves first). On a disk-recovered
    /// replica this must be chained *after* [`SmrReplica::recover_from`]:
    /// replayed markers carry no receipt time, so the first live step
    /// conservatively re-anchors suppression at its own clock.
    pub fn with_read_leases(
        mut self,
        tob_servers: Vec<Loc>,
        claim_rank: u64,
        opts: SmrLeaseOptions,
    ) -> SmrReplica {
        assert!(!tob_servers.is_empty(), "leases need a TOB entry point");
        // This replica's broadcast msgids must not collide with any it
        // used before a crash (the service dedups per source); restart
        // the counter well past anything plausibly used.
        let msgid = self.incoming.next_seq().max(0).saturating_mul(1_000_000);
        self.lease = Some(LeaseState {
            opts,
            tob_servers,
            claim_rank,
            holder: None,
            marker_send_us: 0,
            marker_deliv: None,
            fast_from: VTime::ZERO,
            msgid,
            post_recovery: self.rejoin,
        });
        self
    }

    /// The message that starts the renewal/claim tick; the deployment
    /// sends it once at boot to every lease-enabled replica.
    pub fn lease_start_msg() -> Msg {
        Msg::new(LEASE_TIMER_HEADER, Value::Unit)
    }

    /// Places this replica's group inside a sharded deployment: its shard,
    /// the shard map, and routes to every other group. Activates the 2PC
    /// engine on the delivery path. Snapshot joins do not yet transfer
    /// engine state, so sharded deployments must not add SMR replicas via
    /// [`SmrReplica::joining`] while cross-shard transactions are in
    /// flight.
    pub fn with_role(mut self, role: ShardRole) -> SmrReplica {
        self.engine = Some(TwoPcEngine::new(role.map, role.shard, role.probe.clone()));
        self.twopc_seq = vec![0; role.map.shards()];
        self.role = Some(role);
        self
    }

    /// Creates a replica that first fetches a snapshot from `donor` before
    /// executing (a replica added by reconfiguration). The deployment must
    /// route a [`FETCH_SNAPSHOT_HEADER`] request to the donor.
    pub fn joining(db: Database) -> SmrReplica {
        SmrReplica {
            joining: true,
            ..SmrReplica::new(db)
        }
    }

    /// Creates a self-driven joiner: once the deployment subscribes it at
    /// the broadcast service, the subscription ack triggers a snapshot
    /// fetch from `donors[0]` with the ack's sequence as `min_seq` — the
    /// donor defers until its execution reaches that point, so the
    /// snapshot plus the subscribed deliveries form a gapless history. If
    /// the snapshot does not land (donor crashed mid-stream), retries
    /// rotate through `donors`.
    pub fn joining_from(db: Database, donors: Vec<Loc>) -> SmrReplica {
        assert!(!donors.is_empty(), "a joiner needs at least one donor");
        SmrReplica {
            donors,
            ..SmrReplica::joining(db)
        }
    }

    /// Attaches a write-ahead log: every in-order delivery is appended
    /// (keyed by its TOB sequence number) and fsynced once per step, with
    /// a durable snapshot every `snapshot_every` deliveries. Durable
    /// replicas also keep `recent_limit` recent deliveries in memory so
    /// they can serve suffix-only rejoins as donors.
    pub fn with_wal(mut self, disk: Disk, snapshot_every: i64, recent_limit: usize) -> SmrReplica {
        self.snapshot_every = snapshot_every.max(1);
        self.recent_limit = recent_limit;
        self.wal = Some(Wal::open(disk));
        self
    }

    /// Installs a donor-side transfer probe.
    pub fn with_transfer_probe(mut self, probe: TransferProbe) -> SmrReplica {
        self.transfer_probe = Some(probe);
        self
    }

    /// Rebuilds a replica from its durable state after a crash: install
    /// the latest snapshot, replay the logged delivery suffix, then
    /// rejoin — the subscription ack tells it how far the group has
    /// moved on, and `donors` serve the missed range from their
    /// recent-delivery caches (full snapshot only if no cache reaches
    /// back far enough).
    pub fn recover_from(
        db: Database,
        donors: Vec<Loc>,
        role: Option<ShardRole>,
        slf: Loc,
        disk: Disk,
        snapshot_every: i64,
        recent_limit: usize,
    ) -> SmrReplica {
        let rec = shadowdb_wal::recover(&disk);
        let mut r = SmrReplica::new(db);
        if let Some(role) = role {
            r = r.with_role(role);
        }
        r.snapshot_every = snapshot_every.max(1);
        r.recent_limit = recent_limit;
        let mut start = 0i64;
        if let Some((idx, blob)) = &rec.snapshot {
            r.install_durable_blob(blob);
            start = idx + 1; // snapshots are taken at `next_seq - 1`
        }
        r.incoming = InOrderBuffer::starting_at(start);
        // Replay the logged suffix through the normal execution path
        // (replies and 2PC sends are rendered and dropped; counters and
        // the reply cache advance exactly as they did pre-crash). The
        // replay also refills `recent`, so a just-recovered replica can
        // itself serve as a donor.
        let mut discard = Vec::new();
        for (seq, payload) in &rec.records {
            let d = Delivery {
                seq: *seq,
                client: slf,
                msgid: 0,
                payload: payload.clone(),
            };
            let ready = r.incoming.offer(d);
            r.execute_deliveries(slf, None, ready, &mut discard);
        }
        r.wal_snap_at = r.incoming.next_seq();
        r.wal = Some(Wal::open(disk));
        r.rejoin = true;
        r.donors = donors;
        r.sub_seq = None;
        r
    }

    /// Serializes a durable snapshot: `next_seq`, `executed`, the
    /// per-client reply cache, 2PC protocol state when sharded, and the
    /// row data. Reply-cache entries are sorted for determinism.
    fn durable_blob(&self, snapshot: &Snapshot) -> Value {
        type ReplyEntry = (i64, bool, Vec<SqlValue>);
        let mut entries: Vec<(&Loc, &ReplyEntry)> = self.last_reply.iter().collect();
        entries.sort_by_key(|(l, _)| **l);
        let replies = Value::list(entries.into_iter().map(
            |(client, (cseq, committed, result))| {
                Value::pair(
                    Value::Loc(*client),
                    Value::pair(
                        Value::Int(*cseq),
                        Value::pair(
                            Value::Bool(*committed),
                            Value::list(result.iter().map(sql_to_value)),
                        ),
                    ),
                )
            },
        ));
        let shard = match &self.engine {
            Some(e) => Value::pair(
                Value::list(self.twopc_seq.iter().map(|s| Value::Int(*s))),
                e.to_value(),
            ),
            None => Value::Unit,
        };
        Value::pair(
            Value::Int(self.incoming.next_seq()),
            Value::pair(
                Value::Int(self.executed),
                Value::pair(
                    replies,
                    Value::pair(shard, Value::Bytes(snapshot.to_bytes())),
                ),
            ),
        )
    }

    /// Restores the state [`Self::durable_blob`] captured.
    fn install_durable_blob(&mut self, blob: &Value) {
        let (_next_seq, rest) = blob.unpair();
        let (executed, rest) = rest.unpair();
        let (replies, rest) = rest.unpair();
        let (shard, db_bytes) = rest.unpair();
        if let Some(bytes) = db_bytes.as_bytes() {
            if let Ok(snapshot) = Snapshot::from_bytes(bytes.clone()) {
                let _ = self.db.restore(&snapshot);
            }
        }
        self.executed = executed.int();
        if let Some(list) = replies.as_list() {
            for e in list {
                let (client, rest) = e.unpair();
                let (cseq, rest) = rest.unpair();
                let (committed, result) = rest.unpair();
                let vals: Vec<SqlValue> = result.elems().iter().filter_map(value_to_sql).collect();
                self.last_reply.insert(
                    client.loc(),
                    (cseq.int(), committed.as_bool().unwrap_or(false), vals),
                );
            }
        }
        if let Some(role) = &self.role {
            if !matches!(shard, Value::Unit) {
                let (seqs, engine) = shard.unpair();
                let restored: Option<Vec<i64>> = seqs
                    .as_list()
                    .map(|l| l.iter().filter_map(Value::as_int).collect());
                if let Some(seqs) = restored {
                    if seqs.len() == role.map.shards() {
                        self.twopc_seq = seqs;
                    }
                }
                if let Some(e) =
                    TwoPcEngine::from_value(engine, role.map, role.shard, role.probe.clone())
                {
                    self.engine = Some(e);
                }
            }
        }
    }

    /// End-of-step durability, mirroring the PBR side: one fsync per
    /// step, a durable snapshot (with log truncation) every
    /// `snapshot_every` deliveries.
    fn flush_wal(&mut self) {
        if self.wal.is_none() {
            return;
        }
        let next = self.incoming.next_seq();
        if next - self.wal_snap_at >= self.snapshot_every {
            let snapshot = self.db.snapshot();
            let costs = self.db.profile().costs;
            self.step_cost +=
                Duration::from_micros(costs.scan_row_us * snapshot.row_count() as u64);
            let blob = self.durable_blob(&snapshot);
            let cost = self
                .wal
                .as_mut()
                .expect("checked")
                .save_snapshot(next - 1, &blob);
            self.wal_snap_at = next;
            self.step_cost += cost;
        } else {
            let w = self.wal.as_mut().expect("checked");
            if w.pending() > 0 {
                self.step_cost += w.commit();
            }
        }
    }

    fn note_transfer(&mut self, to: Loc, kind: TransferKind) {
        if let Some(p) = &self.transfer_probe {
            p.lock().push((to, kind));
        }
    }

    /// Builds the snapshot-fetch request sent to the donor replica.
    pub fn fetch_snapshot_msg(requester: Loc) -> Msg {
        Msg::new(FETCH_SNAPSHOT_HEADER, Value::Loc(requester))
    }

    /// A snapshot-fetch request the donor defers until it has executed at
    /// least `min_seq` deliveries.
    pub fn fetch_snapshot_after_msg(requester: Loc, min_seq: i64) -> Msg {
        Msg::new(
            FETCH_SNAPSHOT_HEADER,
            Value::pair(Value::Loc(requester), Value::Int(min_seq)),
        )
    }

    /// Overrides the state-transfer batch bound (~50 KB by default).
    pub fn set_transfer_batch_bytes(&mut self, bytes: usize) {
        assert!(bytes > 0, "batches need at least one byte");
        self.transfer_batch_bytes = bytes;
    }

    /// Number of transactions executed.
    pub fn executed(&self) -> i64 {
        self.executed
    }

    /// A handle to this replica's database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Executes a run of in-order deliveries, group-applying consecutive
    /// transactions under one engine commit. A group flushes when a client
    /// reappears: duplicate suppression consults `last_reply`, which must
    /// reflect the client's earlier request before its next one is
    /// examined.
    fn execute_deliveries<I>(
        &mut self,
        slf: Loc,
        now: Option<VTime>,
        ready: I,
        outs: &mut Vec<SendInstr>,
    ) where
        I: IntoIterator<Item = shadowdb_tob::Delivery>,
    {
        let mut group = std::mem::take(&mut self.group_scratch);
        group.clear();
        for d in ready {
            // Durability first: the raw delivery stream is what the WAL
            // mirrors (replay re-runs dedup and 2PC identically), and the
            // recent cache is what donors serve suffix rejoins from.
            if self.recent_limit > 0 {
                self.recent.push_back((d.seq, d.payload.clone()));
                while self.recent.len() > self.recent_limit {
                    self.recent.pop_front();
                }
            }
            if let Some(w) = self.wal.as_mut() {
                w.append(d.seq, &d.payload);
            }
            if let Some((holder, send_us)) = parse_lease_marker(&d.payload) {
                // Suppression is evaluated at each group's flush, so the
                // envelopes before the marker must answer under the old
                // holder, those after it under the new one.
                self.flush_group(slf, now, &mut group, outs);
                self.execute_lease_marker(slf, now, holder, send_us);
                continue;
            }
            let Some(env) = TxnEnvelope::from_value(&d.payload) else {
                continue;
            };
            // 2PC records break the run and step the protocol engine:
            // they must see the database outside the group's shared
            // engine transaction.
            if self.engine.is_some() && matches!(env.txn, TxnRequest::TwoPc(_)) {
                self.flush_group(slf, now, &mut group, outs);
                self.step_twopc(slf, &env, outs);
                continue;
            }
            if group.iter().any(|g| g.client == env.client) {
                self.flush_group(slf, now, &mut group, outs);
            }
            // Duplicate suppression (client resends surface as fresh
            // broadcast msgids but identical cseq — or as duplicate
            // deliveries filtered by the InOrderBuffer already; both are
            // covered).
            if let Some((last, committed, results)) = self.last_reply.get(&env.client) {
                if env.cseq <= *last {
                    if !self.replies_suppressed(slf, now) {
                        outs.push(SendInstr::now(
                            env.client,
                            reply_msg(slf, *last, *committed, results),
                        ));
                    }
                    continue;
                }
            }
            group.push(env);
        }
        self.flush_group(slf, now, &mut group, outs);
        self.group_scratch = group;
    }

    /// Installs the holder named by a marker delivered (or replayed) at
    /// this replica. The TOB totally orders markers, so every replica
    /// steps through the same holder sequence at the same slots; only
    /// the *local* timestamps anchoring suppression and the hand-off
    /// wait-out differ per replica.
    fn execute_lease_marker(&mut self, slf: Loc, now: Option<VTime>, holder: Loc, send_us: i64) {
        let Some(l) = self.lease.as_mut() else {
            return;
        };
        if holder == slf && l.holder != Some(slf) {
            let virgin = l.holder.is_none() && l.marker_send_us == 0 && l.marker_deliv.is_none();
            l.fast_from = if virgin {
                // No lease has ever existed: nothing to outwait.
                now.unwrap_or(VTime::ZERO)
            } else {
                // A hand-off: outwait the previous window entirely. It
                // ends no later than D after this replica received the
                // previous marker (delivery follows the send); when that
                // receipt time is unknown (WAL replay, post-recovery),
                // anchor on this marker's own delivery, which is no
                // earlier.
                l.marker_deliv.or(now).unwrap_or(VTime::ZERO) + l.opts.lease_duration
            };
        }
        // A renewal (self -> self) keeps `fast_from`: any write another
        // replica acknowledged between the markers was acknowledged only
        // after *its* suppression window lapsed, i.e. after this lease's
        // own end — so it linearizes after every fast read served here.
        l.holder = Some(holder);
        l.marker_send_us = send_us;
        l.marker_deliv = now;
    }

    /// Whether this replica must withhold client replies right now: a
    /// marker naming someone else is still fresh. While every non-holder
    /// stays silent, the first answer a client can observe comes from the
    /// holder — which therefore has executed everything it acknowledged,
    /// the invariant the fast read path rests on. Protocol traffic (2PC
    /// records) is never suppressed.
    fn replies_suppressed(&self, slf: Loc, now: Option<VTime>) -> bool {
        let Some(l) = &self.lease else {
            return false;
        };
        // WAL replay renders and discards all sends; suppression state is
        // irrelevant there.
        let Some(now) = now else {
            return false;
        };
        if l.holder == Some(slf) {
            return false;
        }
        match l.marker_deliv {
            Some(t) => now < t + l.opts.lease_duration,
            None => false,
        }
    }

    /// Applies `group` as one engine transaction and emits replies in
    /// delivery order, with per-transaction dedup/cost bookkeeping.
    fn flush_group(
        &mut self,
        slf: Loc,
        now: Option<VTime>,
        group: &mut Vec<TxnEnvelope>,
        outs: &mut Vec<SendInstr>,
    ) {
        if group.is_empty() {
            return;
        }
        let suppressed = self.replies_suppressed(slf, now);
        let reqs: Vec<&shadowdb_workloads::TxnRequest> = group.iter().map(|e| &e.txn).collect();
        let results = apply_group(&self.db, &reqs);
        drop(reqs);
        for (env, res) in group.drain(..).zip(results) {
            let (committed, results, cost) = res
                .map(|o| (o.committed, o.result, o.cost))
                .unwrap_or_else(|e| (false, vec![SqlValue::Text(e.to_string())], Duration::ZERO));
            self.step_cost += cost;
            self.executed += 1;
            self.last_reply
                .insert(env.client, (env.cseq, committed, results.clone()));
            // A suppressed reply is not lost: the reply cache advanced, so
            // the client's resend is answered the moment suppression
            // lapses (or by the holder meanwhile).
            if !suppressed {
                outs.push(SendInstr::now(
                    env.client,
                    reply_msg(slf, env.cseq, committed, &results),
                ));
            }
        }
    }

    /// Steps the 2PC engine on an ordered record and emits the owed
    /// actions. Every replica of the group emits (SMR has no primary);
    /// a record is durable the moment the TOB service ordered it, so no
    /// acknowledgment gating is needed. Duplicates re-derive the owed
    /// sends from replicated state without mutating anything.
    fn step_twopc(&mut self, slf: Loc, env: &TxnEnvelope, outs: &mut Vec<SendInstr>) {
        let TxnRequest::TwoPc(rec) = &env.txn else {
            return;
        };
        // A record whose cseq is *below* the sender's high-water mark is
        // not dropped: peer emissions can reach the broadcast service out
        // of order (each source replica sequences its own sends), so an
        // "old" record may carry a protocol step this group never saw.
        // Stepping it again is safe — the engine is idempotent.
        if let Some((last, _, _)) = self.last_reply.get(&env.client) {
            if env.cseq == *last {
                let (Some(role), Some(engine)) = (&self.role, &self.engine) else {
                    return;
                };
                let actions = engine.emissions(rec.txnid());
                outs.extend(role.render(slf, &actions, &mut self.twopc_seq));
                return;
            }
        }
        let (actions, cost) = self
            .engine
            .as_mut()
            .expect("engine present on the 2PC path")
            .step(rec, &self.db);
        self.step_cost += cost;
        self.executed += 1;
        // Placeholder entry: duplicates re-drive the protocol above,
        // never this cached value. The cseq is a high-water mark so a
        // reordered older record cannot regress it.
        let hw = self
            .last_reply
            .get(&env.client)
            .map_or(env.cseq, |(l, _, _)| env.cseq.max(*l));
        self.last_reply.insert(env.client, (hw, true, Vec::new()));
        let role = self.role.as_ref().expect("role present on the 2PC path");
        outs.extend(role.render(slf, &actions, &mut self.twopc_seq));
    }

    fn on_fetch_snapshot(&mut self, slf: Loc, body: &Value, outs: &mut Vec<SendInstr>) {
        let (requester, min_seq) = match body.as_loc() {
            Some(l) => (l, 0),
            None => match (body.fst(), body.snd()) {
                (Some(l), Some(s)) => match l.as_loc() {
                    Some(l) => (l, s.int()),
                    None => return,
                },
                _ => return,
            },
        };
        if self.incoming.next_seq() < min_seq {
            // Behind the requester's subscription point: a snapshot now
            // would leave a delivery gap the joiner can never fill. Answer
            // once execution has advanced past it.
            outs.push(SendInstr::after(
                Duration::from_millis(10),
                slf,
                Msg::new(FETCH_SNAPSHOT_HEADER, body.clone()),
            ));
            return;
        }
        let snapshot = self.db.snapshot();
        let batches = snapshot.to_batches(self.transfer_batch_bytes);
        let costs = self.db.profile().costs;
        // Snapshot preparation: session setup plus scanning every row.
        self.step_cost += Duration::from_millis(300)
            + Duration::from_micros(costs.scan_row_us * snapshot.row_count() as u64);
        let cols: usize = batches.iter().map(RowBatch::column_values).sum();
        self.step_cost += Duration::from_micros(costs.serialize_col_us * cols as u64);
        let total = batches.len() as i64;
        for (i, b) in batches.iter().enumerate() {
            outs.push(SendInstr::now(
                requester,
                Msg::new(
                    SNAPSHOT_CHUNK_HEADER,
                    Value::pair(
                        Value::Int(i as i64),
                        Value::pair(
                            Value::pair(Value::Int(total), Value::Int(self.incoming.next_seq())),
                            Value::Bytes(b.encode()),
                        ),
                    ),
                ),
            ));
        }
    }

    /// Fires (or retries) the snapshot fetch once the subscription point
    /// is known, rotating through the donor list and re-arming the retry
    /// timer — a donor crash mid-stream must not strand the joiner.
    fn kick_fetch(&mut self, slf: Loc, outs: &mut Vec<SendInstr>) {
        let Some(seq) = self.sub_seq else { return };
        if self.donors.is_empty() {
            return;
        }
        let donor = self.donors[(self.join_attempts as usize) % self.donors.len()];
        self.join_attempts += 1;
        outs.push(SendInstr::now(
            donor,
            SmrReplica::fetch_snapshot_after_msg(slf, seq),
        ));
        outs.push(SendInstr::after(
            Duration::from_secs(1),
            slf,
            Msg::new(JOIN_RETRY_HEADER, Value::Unit),
        ));
    }

    /// Fires (or retries) the missed-suffix fetch for a disk-recovered
    /// replica: ask a donor for deliveries `[next_seq, sub_seq)`,
    /// rotating through the donor list on retry.
    fn kick_delta(&mut self, slf: Loc, outs: &mut Vec<SendInstr>) {
        let Some(seq) = self.sub_seq else { return };
        if self.donors.is_empty() {
            return;
        }
        let donor = self.donors[(self.join_attempts as usize) % self.donors.len()];
        self.join_attempts += 1;
        outs.push(SendInstr::now(
            donor,
            Msg::new(
                FETCH_DELTA_HEADER,
                Value::pair(
                    Value::Loc(slf),
                    Value::pair(Value::Int(self.incoming.next_seq()), Value::Int(seq)),
                ),
            ),
        ));
        outs.push(SendInstr::after(
            Duration::from_secs(1),
            slf,
            Msg::new(JOIN_RETRY_HEADER, Value::Unit),
        ));
    }

    /// Donor side of a suffix rejoin. Serve `[from, next_seq)` from the
    /// recent-delivery cache when it reaches back to `from`; fall back to
    /// a full snapshot otherwise. Like a snapshot fetch, the request is
    /// deferred while this replica is behind the requester's subscription
    /// point.
    fn on_fetch_delta(&mut self, slf: Loc, body: &Value, outs: &mut Vec<SendInstr>) {
        let (requester, rest) = body.unpair();
        let (from, min_seq) = rest.unpair();
        let (requester, from, min_seq) = (requester.loc(), from.int(), min_seq.int());
        let next = self.incoming.next_seq();
        if next < min_seq {
            outs.push(SendInstr::after(
                Duration::from_millis(10),
                slf,
                Msg::new(FETCH_DELTA_HEADER, body.clone()),
            ));
            return;
        }
        let cache_start = next - self.recent.len() as i64;
        if from >= cache_start {
            let payloads: Vec<Value> = self
                .recent
                .iter()
                .filter(|(s, _)| *s >= from)
                .map(|(_, p)| p.clone())
                .collect();
            self.note_transfer(requester, TransferKind::Catchup);
            outs.push(SendInstr::now(
                requester,
                Msg::new(
                    DELTA_HEADER,
                    Value::pair(Value::Int(from), Value::list(payloads)),
                ),
            ));
        } else {
            self.note_transfer(requester, TransferKind::Snapshot);
            self.on_fetch_snapshot(
                slf,
                &Value::pair(Value::Loc(requester), Value::Int(min_seq)),
                outs,
            );
        }
    }

    /// Receiver side of a suffix rejoin: feed the donor's payloads into
    /// the in-order buffer as synthetic deliveries and execute normally —
    /// they are logged, cached, deduplicated, and answered exactly like
    /// live traffic (duplicate replies are harmless; clients drop them).
    fn on_delta(&mut self, slf: Loc, now: VTime, body: &Value, outs: &mut Vec<SendInstr>) {
        if !self.rejoin {
            return;
        }
        let (from, list) = body.unpair();
        let from = from.int();
        let Some(items) = list.as_list() else { return };
        let mut ready = Vec::new();
        for (k, payload) in items.iter().enumerate() {
            let d = Delivery {
                seq: from + k as i64,
                client: slf,
                msgid: 0,
                payload: payload.clone(),
            };
            ready.extend(self.incoming.offer(d));
        }
        self.execute_deliveries(slf, Some(now), ready, outs);
        if self.sub_seq.is_some_and(|s| self.incoming.next_seq() >= s) {
            // The suffix meets the live subscription: fully rejoined.
            self.rejoin = false;
        }
    }

    fn on_snapshot_chunk(&mut self, slf: Loc, now: VTime, body: &Value, outs: &mut Vec<SendInstr>) {
        if !self.joining && !self.rejoin {
            return;
        }
        let (i, rest) = body.unpair();
        let (meta, data) = rest.unpair();
        let (total, next_seq) = meta.unpair();
        // Chunks are keyed by their snapshot identity `(total, next_seq)`:
        // a retried fetch produces a later snapshot, and mixing chunk sets
        // across snapshots would restore garbage. Replicas are
        // deterministic state machines, so two snapshots with equal
        // identity have identical content and their chunks interchange.
        let id = (total.int(), next_seq.int());
        if self.snap_total != Some(id) {
            self.snap_chunks.clear();
            self.snap_total = Some(id);
        }
        if let Some(b) = data.as_bytes() {
            self.snap_chunks.insert(i.int(), b.clone());
        }
        let (total, next_seq) = self.snap_total.expect("just set");
        if (self.snap_chunks.len() as i64) < total {
            return;
        }
        let decoded: Result<Vec<RowBatch>, _> = self
            .snap_chunks
            .values()
            .map(|b| RowBatch::decode(b.clone()))
            .collect();
        let Ok(batches) = decoded else { return };
        let Ok(snapshot) = Snapshot::from_batches(&batches) else {
            return;
        };
        let costs = self.db.profile().costs;
        let rows: usize = batches.iter().map(|b| b.rows.len()).sum();
        let bytes: usize = batches.iter().map(RowBatch::encoded_len).sum();
        self.step_cost += Duration::from_micros(
            costs.bulk_insert_us * rows as u64 + costs.bulk_insert_byte_ns * bytes as u64 / 1_000,
        );
        if self.db.restore(&snapshot).is_err() {
            return;
        }
        self.joining = false;
        self.rejoin = false;
        // Skip everything the snapshot already covers, then replay whatever
        // arrived while joining.
        self.executed = next_seq;
        let held = std::mem::replace(&mut self.incoming, InOrderBuffer::starting_at(next_seq));
        // The cache must stay consecutive up to `next_seq`; pre-restore
        // entries no longer are.
        self.recent.clear();
        if self.wal.is_some() {
            // The network snapshot jumped execution past what the log
            // holds; force an immediate durable snapshot (end of this
            // step) so the disk never shows a log with a delivery gap.
            self.wal_snap_at = next_seq - self.snapshot_every;
        }
        let mut ready = Vec::new();
        for d in held.into_pending() {
            ready.extend(self.incoming.offer(d));
        }
        self.execute_deliveries(slf, Some(now), ready, outs);
        self.snap_chunks.clear();
        self.snap_total = None;
    }

    /// The holder's remaining fast window, if this replica may serve a
    /// fast read right now: it is the holder, past the hand-off wait-out,
    /// and within `send_ts + D - margin` of its own marker.
    fn lease_until(&self, ctx: &Ctx) -> Option<VTime> {
        let l = self.lease.as_ref()?;
        if l.holder != Some(ctx.slf) || ctx.now < l.fast_from {
            return None;
        }
        let horizon = l.opts.lease_duration.saturating_sub(l.opts.lease_margin);
        let until = VTime::from_micros(l.marker_send_us as u64) + horizon;
        (ctx.now < until).then_some(until)
    }

    /// Records a served fast read on the probe and/or the audit stream.
    fn note_lease_read(&mut self, ctx: &Ctx, until: VTime, outs: &mut Vec<SendInstr>) {
        let Some(l) = &self.lease else { return };
        if let Some(p) = &l.opts.lease_probe {
            p.lock().push((
                l.marker_send_us,
                ctx.slf,
                ctx.now.as_micros() as i64,
                until.as_micros() as i64,
            ));
        }
        if let Some(audit) = l.opts.lease_audit {
            outs.push(SendInstr::now(
                audit,
                lease_audit_msg(
                    l.marker_send_us,
                    ctx.slf,
                    ctx.now.as_micros() as i64,
                    until.as_micros() as i64,
                ),
            ));
        }
    }

    /// A transaction submitted *directly* to this replica (not through the
    /// TOB): the client's read fast path. A valid holder answers read-only
    /// transactions from its local database; everything else is forwarded
    /// into the TOB under this replica's own broadcast identity, so the
    /// ordered path still answers the client (mis-flagged envelopes
    /// included — the flag is advisory, never trusted for writes).
    fn on_submit(&mut self, ctx: &Ctx, body: &Value, outs: &mut Vec<SendInstr>) {
        let Some(env) = TxnEnvelope::from_value(body) else {
            return;
        };
        if env.read_only && !self.joining && !self.rejoin {
            if let Some(until) = self.lease_until(ctx) {
                if let Some(out) = env.txn.apply_read_only(&self.db) {
                    self.step_cost += out.cost;
                    self.note_lease_read(ctx, until, outs);
                    outs.push(SendInstr::now(
                        env.client,
                        reply_msg(ctx.slf, env.cseq, out.committed, &out.result),
                    ));
                    return;
                }
            }
        }
        let Some(l) = self.lease.as_mut() else {
            // No lease plane, so no TOB route of our own: drop, and the
            // client's broadcast resend covers the request.
            return;
        };
        let server = l.tob_servers[ctx.slf.index() as usize % l.tob_servers.len()];
        let msgid = l.msgid;
        l.msgid += 1;
        outs.push(SendInstr::now(
            server,
            broadcast_msg(ctx.slf, msgid, env.to_value()),
        ));
    }

    /// The renewal/claim tick. The holder re-broadcasts its marker each
    /// tick; a replica observing a lapsed (or absent) lease claims it
    /// after its rank-staggered patience runs out. Races are safe — the
    /// TOB totally orders markers and the latest one wins everywhere —
    /// the stagger only keeps the common case down to one claimant.
    fn on_lease_timer(&mut self, ctx: &Ctx, outs: &mut Vec<SendInstr>) {
        let Some(l) = &self.lease else { return };
        outs.push(SendInstr::after(
            l.opts.renew_every,
            ctx.slf,
            Msg::new(LEASE_TIMER_HEADER, Value::Unit),
        ));
        if self.joining || self.rejoin {
            return;
        }
        let l = self.lease.as_ref().expect("checked above");
        let claim = match (l.holder, l.marker_deliv) {
            // This replica holds the lease: renew unconditionally (a
            // lapsed own lease re-claims through the same marker).
            (Some(h), _) if h == ctx.slf => true,
            // Someone else holds it: claim only once it has lapsed and
            // this replica's stagger rank has run out.
            (_, Some(deliv)) => {
                let lapse = deliv + l.opts.lease_duration;
                ctx.now >= lapse + l.opts.renew_every * (l.claim_rank as u32)
            }
            // No live marker ever seen: rank-staggered initial claim.
            (_, None) => ctx.now >= VTime::ZERO + l.opts.renew_every * (l.claim_rank as u32),
        };
        if !claim {
            return;
        }
        let l = self.lease.as_mut().expect("checked above");
        let server = l.tob_servers[ctx.slf.index() as usize % l.tob_servers.len()];
        let msgid = l.msgid;
        l.msgid += 1;
        let marker = Value::pair(
            Value::str(LEASE_MARKER_TAG),
            Value::pair(Value::Loc(ctx.slf), Value::Int(ctx.now.as_micros() as i64)),
        );
        outs.push(SendInstr::now(
            server,
            broadcast_msg(ctx.slf, msgid, marker),
        ));
    }
}

impl Process for SmrReplica {
    fn step_into(&mut self, ctx: &Ctx, msg: &Msg, out: &mut Vec<SendInstr>) {
        if let Some(l) = self.lease.as_mut() {
            if l.post_recovery {
                // Replayed markers carry no receipt time, and a lease may
                // have been outstanding at the crash. Re-anchor suppression
                // at the first live instant and forget any replayed holder
                // identity: for one lease length this replica neither
                // serves fast reads nor acknowledges writes, which covers
                // every window that could have been granted before the
                // crash (suppressing too long is always safe).
                l.post_recovery = false;
                l.holder = None;
                l.marker_deliv = Some(ctx.now);
            }
        }
        let h = msg.header;
        if h == cached_header!(FETCH_SNAPSHOT_HEADER) {
            self.on_fetch_snapshot(ctx.slf, &msg.body, out);
        } else if h == cached_header!(SNAPSHOT_CHUNK_HEADER) {
            self.on_snapshot_chunk(ctx.slf, ctx.now, &msg.body, out);
        } else if h == cached_header!(FETCH_DELTA_HEADER) {
            self.on_fetch_delta(ctx.slf, &msg.body, out);
        } else if h == cached_header!(DELTA_HEADER) {
            self.on_delta(ctx.slf, ctx.now, &msg.body, out);
        } else if h == cached_header!(SUBMIT_HEADER) {
            self.on_submit(ctx, &msg.body, out);
        } else if h == cached_header!(LEASE_TIMER_HEADER) {
            self.on_lease_timer(ctx, out);
        } else if h == cached_header!(JOIN_RETRY_HEADER) {
            if self.joining {
                self.kick_fetch(ctx.slf, out);
            } else if self.rejoin {
                self.kick_delta(ctx.slf, out);
            }
        } else if let Some(seq) = parse_subok(msg) {
            // The subscription ack pins the join's `min_seq`: the first
            // ack wins (every broadcast server acks its own sequence, and
            // each covers all slots from its ack onward, so any single ack
            // is a safe lower bound for the fetch).
            if self.rejoin && self.sub_seq.is_none() {
                self.sub_seq = Some(seq);
                // Run the delta handshake even when the disk already
                // reaches the subscription point (the suffix is then
                // empty): the donor's answer is the observable record
                // that the rejoin took the suffix path, and feeding an
                // empty delta completes the rejoin immediately.
                self.kick_delta(ctx.slf, out);
            } else if self.joining && self.sub_seq.is_none() {
                self.sub_seq = Some(seq);
                self.kick_fetch(ctx.slf, out);
            }
        } else if let Some(d) = parse_deliver(msg) {
            let ready = self.incoming.offer(d);
            if !self.joining {
                self.execute_deliveries(ctx.slf, Some(ctx.now), ready, out);
            }
        }
        // Durability before visibility: fsync whatever this step logged
        // before the runtime dispatches the step's sends.
        self.flush_wal();
    }

    fn take_step_cost(&mut self) -> Duration {
        std::mem::take(&mut self.step_cost)
    }

    fn clone_box(&self) -> Box<dyn Process> {
        let db = Database::new(self.db.profile().clone());
        db.restore(&self.db.snapshot())
            .expect("snapshot of a valid database restores");
        Box::new(SmrReplica {
            db,
            incoming: self.incoming.clone(),
            last_reply: self.last_reply.clone(),
            executed: self.executed,
            joining: self.joining,
            donors: self.donors.clone(),
            sub_seq: self.sub_seq,
            join_attempts: self.join_attempts,
            snap_chunks: self.snap_chunks.clone(),
            snap_total: self.snap_total,
            transfer_batch_bytes: self.transfer_batch_bytes,
            step_cost: self.step_cost,
            group_scratch: Vec::new(),
            role: self.role.clone(),
            engine: self.engine.clone(),
            twopc_seq: self.twopc_seq.clone(),
            // As in PBR: model checking never runs durable replicas;
            // reopening keeps the fork well-formed for read-only use.
            wal: self.wal.as_ref().map(|w| Wal::open(w.disk().clone())),
            wal_snap_at: self.wal_snap_at,
            snapshot_every: self.snapshot_every,
            rejoin: self.rejoin,
            recent: self.recent.clone(),
            recent_limit: self.recent_limit,
            transfer_probe: self.transfer_probe.clone(),
            lease: self.lease.clone(),
        })
    }

    fn digest(&self, hasher: &mut dyn Hasher) {
        let mut h = HasherAdapter(hasher);
        (self.executed, self.joining, self.incoming.next_seq()).hash(&mut h);
        (self.sub_seq, self.join_attempts, self.rejoin).hash(&mut h);
        self.twopc_seq.hash(&mut h);
        if let Some(l) = &self.lease {
            // Replicated lease state only: the holder sequence and its
            // stamps are functions of the delivered TOB prefix; the local
            // receipt times (`marker_deliv`, `fast_from`) are not.
            (l.holder, l.marker_send_us, l.msgid).hash(&mut h);
        }
    }
}
