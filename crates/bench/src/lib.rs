//! Shared harness machinery for the experiment binaries.
//!
//! One binary per table/figure of the paper (see `src/bin/`); this library
//! holds what they share: closed-loop sweep drivers, steady-state
//! measurement, the analytic baseline servers of Fig. 9, and plain-text
//! series output.
//!
//! Run `cargo run --release -p shadowdb-bench --bin <name>` with
//! `table1`, `fig8`, `fig9a`, `fig9b`, `fig10a`, `fig10b`, or one of the
//! `ablation_*` binaries. Every binary accepts `--full` to run at the
//! paper's original scale (the default is scaled down ~10× to finish in
//! seconds; shapes are unaffected).

pub mod baselines;
pub mod cost;
pub mod measure;
pub mod netload;
pub mod output;

/// Returns true when `--full` was passed (paper-scale runs).
pub fn full_scale() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Scales a paper-sized count down unless `--full` was passed.
pub fn scaled(paper: usize, divisor: usize) -> usize {
    if full_scale() {
        paper
    } else {
        (paper / divisor).max(1)
    }
}
