//! Ablation: state-transfer batch size.
//!
//! The paper chose batches "close to 50 kilobytes in serialized form"
//! (Sec. IV-B). This harness sweeps the batch bound for a 50,000-row
//! transfer and reports the transfer time and message count: tiny batches
//! drown in per-message overhead, huge ones stop pipelining serialization
//! against insertion and bloat single messages.

use shadowdb_bench::output;
use shadowdb_loe::VTime;
use shadowdb_simnet::{NetworkConfig, SimBuilder, SimStats};
use shadowdb_sqldb::{Database, EngineProfile};
use shadowdb_workloads::bank;

fn run(batch_bytes: usize) -> (f64, u64) {
    let db = Database::new(EngineProfile::h2());
    bank::load(&db, 50_000).expect("loads");
    let mut sim = SimBuilder::new(6)
        .network(NetworkConfig::lan())
        .cost_model(shadowdb_simnet::FnCost(|_l, m: &shadowdb_eventml::Msg| {
            // Per-message fixed handling cost: what makes tiny batches bad.
            if m.header.name() == shadowdb::smr::SNAPSHOT_CHUNK_HEADER {
                std::time::Duration::from_micros(400)
            } else {
                std::time::Duration::ZERO
            }
        }))
        .build();
    let mut donor = shadowdb::smr::SmrReplica::new(db);
    donor_set_batch(&mut donor, batch_bytes);
    let donor_loc = sim.add_node(Box::new(donor));
    let joiner = sim.add_node(Box::new(shadowdb::smr::SmrReplica::joining(Database::new(
        EngineProfile::h2(),
    ))));
    sim.send_at(
        VTime::ZERO,
        donor_loc,
        shadowdb::smr::SmrReplica::fetch_snapshot_msg(joiner),
    );
    let end = sim.run_until_quiescent(VTime::from_secs(36_000));
    let SimStats { delivered, .. } = sim.stats();
    (end.as_secs_f64(), delivered)
}

fn donor_set_batch(donor: &mut shadowdb::smr::SmrReplica, bytes: usize) {
    donor.set_transfer_batch_bytes(bytes);
}

fn main() {
    output::banner(
        "Ablation — state-transfer batch size",
        "the ~50 KB batch choice of Sec. IV-B",
    );
    let rows: Vec<(String, String)> = [512usize, 4 * 1024, 50 * 1024, 500 * 1024, 5 * 1024 * 1024]
        .iter()
        .map(|&b| {
            let (t, msgs) = run(b);
            (
                format!("{:>8} B", b),
                format!("{t:>7.2} s  ({msgs} messages)"),
            )
        })
        .collect();
    output::pairs("50,000-row transfer", "batch bound", "time", &rows);
    println!();
    println!("~50 KB sits at the knee: little per-message overhead left to save,");
    println!("and single messages stay small enough not to stall the receiver.");
}
