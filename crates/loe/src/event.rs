//! Concrete event orderings: traces of located, causally linked events.

use crate::ids::{EventId, Loc, VTime};

/// One event of a distributed execution.
///
/// In LoE, an event is a point in space/time tagged with the message that
/// triggered it. `cause` links a receive event to the event at which the
/// message was sent (the "caused by" relation of the paper); it is `None`
/// for spontaneous events such as external client inputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event<M> {
    id: EventId,
    loc: Loc,
    time: VTime,
    msg: M,
    cause: Option<EventId>,
    sender: Option<Loc>,
}

impl<M> Event<M> {
    /// The identity of this event within its trace.
    pub fn id(&self) -> EventId {
        self.id
    }

    /// The location at which the event occurred (`loc(e)` in the paper).
    pub fn loc(&self) -> Loc {
        self.loc
    }

    /// The virtual time at which the event occurred.
    pub fn time(&self) -> VTime {
        self.time
    }

    /// The message that triggered the event.
    pub fn msg(&self) -> &M {
        &self.msg
    }

    /// The send event that caused this event, if it resulted from a message.
    pub fn cause(&self) -> Option<EventId> {
        self.cause
    }

    /// The location that sent the triggering message, if known.
    pub fn sender(&self) -> Option<Loc> {
        self.sender
    }
}

/// A finite event ordering: the trace of one execution.
///
/// Events are stored in a global order consistent with causality (events are
/// appended as they occur, and an event's cause always precedes it). Per
/// LoE, two order relations are derived:
///
/// * **causal order** `e < e'` — the transitive closure of local order
///   (same location, earlier) and the caused-by relation;
/// * **happens-before** `e → e'` — Lamport's relation, which this trace
///   model makes coincide with causal order.
///
/// # Example
///
/// ```
/// use shadowdb_loe::{EventOrder, Loc, VTime};
/// let mut eo = EventOrder::new();
/// let send = eo.record(Loc::new(0), VTime::from_micros(1), "m", None, None);
/// let recv = eo.record(Loc::new(1), VTime::from_micros(9), "m", Some(send), Some(Loc::new(0)));
/// assert!(eo.happens_before(send, recv));
/// assert_eq!(eo.local_pred(recv), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct EventOrder<M> {
    events: Vec<Event<M>>,
}

impl<M> EventOrder<M> {
    /// Creates an empty trace.
    pub fn new() -> Self {
        EventOrder { events: Vec::new() }
    }

    /// Appends an event and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `cause` refers to an event not yet in the trace, or if
    /// `time` precedes the time of the last event at the same location
    /// (local clocks cannot run backwards).
    pub fn record(
        &mut self,
        loc: Loc,
        time: VTime,
        msg: M,
        cause: Option<EventId>,
        sender: Option<Loc>,
    ) -> EventId {
        if let Some(c) = cause {
            assert!(
                c.index() < self.events.len(),
                "cause {c} must precede the event it causes"
            );
        }
        if let Some(prev) = self.events.iter().rev().find(|e| e.loc == loc) {
            assert!(
                prev.time <= time,
                "events at {loc} must be recorded in time order"
            );
        }
        let id = EventId::new(self.events.len() as u32);
        self.events.push(Event {
            id,
            loc,
            time,
            msg,
            cause,
            sender,
        });
        id
    }

    /// Number of events in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Looks up an event by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this trace.
    pub fn event(&self, id: EventId) -> &Event<M> {
        &self.events[id.index()]
    }

    /// Iterates over all events in global order.
    pub fn iter(&self) -> impl Iterator<Item = &Event<M>> {
        self.events.iter()
    }

    /// Iterates over the events at one location, in local order.
    pub fn at(&self, loc: Loc) -> impl Iterator<Item = &Event<M>> {
        self.events.iter().filter(move |e| e.loc == loc)
    }

    /// The latest event at `loc` strictly before `e` (the `pred(e)` of the
    /// paper's ILF characterizations), or `None` if `e` is `first(e)` at its
    /// location.
    pub fn local_pred(&self, e: EventId) -> Option<EventId> {
        let loc = self.event(e).loc;
        self.events[..e.index()]
            .iter()
            .rev()
            .find(|p| p.loc == loc)
            .map(|p| p.id)
    }

    /// Whether `e` is the first event at its location.
    pub fn is_first(&self, e: EventId) -> bool {
        self.local_pred(e).is_none()
    }

    /// Lamport's happens-before `a → b` (equivalently, LoE causal order for
    /// this trace model). Implemented as the paper's recursive definition:
    /// there exists an event `e < b` with (if at a different location)
    /// `b caused by e`, such that `e = a` or `a → e`.
    pub fn happens_before(&self, a: EventId, b: EventId) -> bool {
        crate::causal::happens_before(self, a, b)
    }
}

impl<M> std::ops::Index<EventId> for EventOrder<M> {
    type Output = Event<M>;
    fn index(&self, id: EventId) -> &Event<M> {
        self.event(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> Loc {
        Loc::new(i)
    }
    fn t(us: u64) -> VTime {
        VTime::from_micros(us)
    }

    #[test]
    fn record_and_lookup() {
        let mut eo = EventOrder::new();
        let e0 = eo.record(l(0), t(1), "a", None, None);
        let e1 = eo.record(l(1), t(2), "b", Some(e0), Some(l(0)));
        assert_eq!(eo.len(), 2);
        assert_eq!(eo[e0].msg(), &"a");
        assert_eq!(eo[e1].cause(), Some(e0));
        assert_eq!(eo[e1].sender(), Some(l(0)));
    }

    #[test]
    fn local_pred_and_first() {
        let mut eo = EventOrder::new();
        let e0 = eo.record(l(0), t(1), 0, None, None);
        let e1 = eo.record(l(1), t(2), 1, None, None);
        let e2 = eo.record(l(0), t(3), 2, None, None);
        assert!(eo.is_first(e0));
        assert!(eo.is_first(e1));
        assert_eq!(eo.local_pred(e2), Some(e0));
        assert!(!eo.is_first(e2));
    }

    #[test]
    fn at_filters_by_location() {
        let mut eo = EventOrder::new();
        eo.record(l(0), t(1), 0, None, None);
        eo.record(l(1), t(2), 1, None, None);
        eo.record(l(0), t(3), 2, None, None);
        let msgs: Vec<i32> = eo.at(l(0)).map(|e| *e.msg()).collect();
        assert_eq!(msgs, vec![0, 2]);
    }

    #[test]
    #[should_panic]
    fn cause_must_precede() {
        let mut eo = EventOrder::new();
        eo.record(l(0), t(1), 0, Some(EventId::new(9)), None);
    }

    #[test]
    #[should_panic]
    fn local_time_monotone() {
        let mut eo = EventOrder::new();
        eo.record(l(0), t(5), 0, None, None);
        eo.record(l(0), t(4), 1, None, None);
    }
}
