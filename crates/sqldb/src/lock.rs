//! Strict two-phase locking with timeout-abort.
//!
//! The paper's baseline engines differ crucially in lock granularity: "H2
//! does not offer row-level locks" and "the in-memory storage engine of
//! MySQL only provides table locking", while InnoDB locks rows. Under
//! contention, table-locking engines time out trying to lock the table and
//! abort — the mechanism behind the early saturation of H2 replication in
//! Fig. 9(a). This lock manager implements both granularities with
//! shared/exclusive modes, upgrades, and timeout.

use crate::value::SqlValue;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Locking granularity of an engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LockGranularity {
    /// Whole-table locks (H2, HSQLDB default, MySQL memory engine).
    Table,
    /// Row-level locks (InnoDB-like).
    Row,
}

/// Lock modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Shared (readers).
    Shared,
    /// Exclusive (writers).
    Exclusive,
}

/// A lockable resource.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// A whole table.
    Table(String),
    /// One row, identified by table and primary key.
    Row(String, Vec<SqlValue>),
}

impl Resource {
    /// The table this resource belongs to.
    pub fn table(&self) -> &str {
        match self {
            Resource::Table(t) | Resource::Row(t, _) => t,
        }
    }
}

/// Transaction identity for the lock manager.
pub type TxnId = u64;

/// Restriction of a database's lock table to one shard's slice of the
/// keyspace. In a sharded deployment each replica group stores only its
/// own partition; scoping the lock table enforces that at apply time — a
/// transaction misrouted to the wrong group fails to lock (and therefore
/// to write) rows it does not own, instead of silently materialising
/// them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardScope {
    /// Total number of shards (1 admits everything).
    pub shards: usize,
    /// The shard this database owns.
    pub shard: usize,
    /// `(table, offset)` rules: an integer first key `k` of a listed
    /// table belongs here iff `(k - offset).rem_euclid(shards) == shard`.
    /// Unlisted tables are exempt — replicated catalogs (TPC-C `item`)
    /// and append-only side tables (`history`) live on every shard.
    pub tables: Vec<(String, i64)>,
}

impl ShardScope {
    /// Scope for the bank schema: `accounts` keyed directly by id.
    pub fn bank(shards: usize, shard: usize) -> ShardScope {
        ShardScope {
            shards,
            shard,
            tables: vec![("accounts".into(), 0)],
        }
    }

    /// Scope for the TPC-C schema: every warehouse-keyed table leads its
    /// primary key with the (1-based) warehouse id.
    pub fn tpcc(shards: usize, shard: usize) -> ShardScope {
        let tables = [
            "warehouse",
            "district",
            "customer",
            "orders",
            "new_order",
            "order_line",
            "stock",
        ];
        ShardScope {
            shards,
            shard,
            tables: tables.iter().map(|t| (t.to_string(), 1)).collect(),
        }
    }

    /// Whether a row of `table` with primary key `key` belongs to this
    /// shard. Non-integer and missing first keys are admitted: the scope
    /// is a routing guard, not a type checker.
    pub fn admits(&self, table: &str, key: &[SqlValue]) -> bool {
        if self.shards <= 1 {
            return true;
        }
        let Some((_, offset)) = self.tables.iter().find(|(t, _)| t == table) else {
            return true;
        };
        match key.first() {
            Some(SqlValue::Int(k)) => {
                (k - offset).rem_euclid(self.shards as i64) == self.shard as i64
            }
            _ => true,
        }
    }
}

#[derive(Debug, Default)]
struct LockState {
    /// Current holders and their strongest mode.
    holders: HashMap<TxnId, LockMode>,
}

impl LockState {
    fn compatible(&self, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => self
                .holders
                .iter()
                .all(|(t, m)| *t == txn || *m == LockMode::Shared),
            LockMode::Exclusive => self.holders.keys().all(|t| *t == txn),
        }
    }
}

/// The lock manager: blocking acquisition with timeout.
#[derive(Debug, Default)]
pub struct LockManager {
    table: Mutex<HashMap<Resource, LockState>>,
    changed: Condvar,
    scope: Mutex<Option<ShardScope>>,
}

impl LockManager {
    /// Creates an empty lock manager.
    pub fn new() -> LockManager {
        LockManager::default()
    }

    /// Restricts the lock table to one shard's key slice.
    pub fn set_scope(&self, scope: ShardScope) {
        *self.scope.lock() = Some(scope);
    }

    /// The current shard scope, if any.
    pub fn scope(&self) -> Option<ShardScope> {
        self.scope.lock().clone()
    }

    /// Whether a row of `table` keyed `key` is inside the shard scope
    /// (vacuously true when unscoped).
    pub fn admits(&self, table: &str, key: &[SqlValue]) -> bool {
        match &*self.scope.lock() {
            Some(s) => s.admits(table, key),
            None => true,
        }
    }

    fn res_in_scope(&self, res: &Resource) -> bool {
        match res {
            Resource::Table(_) => true,
            Resource::Row(t, key) => self.admits(t, key),
        }
    }

    /// Acquires (or upgrades to) `mode` on `res` for `txn`, waiting at most
    /// `timeout`. Returns `false` on timeout — the caller must abort, as
    /// the engines the paper measures do. Rows outside the shard scope are
    /// refused immediately.
    pub fn acquire(&self, txn: TxnId, res: Resource, mode: LockMode, timeout: Duration) -> bool {
        if !self.res_in_scope(&res) {
            return false;
        }
        let deadline = Instant::now() + timeout;
        let mut table = self.table.lock();
        loop {
            let state = table.entry(res.clone()).or_default();
            if let Some(held) = state.holders.get(&txn) {
                if *held == LockMode::Exclusive || mode == LockMode::Shared {
                    return true; // already strong enough
                }
            }
            if state.compatible(txn, mode) {
                state.holders.insert(txn, mode);
                return true;
            }
            if self.changed.wait_until(&mut table, deadline).timed_out() {
                return false;
            }
        }
    }

    /// Non-blocking acquisition attempt.
    pub fn try_acquire(&self, txn: TxnId, res: Resource, mode: LockMode) -> bool {
        if !self.res_in_scope(&res) {
            return false;
        }
        let mut table = self.table.lock();
        let state = table.entry(res.clone()).or_default();
        if let Some(held) = state.holders.get(&txn) {
            if *held == LockMode::Exclusive || mode == LockMode::Shared {
                return true;
            }
        }
        if state.compatible(txn, mode) {
            state.holders.insert(txn, mode);
            true
        } else {
            false
        }
    }

    /// Releases every lock held by `txn` (commit or abort).
    pub fn release_all(&self, txn: TxnId) {
        let mut table = self.table.lock();
        table.retain(|_, state| {
            state.holders.remove(&txn);
            !state.holders.is_empty()
        });
        self.changed.notify_all();
    }

    /// Number of currently locked resources (for tests).
    pub fn locked_resources(&self) -> usize {
        self.table.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn table_res() -> Resource {
        Resource::Table("t".into())
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        assert!(lm.try_acquire(1, table_res(), LockMode::Shared));
        assert!(lm.try_acquire(2, table_res(), LockMode::Shared));
        assert!(!lm.try_acquire(3, table_res(), LockMode::Exclusive));
        lm.release_all(1);
        lm.release_all(2);
        assert!(lm.try_acquire(3, table_res(), LockMode::Exclusive));
    }

    #[test]
    fn exclusive_excludes() {
        let lm = LockManager::new();
        assert!(lm.try_acquire(1, table_res(), LockMode::Exclusive));
        assert!(!lm.try_acquire(2, table_res(), LockMode::Shared));
        assert!(lm.try_acquire(1, table_res(), LockMode::Shared)); // reentrant
    }

    #[test]
    fn upgrade_when_sole_holder() {
        let lm = LockManager::new();
        assert!(lm.try_acquire(1, table_res(), LockMode::Shared));
        assert!(lm.try_acquire(1, table_res(), LockMode::Exclusive));
        assert!(!lm.try_acquire(2, table_res(), LockMode::Shared));
    }

    #[test]
    fn upgrade_blocked_by_other_reader() {
        let lm = LockManager::new();
        assert!(lm.try_acquire(1, table_res(), LockMode::Shared));
        assert!(lm.try_acquire(2, table_res(), LockMode::Shared));
        assert!(!lm.try_acquire(1, table_res(), LockMode::Exclusive));
    }

    #[test]
    fn row_locks_are_independent() {
        let lm = LockManager::new();
        let r1 = Resource::Row("t".into(), vec![SqlValue::Int(1)]);
        let r2 = Resource::Row("t".into(), vec![SqlValue::Int(2)]);
        assert!(lm.try_acquire(1, r1.clone(), LockMode::Exclusive));
        assert!(lm.try_acquire(2, r2, LockMode::Exclusive));
        assert!(!lm.try_acquire(2, r1, LockMode::Exclusive));
    }

    #[test]
    fn acquire_times_out_then_succeeds_after_release() {
        let lm = Arc::new(LockManager::new());
        assert!(lm.acquire(
            1,
            table_res(),
            LockMode::Exclusive,
            Duration::from_millis(10)
        ));
        // Contender times out while txn 1 holds the lock.
        assert!(!lm.acquire(
            2,
            table_res(),
            LockMode::Exclusive,
            Duration::from_millis(30)
        ));
        // Release in another thread while a waiter blocks.
        let lm2 = lm.clone();
        let waiter = std::thread::spawn(move || {
            lm2.acquire(
                3,
                Resource::Table("t".into()),
                LockMode::Exclusive,
                Duration::from_secs(5),
            )
        });
        std::thread::sleep(Duration::from_millis(20));
        lm.release_all(1);
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn shard_scope_rejects_foreign_rows() {
        let lm = LockManager::new();
        lm.set_scope(ShardScope::bank(2, 0));
        let own = Resource::Row("accounts".into(), vec![SqlValue::Int(4)]);
        let foreign = Resource::Row("accounts".into(), vec![SqlValue::Int(5)]);
        assert!(lm.try_acquire(1, own, LockMode::Exclusive));
        assert!(!lm.try_acquire(1, foreign.clone(), LockMode::Exclusive));
        assert!(!lm.acquire(1, foreign, LockMode::Shared, Duration::from_secs(5)));
        // Unlisted tables and table-level locks stay exempt.
        assert!(lm.try_acquire(
            1,
            Resource::Row("item".into(), vec![SqlValue::Int(5)]),
            LockMode::Exclusive
        ));
        assert!(lm.try_acquire(1, Resource::Table("accounts".into()), LockMode::Shared));
    }

    #[test]
    fn tpcc_scope_uses_one_based_warehouses() {
        let s = ShardScope::tpcc(2, 1);
        // Warehouse 2 → (2-1) % 2 == 1 → shard 1.
        assert!(s.admits("warehouse", &[SqlValue::Int(2)]));
        assert!(!s.admits("warehouse", &[SqlValue::Int(1)]));
        assert!(s.admits("stock", &[SqlValue::Int(2), SqlValue::Int(77)]));
        assert!(!s.admits("order_line", &[SqlValue::Int(1), SqlValue::Int(3)]));
        // item is replicated, history is append-only: both exempt.
        assert!(s.admits("item", &[SqlValue::Int(1)]));
        assert!(s.admits("history", &[SqlValue::Int(1)]));
        // Single shard admits everything.
        assert!(ShardScope::bank(1, 0).admits("accounts", &[SqlValue::Int(7)]));
    }

    #[test]
    fn release_all_clears_state() {
        let lm = LockManager::new();
        lm.try_acquire(1, table_res(), LockMode::Exclusive);
        lm.try_acquire(
            1,
            Resource::Row("t".into(), vec![SqlValue::Int(1)]),
            LockMode::Exclusive,
        );
        assert_eq!(lm.locked_resources(), 2);
        lm.release_all(1);
        assert_eq!(lm.locked_resources(), 0);
    }
}
