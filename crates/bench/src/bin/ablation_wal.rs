//! Ablation: WAL durability — fsync batch size × snapshot interval.
//!
//! The durability plane commits the WAL at group-apply boundaries (one
//! fsync per delivered group, not per transaction) and takes a periodic
//! snapshot that truncates the log. This harness sweeps the two knobs
//! separately, on a real file-backed disk under the OS temp dir:
//!
//! * **fsync batch size** — the same record stream appended and
//!   committed in groups of 1..256. A group of 1 is the naive durable
//!   design (an fsync per transaction); larger groups amortize the sync
//!   into one platter round trip per batch, which is the group-commit
//!   claim `perf_smoke` gates at ≥5×.
//! * **snapshot interval** — a fixed 4,096-record history snapshotted
//!   every 16..1024 records, then recovered. The interval buys a
//!   shorter replay (fewer records past the snapshot) at the price of
//!   more snapshot writes during the run; the log bytes left on disk
//!   and the wall-clock recovery scan shrink with it.
//!
//! Expected shape: commit throughput climbs roughly linearly with the
//! batch until the append `write()` itself dominates (past ~64 the sync
//! is amortized away); recovery cost tracks the records left above the
//! last snapshot — about half the interval on average — while the
//! snapshot count during the run is inversely proportional to it.

use shadowdb_bench::output;
use shadowdb_eventml::Value;
use shadowdb_runtime::StorageMode;
use shadowdb_wal::{recover, Disk, Wal};
use std::time::{Duration, Instant};

/// A bank transaction's framed apply record is ~100 bytes.
fn record() -> Value {
    Value::pair(
        Value::Int(7),
        Value::Bytes(bytes::Bytes::from(vec![0xA5u8; 96])),
    )
}

/// Appends `txns` records committing every `group`, on a fresh
/// file-backed disk. Returns (txns/sec, syncs performed).
fn commit_run(mode: &StorageMode, txns: usize, group: usize) -> (f64, u64) {
    let disk = Disk::open(mode, &format!("commit-g{group}"), Duration::ZERO);
    let mut wal = Wal::open(disk.clone());
    let body = record();
    let t = Instant::now();
    for i in 0..txns {
        wal.append(i as i64, &body);
        if (i + 1) % group == 0 {
            wal.commit();
        }
    }
    wal.commit();
    (txns as f64 / t.elapsed().as_secs_f64(), disk.sync_count())
}

/// Runs a fixed-length history with a snapshot every `every`, then
/// recovers the disk. Returns (snapshots taken, log bytes at recovery,
/// records replayed past the snapshot, recovery micros).
fn snapshot_run(mode: &StorageMode, txns: usize, every: usize) -> (usize, usize, usize, f64) {
    let disk = Disk::open(mode, &format!("snap-e{every}"), Duration::ZERO);
    let mut wal = Wal::open(disk.clone());
    let body = record();
    // The snapshot blob models a small-bank dump: size-independent of
    // the interval, so the sweep isolates the log-suffix effect.
    let blob = Value::Bytes(bytes::Bytes::from(vec![0x5Au8; 4 * 1024]));
    let mut snaps = 0usize;
    for i in 0..txns {
        wal.append(i as i64, &body);
        if (i + 1) % 64 == 0 {
            wal.commit();
        }
        if (i + 1) % every == 0 {
            wal.save_snapshot(i as i64, &blob);
            snaps += 1;
        }
    }
    wal.commit();
    let log_bytes = disk.synced_len();
    let t = Instant::now();
    let rec = recover(&disk);
    let us = t.elapsed().as_secs_f64() * 1e6;
    assert_eq!(rec.high_index(), txns as i64 - 1, "recovery lost records");
    (snaps, log_bytes, rec.records.len(), us)
}

fn main() {
    output::banner(
        "Ablation — WAL durability: fsync batch size × snapshot interval",
        "the durability plane's group commit and log-truncation knobs",
    );
    let root = StorageMode::fresh_file_root("ablation-wal");
    let mode = StorageMode::File { root: root.clone() };

    const TXNS: usize = 2_000;
    let mut rows: Vec<(String, String)> = Vec::new();
    for &group in &[1usize, 8, 64, 256] {
        let (rate, syncs) = commit_run(&mode, TXNS, group);
        rows.push((
            format!("group of {group:>3}"),
            format!("{rate:>9.0} txns/s  ({syncs} fsyncs)"),
        ));
    }
    output::pairs(
        &format!("{TXNS} appends, one fsync per commit group"),
        "fsync batch",
        "throughput",
        &rows,
    );

    // Not a multiple of any interval, so the crash point always leaves a
    // genuine suffix past the last snapshot — the replay work the sweep
    // is about. (A multiple would snapshot away the whole history and
    // make every row recover in zero.)
    const HISTORY: usize = 3_999;
    let mut rows: Vec<(String, String)> = Vec::new();
    for &every in &[16usize, 64, 256, 1_024] {
        let (snaps, log_bytes, replayed, us) = snapshot_run(&mode, HISTORY, every);
        rows.push((
            format!("every {every:>4}"),
            format!("{replayed:>4} replayed, {log_bytes:>6} B log, {us:>6.0} us recovery  ({snaps} snaps)"),
        ));
    }
    output::pairs(
        &format!("{HISTORY}-record history, then recover from disk"),
        "snapshot",
        "recovery",
        &rows,
    );

    let _ = std::fs::remove_dir_all(&root);
    println!();
    println!("Group commit amortizes the sync: throughput climbs with the batch until");
    println!("the append write itself dominates. The snapshot interval trades snapshot");
    println!("writes during the run for replay work at recovery: the log suffix past");
    println!("the last snapshot — what restart-from-disk must re-execute — shrinks");
    println!("linearly with the interval, as do the bytes recovery has to scan.");
}
