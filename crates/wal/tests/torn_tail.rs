//! Property-based torn-write recovery: the log may be cut or corrupted
//! at *any* byte, and recovery must stay total.
//!
//! Three obligations, matching the durability plane's contract:
//!
//! 1. **Never panics**: recovery over a truncated or bit-flipped log is
//!    a pure scan — no `unwrap` on untrusted bytes, no allocation sized
//!    from a corrupt length prefix (the codec already guarantees the
//!    latter; these properties exercise it through the WAL framing).
//! 2. **Valid prefix**: whatever survives is a *prefix* of what was
//!    appended — corruption can cost the tail, never reorder, duplicate,
//!    or invent records. Records wholly before the damage always
//!    survive: a committed (fsynced) transaction ahead of the corruption
//!    point is never lost.
//! 3. **Idempotence**: recovering twice — including re-tearing an
//!    already-recovered disk — yields the same state. A power loss
//!    *during* recovery is just another recovery.

use proptest::prelude::*;
use shadowdb_eventml::Value;
use shadowdb_wal::{recover, Disk, Wal};
use std::time::Duration;

/// Distinguishable record bodies (index is carried separately by the
/// frame; the body must roundtrip byte-exactly).
fn body(i: i64) -> Value {
    Value::pair(
        Value::Int(i * 31 + 7),
        Value::str(&format!("txn-{i}-payload")),
    )
}

/// A disk with `n` committed records (indexes `0..n`), plus each
/// record's end offset in the log (frames are variable-size: varint
/// ints and growing strings).
fn committed_disk(n: usize) -> (Disk, Vec<usize>) {
    let disk = Disk::in_memory(Duration::ZERO);
    let mut wal = Wal::open(disk.clone());
    let mut ends = Vec::with_capacity(n);
    for i in 0..n {
        wal.append(i as i64, &body(i as i64));
        wal.commit();
        ends.push(disk.synced_len());
    }
    (disk, ends)
}

/// Asserts `rec` is a prefix of `0..n` with intact bodies.
fn assert_prefix(records: &[(i64, Value)], n: usize) -> Result<(), TestCaseError> {
    prop_assert!(records.len() <= n);
    for (k, (idx, val)) in records.iter().enumerate() {
        prop_assert_eq!(*idx, k as i64);
        prop_assert_eq!(val, &body(k as i64));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Truncating the log at an arbitrary byte never panics and always
    /// yields a valid prefix; every record wholly before the cut
    /// survives.
    #[test]
    fn truncation_yields_a_valid_prefix(n in 0usize..40, cut_pm in 0u64..=1000) {
        let (disk, ends) = committed_disk(n);
        let full = disk.synced_len();
        let cut = (full * cut_pm as usize) / 1000;
        disk.truncate_synced(cut);
        let rec = recover(&disk);
        assert_prefix(&rec.records, n)?;
        if cut == full {
            // An uncut log loses nothing.
            prop_assert_eq!(rec.records.len(), n);
        }
        // Every frame that lies wholly inside the cut must survive.
        let intact = ends.iter().filter(|e| **e <= cut).count();
        prop_assert!(rec.records.len() >= intact);
    }

    /// Flipping an arbitrary bit never panics; recovery still yields a
    /// valid prefix, and every record wholly before the flipped byte
    /// survives.
    #[test]
    fn bit_flip_yields_a_valid_prefix(n in 1usize..40, bit_pm in 0u64..1000) {
        let (disk, ends) = committed_disk(n);
        let bits = disk.synced_len() * 8;
        let bit = (bits * bit_pm as usize / 1000).min(bits - 1);
        disk.flip_bit(bit);
        let rec = recover(&disk);
        assert_prefix(&rec.records, n)?;
        // Every record that ends before the damaged byte must survive.
        let intact = ends.iter().filter(|e| **e <= bit / 8).count();
        prop_assert!(
            rec.records.len() >= intact,
            "lost a record before the corruption point: kept {} of {}, {} intact",
            rec.records.len(), n, intact
        );
    }

    /// Recovery is idempotent: recovering an already-recovered disk —
    /// even through another power-loss tear — changes nothing.
    #[test]
    fn double_recovery_is_idempotent(
        n in 0usize..40,
        cut_pm in 0u64..=1000,
        seed in any::<u64>(),
    ) {
        let (disk, _ends) = committed_disk(n);
        disk.truncate_synced(disk.synced_len() * cut_pm as usize / 1000);
        let first = recover(&disk);
        // A second crash during/after recovery: everything is synced, so
        // the tear has nothing to bite and recovery must be stable.
        disk.begin_recovery(seed);
        let second = recover(&disk);
        prop_assert_eq!(first.records, second.records);
        prop_assert_eq!(first.snapshot, second.snapshot);
    }

    /// A power-loss tear of the unsynced tail never touches committed
    /// records: the commit point is the durability line.
    #[test]
    fn torn_unsynced_tail_never_loses_committed_records(
        committed in 0usize..25,
        uncommitted in 0usize..25,
        seed in any::<u64>(),
    ) {
        let disk = Disk::in_memory(Duration::ZERO);
        let mut wal = Wal::open(disk.clone());
        for i in 0..committed {
            wal.append(i as i64, &body(i as i64));
        }
        wal.commit();
        for i in committed..committed + uncommitted {
            wal.append(i as i64, &body(i as i64));
        }
        // Power loss mid-fsync: an arbitrary prefix of the unsynced tail
        // (possibly with a flipped bit) reaches the platter.
        disk.begin_recovery(seed);
        let rec = recover(&disk);
        prop_assert!(rec.records.len() >= committed, "lost a committed record");
        prop_assert!(rec.records.len() <= committed + uncommitted);
        assert_prefix(&rec.records, committed + uncommitted)?;
    }

    /// Snapshots compose with corruption: the snapshot is installed
    /// atomically, so recovery yields the snapshot plus a valid prefix
    /// of the post-snapshot records.
    #[test]
    fn snapshot_plus_torn_log_recovers_consistently(
        before in 1usize..20,
        after in 0usize..20,
        cut_pm in 0u64..=1000,
    ) {
        let disk = Disk::in_memory(Duration::ZERO);
        let mut wal = Wal::open(disk.clone());
        for i in 0..before {
            wal.append(i as i64, &body(i as i64));
        }
        wal.commit();
        let snap_at = (before - 1) as i64;
        wal.save_snapshot(snap_at, &Value::str("state-blob"));
        for i in before..before + after {
            wal.append(i as i64, &body(i as i64));
        }
        wal.commit();
        disk.truncate_synced(disk.synced_len() * cut_pm as usize / 1000);
        let rec = recover(&disk);
        // The snapshot file is separate from the log; log corruption
        // cannot lose it.
        let (idx, blob) = rec.snapshot.clone().expect("snapshot survives log damage");
        prop_assert_eq!(idx, snap_at);
        prop_assert_eq!(blob, Value::str("state-blob"));
        // Post-snapshot records are a prefix of `before..before+after`.
        prop_assert!(rec.records.len() <= after);
        for (k, (i, v)) in rec.records.iter().enumerate() {
            let expect = (before + k) as i64;
            prop_assert_eq!(*i, expect);
            prop_assert_eq!(v, &body(expect));
        }
        prop_assert!(rec.high_index() >= snap_at);
    }
}
