//! Ablation: online replica replacement — transfer batch size ×
//! concurrent load.
//!
//! The paper transfers recovery state in batches "close to 50 kilobytes
//! in serialized form" (Sec. IV-B) and overlaps the transfer with live
//! traffic (Sec. III-A). This harness replaces one backup of a serving
//! PBR group through `ReconfigHandle::replace_replica` and sweeps the
//! two knobs that shape the rejoin time: the state-transfer batch bound,
//! and how much live load the group is carrying while the joiner catches
//! up.
//!
//! Two arrangements make the batch bound actually bite. First, the
//! replica's executed-transaction cache is kept far smaller than the
//! executed history before the replacement, so the joiner cannot replay
//! the log and must take the snapshot path — a full dump of the 50,000
//! bank rows, which is what gets batched. Second, snapshot chunks carry
//! a per-message fixed handling cost (as in `ablation_xferbatch`),
//! modeling the framing/syscall/decode work that makes tiny batches bad.
//! The model composes with the TOB deployment's `ModeCost` and must be
//! installed *after* `PbrDeployment::build` (the broadcast-service
//! deployment installs its own model, replacing whatever the builder
//! carried).
//!
//! The failure detector is deliberately slackened to 2 s: snapshot
//! preparation charges the donor a scan of every row, and a detector
//! tighter than that stall suspects the donor *because it is donating* —
//! cascading the group through bogus failovers (see DESIGN.md §11 on the
//! perfect-failure-detector assumption).
//!
//! Expected shape: tiny batches drown the transfer in per-message
//! overhead; past the ~50 KB knee the batch bound stops mattering and
//! the fixed serialization (donor) and bulk-insert (joiner) costs
//! dominate. Overlapped transfer absorbs concurrent load: rejoin time
//! stays flat across load levels while commits keep landing in every
//! loaded cell — the group never pauses.

use shadowdb::deploy::{DeployOptions, PbrDeployment};
use shadowdb::diversity::DiversityPolicy;
use shadowdb::msgs::{SNAPSHOT2_HEADER, SNAPSHOT_HEADER};
use shadowdb::pbr::PbrOptions;
use shadowdb_bench::output;
use shadowdb_eventml::Msg;
use shadowdb_loe::Loc;
use shadowdb_runtime::{CostModel, Runtime};
use shadowdb_simnet::{NetworkConfig, SimBuilder};
use shadowdb_tob::mode::ModeCost;
use shadowdb_tob::ExecutionMode;
use shadowdb_workloads::bank;
use std::time::Duration;

const ROWS: usize = 50_000;
const TXNS_PER_CLIENT: usize = 300;

/// The TOB service's calibrated cost model plus a fixed per-chunk
/// handling charge on snapshot transfer messages.
struct XferCost {
    inner: ModeCost,
}

impl CostModel for XferCost {
    fn handle_cost(&self, dest: Loc, msg: &Msg) -> Duration {
        let h = msg.header.name();
        let chunk = if h == SNAPSHOT_HEADER || h == SNAPSHOT2_HEADER {
            // Per-message fixed handling cost: what makes tiny batches bad.
            Duration::from_micros(400)
        } else {
            Duration::ZERO
        };
        self.inner.handle_cost(dest, msg) + chunk
    }
}

/// Replaces a backup with the given transfer batch bound; `live` clients
/// keep submitting during the transfer (0 = the workload fully drains
/// first, isolating the pure transfer time). Returns (rejoin ms, commits
/// during the replacement window).
fn run(batch_bytes: usize, live: usize) -> (f64, usize) {
    let clients = live.max(2);
    let mut sim = SimBuilder::new(0x5EC0 ^ (batch_bytes as u64) ^ ((live as u64) << 40))
        .network(NetworkConfig::lan())
        .build();
    let options = DeployOptions {
        client_timeout: Duration::from_millis(400),
        ..DeployOptions::new(
            clients,
            |client| {
                let mut g = bank::BankGen::new(23 + client as u64, ROWS);
                (0..TXNS_PER_CLIENT).map(|_| g.next_txn()).collect()
            },
            |db| bank::load(db, ROWS).expect("loads"),
        )
    };
    let pbr = PbrOptions {
        heartbeat_every: Duration::from_millis(50),
        // Slack detector: the donor stalls for the snapshot scan, and a
        // detector tighter than that stall suspects it mid-transfer.
        detect_after: Duration::from_secs(2),
        // A cache far smaller than the executed history at replacement
        // time: the joiner must take the snapshot path, which is what
        // the batch bound shapes.
        cache_limit: 100,
        transfer_batch_bytes: batch_bytes,
        // Sec. III-A overlapped transfer: the group resumes once the
        // first backup recovers; the joiner catches up under live load.
        overlapped_transfer: true,
        ..PbrOptions::default()
    };
    let d = PbrDeployment::build(&mut sim, &options, pbr.clone());
    sim.set_cost_model(XferCost {
        inner: ModeCost::new(ExecutionMode::Compiled, d.tob.service_locs.clone()),
    });
    let mut handle = d.reconfig(&mut sim, pbr, DiversityPolicy::Uniform, |db| {
        bank::load(db, ROWS).expect("loads")
    });
    let committed =
        |d: &PbrDeployment| -> usize { d.stats.iter().map(|s| s.lock().completed.len()).sum() };
    // Execute well past the cache limit so the join cannot replay the
    // log; with `live == 0`, drain the workload entirely first.
    let warm = if live == 0 {
        clients * TXNS_PER_CLIENT
    } else {
        (clients * TXNS_PER_CLIENT / 4).max(200)
    };
    while committed(&d) < warm {
        sim.run_for(Duration::from_millis(5));
    }
    let before = committed(&d);
    let t0 = sim.now();
    handle
        .replace_replica(&mut sim, d.replicas[1], Duration::from_secs(600))
        .expect("replacement completes");
    let ms = (sim.now().as_micros() - t0.as_micros()) as f64 / 1_000.0;
    (ms, committed(&d) - before)
}

fn main() {
    output::banner(
        "Ablation — online replacement: batch size × concurrent load",
        "Sec. IV-B's ~50 KB transfer batches under Sec. III-A's overlapped recovery",
    );
    let batches = [4 * 1024usize, 50 * 1024, 500 * 1024];
    let loads = [0usize, 2, 8];
    let mut rows: Vec<(String, String)> = Vec::new();
    for &live in &loads {
        for &batch in &batches {
            let (ms, commits) = run(batch, live);
            rows.push((
                format!("{:>7} B, {live} live client(s)", batch),
                format!("{ms:>8.1} ms rejoin  ({commits} commits during)"),
            ));
        }
    }
    output::pairs(
        "replace one backup of a serving 3-replica group (50,000 rows)",
        "batch × load",
        "rejoin",
        &rows,
    );
    println!();
    println!("Tiny batches pay per-message handling on every chunk; past the ~50 KB");
    println!("knee the fixed serialize/insert costs dominate. Overlapped transfer");
    println!("absorbs live load: rejoin stays flat and the group never pauses.");
}
