//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! workspace vendors minimal implementations of the external crates it uses.
//! This one provides [`Bytes`], [`BytesMut`], [`Buf`] and [`BufMut`] with the
//! exact semantics the workspace relies on: cheap clones and cheap zero-copy
//! `split_to`/`slice` through a shared `Arc<Vec<u8>>`, plus the
//! slice-reference entry points ([`Bytes::from_shared`]) the zero-copy
//! frame-decode path builds on: a reassembly buffer can hand out `Bytes`
//! views of its own storage, and `Arc::get_mut` on that storage tells the
//! owner whether any view is still alive before it mutates in place.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable view into shared contiguous memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wraps a static slice without copying.
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// A view of `data[start..end]` sharing `data`'s storage — the
    /// slice-reference constructor the zero-copy frame path uses: the
    /// reassembly buffer clones its `Arc` per decoded frame, and as long
    /// as any such view is alive, `Arc::get_mut` on the buffer fails and
    /// the owner knows it must not reuse the storage in place.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > data.len()`.
    pub fn from_shared(data: Arc<Vec<u8>>, start: usize, end: usize) -> Bytes {
        assert!(
            start <= end && end <= data.len(),
            "from_shared range out of bounds"
        );
        Bytes { data, start, end }
    }

    /// An address identifying the backing storage: two `Bytes` with equal
    /// `storage_id` alias the same allocation. Diagnostic/test hook for
    /// asserting a decode really was zero-copy.
    pub fn storage_id(&self) -> usize {
        Arc::as_ptr(&self.data) as usize
    }

    /// The number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of this view (zero-copy).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `n` bytes, advancing `self` past
    /// them (zero-copy).
    ///
    /// # Panics
    ///
    /// Panics if `n > len`.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        // Moves the allocation behind the `Arc` — no byte copy.
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        // Same backing store and range: equal without looking at content.
        (Arc::ptr_eq(&self.data, &other.data) && self.start == other.start && self.end == other.end)
            || self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Read cursor (for the `Buf` impl).
    pos: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(n: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(n),
            pos: 0,
        }
    }

    /// The number of unread bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the buffer has no unread bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Converts the unread bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        if self.pos == 0 {
            Bytes::from(self.data)
        } else {
            Bytes::from(self.data[self.pos..].to_vec())
        }
    }

    /// Discards all bytes (read and unread) while keeping the allocation,
    /// so a scratch buffer can be reused without reallocating.
    pub fn clear(&mut self) {
        self.data.clear();
        self.pos = 0;
    }

    /// Splits off and returns the first `n` unread bytes, advancing `self`
    /// past them. Upstream does this zero-copy inside one allocation; this
    /// stand-in copies, which preserves the semantics (and the consumed
    /// prefix is reclaimed once it dominates the buffer, so a long-lived
    /// read cursor does not grow without bound).
    ///
    /// # Panics
    ///
    /// Panics if `n > len`.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = self.data[self.pos..self.pos + n].to_vec();
        self.pos += n;
        if self.pos >= 4096 && self.pos * 2 >= self.data.len() {
            self.data.drain(..self.pos);
            self.pos = 0;
        }
        BytesMut { data: head, pos: 0 }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let pos = self.pos;
        &mut self.data[pos..]
    }
}

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `n`.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// All `get_*` readers panic when the buffer is exhausted.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(raw)
    }
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }
    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        i64::from_le_bytes(raw)
    }
    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        f64::from_le_bytes(raw)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.pos += n;
    }
}

/// Write access to a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_split() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32_le(0xdead_beef);
        b.put_slice(b"xyz");
        assert_eq!(b.len(), 8);
        let mut frozen = b.freeze();
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u32_le(), 0xdead_beef);
        let tail = frozen.split_to(2);
        assert_eq!(&tail[..], b"xy");
        assert_eq!(&frozen[..], b"z");
    }

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        let s = b.slice(1..3);
        assert_eq!(&s[..], &[2, 3]);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn clear_retains_capacity_and_split_to_advances() {
        let mut b = BytesMut::with_capacity(64);
        b.put_slice(b"hello world");
        let head = b.split_to(6);
        assert_eq!(&head[..], b"hello ");
        assert_eq!(&b[..], b"world");
        let cap = b.data.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.data.capacity(), cap, "clear must keep the allocation");
        b.put_u8(9);
        assert_eq!(&b[..], &[9]);
        // DerefMut allows in-place patching (length-prefix fixup).
        b[0] = 7;
        assert_eq!(&b[..], &[7]);
    }

    #[test]
    fn from_shared_aliases_storage() {
        let storage = Arc::new(vec![1u8, 2, 3, 4, 5]);
        let a = Bytes::from_shared(storage.clone(), 1, 4);
        let b = Bytes::from_shared(storage.clone(), 0, 2);
        assert_eq!(&a[..], &[2, 3, 4]);
        assert_eq!(&b[..], &[1, 2]);
        assert_eq!(a.storage_id(), b.storage_id());
        // The owner can tell views are alive: get_mut must fail.
        let mut storage = storage;
        assert!(Arc::get_mut(&mut storage).is_none());
        drop((a, b));
        assert!(Arc::get_mut(&mut storage).is_some());
    }

    #[test]
    fn equality_and_hash_by_content() {
        use std::collections::hash_map::DefaultHasher;
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(a, b);
        let h = |x: &Bytes| {
            let mut s = DefaultHasher::new();
            x.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&a), h(&b));
    }
}
