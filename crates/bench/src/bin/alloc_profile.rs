//! Allocation profile of the per-message hot paths: counts heap
//! allocations (and bytes) per step for the interpreted and fused forms of
//! the shipped specifications. A development aid for keeping the fused
//! path allocation-light; run with `cargo run --release --bin alloc_profile`.

use shadowdb_consensus::twothird::{propose_msg, TwoThird, TwoThirdConfig};
use shadowdb_eventml::optimize::optimize;
use shadowdb_eventml::{clk, Ctx, InterpretedProcess, Process, SendInstr, Value};
use shadowdb_loe::Loc;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: Counting = Counting;

fn measure<F: FnMut()>(label: &str, steps: u64, mut f: F) {
    // Warm once so one-time lazy init (interning, statics) is excluded.
    f();
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let b0 = BYTES.load(Ordering::Relaxed);
    let t = std::time::Instant::now();
    f();
    let dt = t.elapsed();
    let da = ALLOCS.load(Ordering::Relaxed) - a0;
    let db = BYTES.load(Ordering::Relaxed) - b0;
    println!(
        "{label:<28} {:>6.1} allocs/step {:>7.1} B/step {:>9.1} ns/step",
        da as f64 / steps as f64,
        db as f64 / steps as f64,
        dt.as_nanos() as f64 / steps as f64,
    );
}

fn main() {
    let config = TwoThirdConfig::new(Loc::first_n(3), vec![Loc::new(100)]).with_auto_adopt();
    let class = TwoThird::new(config).class();
    let msgs: Vec<_> = (0..8).map(|i| propose_msg(i, Value::Int(i))).collect();
    let ctx = Ctx::at(Loc::new(0));
    let mut out: Vec<SendInstr> = Vec::with_capacity(16);

    measure("twothird/interpreted", 8, || {
        let mut p = InterpretedProcess::compile(&class);
        for m in &msgs {
            out.clear();
            p.step_into(&ctx, m, &mut out);
        }
    });
    measure("twothird/fused", 8, || {
        let mut p = optimize(&class);
        for m in &msgs {
            out.clear();
            p.step_into(&ctx, m, &mut out);
        }
    });
    // Steady state: the same warm process stepping many fresh instances.
    let mut p = optimize(&class);
    let mut i = 0i64;
    measure("twothird/fused_steady", 64, || {
        for _ in 0..64 {
            out.clear();
            p.step_into(&ctx, &propose_msg(i, Value::Int(i)), &mut out);
            i += 1;
        }
    });

    let clk_class = clk::handler_class(clk::ring_handle(3));
    let clk_msg = clk::clk_msg(Value::Int(0), 3);
    measure("clk/interpreted", 1, || {
        let mut p = InterpretedProcess::compile(&clk_class);
        out.clear();
        p.step_into(&ctx, &clk_msg, &mut out);
    });
    measure("clk/fused", 1, || {
        let mut p = optimize(&clk_class);
        out.clear();
        p.step_into(&ctx, &clk_msg, &mut out);
    });
    let mut p = optimize(&clk_class);
    measure("clk/fused_steady", 64, || {
        for _ in 0..64 {
            out.clear();
            p.step_into(&ctx, &clk_msg, &mut out);
        }
    });
    let mut p = InterpretedProcess::compile(&clk_class);
    measure("clk/interp_steady", 64, || {
        for _ in 0..64 {
            out.clear();
            p.step_into(&ctx, &clk_msg, &mut out);
        }
    });

    // Setup (program construction) cost, for context.
    measure("clk/optimize_only", 1, || {
        std::hint::black_box(optimize(&clk_class));
    });
    measure("clk/compile_only", 1, || {
        std::hint::black_box(InterpretedProcess::compile(&clk_class));
    });
}
