//! End-to-end coverage of the lease-based read fast path.
//!
//! Both shipping deployments run a YCSB-B-shaped read/update mix with
//! leases enabled; the probes prove fast reads were actually served
//! (not silently falling back to the ordered path), and every client's
//! history passes the concurrent strict-serializability checker — a fast
//! read carries exactly the same real-time obligations as an ordered
//! one. A deliberately broken "stale holder" double shows the checker
//! has teeth: a read served from a frozen database after a covering
//! write *must* fail it.

use parking_lot::Mutex;
use shadowdb::deploy::{DeployOptions, PbrDeployment, SmrDeployment};
use shadowdb::pbr::{LeaseProbe, PbrOptions};
use shadowdb::serializability::{check_bank_history_concurrent, Observation, Violation};
use shadowdb::smr::SmrLeaseOptions;
use shadowdb_loe::VTime;
use shadowdb_sqldb::Database;
use shadowdb_workloads::kv::{KvGen, KvOptions};
use shadowdb_workloads::{apply_group, bank, TxnRequest};
use std::sync::Arc;
use std::time::Duration;

const ROWS: usize = 64;
const CLIENTS: usize = 2;
const TXNS_EACH: usize = 60;

fn kv_script(client: usize) -> Vec<TxnRequest> {
    let mut g = KvGen::new(7_000 + client as u64, KvOptions::ycsb_b(ROWS));
    g.script(TXNS_EACH)
}

fn kv_options() -> DeployOptions {
    DeployOptions::new(CLIENTS, kv_script, |db| {
        bank::load(db, ROWS).expect("bank loads")
    })
}

/// Collects every client's committed observations against the scripts
/// the deployment actually ran.
fn collect(stats: &[Arc<Mutex<shadowdb::client::DbClientStats>>]) -> Vec<Observation> {
    stats
        .iter()
        .enumerate()
        .flat_map(|(i, s)| s.lock().observations(&kv_script(i)))
        .collect()
}

/// No two locations may ever serve fast reads under overlapping lease
/// intervals — the single-holder guarantee, as the probes recorded it.
fn assert_single_holder(probe: &LeaseProbe) {
    let rows = probe.lock();
    for a in rows.iter() {
        for b in rows.iter() {
            if a.1 != b.1 {
                assert!(
                    !(a.2 < b.3 && b.2 < a.3),
                    "two holders served overlapping lease intervals: {a:?} vs {b:?}"
                );
            }
        }
    }
}

#[test]
fn pbr_read_leases_serve_fast_reads_and_stay_linearizable() {
    let mut sim = shadowdb_simnet::testing::default_net(21);
    let probe: LeaseProbe = Arc::new(Mutex::new(Vec::new()));
    let pbr = PbrOptions {
        read_leases: true,
        lease_probe: Some(probe.clone()),
        // Tight heartbeats so echoes go fresh while clients are still
        // submitting; the default 1 s cadence outlives this short mix.
        heartbeat_every: Duration::from_millis(10),
        ..PbrOptions::default()
    };
    let d = PbrDeployment::build(&mut sim, &kv_options(), pbr);
    sim.run_until_quiescent(VTime::from_secs(300));
    assert_eq!(d.committed(), CLIENTS * TXNS_EACH, "every txn answered");
    assert!(
        !probe.lock().is_empty(),
        "the 95%-read mix must actually exercise the fast path"
    );
    assert_single_holder(&probe);
    check_bank_history_concurrent(&collect(&d.stats), 1_000)
        .expect("fast-path reads are strictly serializable");
}

#[test]
fn smr_read_leases_serve_fast_reads_and_stay_linearizable() {
    let mut sim = shadowdb_simnet::testing::default_net(22);
    let probe: LeaseProbe = Arc::new(Mutex::new(Vec::new()));
    let mut options = kv_options();
    options.smr_leases = Some(SmrLeaseOptions {
        lease_probe: Some(probe.clone()),
        ..SmrLeaseOptions::default()
    });
    let d = SmrDeployment::build(&mut sim, &options);
    sim.run_until_quiescent(VTime::from_secs(300));
    assert_eq!(d.committed(), CLIENTS * TXNS_EACH, "every txn answered");
    assert!(
        !probe.lock().is_empty(),
        "the holder must serve fast reads without a broadcast round"
    );
    assert_single_holder(&probe);
    check_bank_history_concurrent(&collect(&d.stats), 1_000)
        .expect("fast-path reads are strictly serializable");
}

/// The deliberately broken double: a "holder" that keeps serving reads
/// from a frozen database after its lease should have expired — exactly
/// the failure a broken lease implementation would produce. The answer is
/// produced by the *same* `apply_read_only` the real fast path uses; only
/// the database is stale. The checker must reject the history.
#[test]
fn stale_lease_read_fails_the_checker() {
    let live = Database::new(shadowdb_sqldb::EngineProfile::h2());
    bank::load(&live, 4).expect("bank loads");
    let stale_holder = Database::new(shadowdb_sqldb::EngineProfile::h2());
    bank::load(&stale_holder, 4).expect("bank loads");

    // A deposit commits on the ordered path and answers at t = 10 ms; the
    // broken holder never hears of it.
    let deposit = TxnRequest::BankDeposit {
        account: 0,
        amount: 50,
    };
    apply_group(&live, &[&deposit])
        .pop()
        .expect("one result")
        .expect("deposit commits");
    let mut observations = vec![Observation {
        submitted: VTime::from_millis(1),
        answered: VTime::from_millis(10),
        txn: deposit,
        result: Vec::new(),
    }];

    // A fast read submitted strictly after the deposit's answer must see
    // it; the stale double still reports the initial balance.
    let read = TxnRequest::BankRead { account: 0 };
    let out = read
        .apply_read_only(&stale_holder)
        .expect("reads take the fast path");
    observations.push(Observation {
        submitted: VTime::from_millis(20),
        answered: VTime::from_millis(21),
        txn: read.clone(),
        result: out.result,
    });
    match check_bank_history_concurrent(&observations, 1_000) {
        Err(Violation::ReadOutOfBounds { observed, min, .. }) => {
            assert_eq!(observed, 1_000);
            assert_eq!(min, 1_050);
        }
        other => panic!("a stale fast read must be caught, got {other:?}"),
    }

    // Sanity: the same read served by a *correct* holder passes.
    let ok = read.apply_read_only(&live).expect("fast path");
    observations.pop();
    observations.push(Observation {
        submitted: VTime::from_millis(20),
        answered: VTime::from_millis(21),
        txn: read,
        result: ok.result,
    });
    check_bank_history_concurrent(&observations, 1_000).expect("a fresh holder's read passes");
}
