//! A real TCP runtime for GPM processes: every inter-node message crosses
//! a byte boundary over a `std::net` loopback socket.
//!
//! This is the repository's counterpart of the paper's testbed wiring —
//! ShadowDB's generated processes exchanging framed messages over real
//! sockets — and the fourth substrate behind the [`Runtime`] seam: the
//! same unmodified `PbrDeployment`/`SmrDeployment`/TOB builders that run
//! under the simulator, on thread channels, and inside the model checker
//! deploy here onto actual TCP connections.
//!
//! # Architecture
//!
//! * Every location (node or port) owns a loopback `TcpListener`; accepted
//!   connections get a reader thread that reassembles length-prefixed
//!   frames (`shadowdb_eventml::codec`) and pushes decoded messages into
//!   the destination's inbox.
//! * Every node runs on its own thread, stepping the hosted [`Process`]
//!   and writing remote sends through lazily established per-link
//!   connections (reconnect with capped exponential backoff, FIFO per
//!   link, allocation-free steady-state encodes). Delayed sends are held
//!   in a sender-local timer heap until due.
//! * A control thread schedules external injections ([`TcpNet::send_at`])
//!   and fault actions: [`TcpNet::crash_at`] *drops the node's thread*
//!   (volatile state, timers, and outbound connections die with it) and
//!   [`TcpNet::restart_at`] spawns a fresh thread behind the same
//!   listener, so crash-recovery behaves like a process restart behind a
//!   stable address.
//! * Driver ports ([`TcpNet::port`]) are loopback listeners too: replies
//!   to a client port travel over a socket like any other message.
//!
//! [`TcpNet::shutdown`] follows the same deterministic join-all
//! discipline as `shadowdb-livenet`: control thread, node threads,
//! listener threads (unblocked by a poison connect), and reader threads
//! (unblocked by writer EOF) are all joined before it returns.
//!
//! # Example
//!
//! ```
//! use shadowdb_eventml::{Ctx, FnProcess, Msg, SendInstr, Value};
//! use shadowdb_tcpnet::TcpNet;
//!
//! let mut net = TcpNet::new();
//! let echo = net.add_node(Box::new(FnProcess::new((), |_s, _c: &Ctx, m: &Msg| {
//!     match m.body.as_loc() {
//!         Some(from) => vec![SendInstr::now(from, Msg::new("pong", Value::Unit))],
//!         None => vec![],
//!     }
//! })));
//! let (port, rx) = TcpNet::port(&mut net);
//! net.send(echo, Msg::new("ping", Value::Loc(port)));
//! let reply = rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
//! assert_eq!(reply.header.name(), "pong");
//! net.shutdown();
//! ```

mod link;
mod node;
mod registry;

use crossbeam::channel::{self, Receiver, Sender};
use link::Links;
use node::spawn_node_thread;
use registry::{spawn_listener, NodeCtl, NodeGate, Registry, SlotInfo, Target};
use shadowdb_eventml::{Msg, Process};
use shadowdb_loe::{Loc, VTime};
use shadowdb_runtime::{FaultPlan, PortRx, Runtime};

pub use registry::LinkStats;
use std::collections::BinaryHeap;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// An action the control thread performs when its instant comes due.
enum Act {
    /// Deliver an externally injected message (over a real socket).
    Deliver(Loc, Msg),
    /// Drop the node's thread: volatile state and timers are lost and
    /// deliveries are silently dropped until restart.
    Crash(Loc),
    /// Spawn a fresh thread for the location behind its existing listener.
    Restart(Loc, Box<dyn Process>),
}

enum Ctl {
    At { at: Instant, act: Act },
    Shutdown,
}

struct Due {
    at: Instant,
    seq: u64,
    act: Act,
}

impl PartialEq for Due {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Due {}
impl PartialOrd for Due {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Due {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A running TCP network of process nodes.
pub struct TcpNet {
    start: Instant,
    registry: Arc<Registry>,
    ctl: Sender<Ctl>,
    ctl_handle: Option<JoinHandle<()>>,
    listener_handles: Vec<JoinHandle<()>>,
}

impl TcpNet {
    /// An empty running network (control thread only); add nodes with
    /// [`TcpNet::add_node`].
    pub fn new() -> TcpNet {
        let start = Instant::now();
        let registry = Registry::new(start);
        let (ctl_tx, ctl_rx) = channel::unbounded::<Ctl>();
        let ctl_handle = {
            let registry = registry.clone();
            std::thread::spawn(move || control_loop(registry, start, ctl_rx))
        };
        TcpNet {
            start,
            registry,
            ctl: ctl_tx,
            ctl_handle: Some(ctl_handle),
            listener_handles: Vec::new(),
        }
    }

    /// Hosts `process` at the next location: binds its listener, then
    /// spawns its node thread.
    pub fn add_node(&mut self, process: Box<dyn Process>) -> Loc {
        let (tx, rx) = channel::unbounded::<NodeCtl>();
        let gate = Arc::new(Mutex::new(NodeGate { tx, crashed: false }));
        let (addr, listener) = spawn_listener(&self.registry, Target::Node(gate.clone()));
        let loc = {
            let mut slots = self.registry.slots.lock();
            let loc = Loc::new(slots.len() as u32);
            slots.push(SlotInfo {
                addr,
                gate: Some(gate),
            });
            loc
        };
        self.listener_handles.push(listener);
        spawn_node_thread(&self.registry, loc, self.start, process, rx);
        loc
    }

    /// Number of locations allocated so far (nodes and ports).
    pub fn node_count(&self) -> u32 {
        self.registry.slots.lock().len() as u32
    }

    /// Elapsed time since the network started, as the runtime clock.
    pub fn now(&self) -> VTime {
        VTime::from_micros(self.start.elapsed().as_micros() as u64)
    }

    fn instant_of(&self, at: VTime) -> Instant {
        (self.start + Duration::from_micros(at.as_micros())).max(Instant::now())
    }

    /// Injects a message from outside the system, delivered as soon as
    /// possible (over the injector's own loopback connection).
    pub fn send(&self, dest: Loc, msg: Msg) {
        self.send_at(VTime::ZERO, dest, msg);
    }

    /// Injects a message from outside the system at `at` on the runtime
    /// clock (clamped to now if already past).
    pub fn send_at(&self, at: VTime, dest: Loc, msg: Msg) {
        let _ = self.ctl.send(Ctl::At {
            at: self.instant_of(at),
            act: Act::Deliver(dest, msg),
        });
    }

    /// Schedules a crash of the node at `loc`: its thread is dropped —
    /// volatile state, pending timers, and outbound connections die — and
    /// deliveries are silently dropped until restart.
    pub fn crash_at(&self, at: VTime, loc: Loc) {
        let _ = self.ctl.send(Ctl::At {
            at: self.instant_of(at),
            act: Act::Crash(loc),
        });
    }

    /// Schedules a restart of the node at `loc`: a fresh thread hosting
    /// `process` behind the location's existing listener.
    pub fn restart_at(&self, at: VTime, loc: Loc, process: Box<dyn Process>) {
        let _ = self.ctl.send(Ctl::At {
            at: self.instant_of(at),
            act: Act::Restart(loc, process),
        });
    }

    /// Installs (or replaces) the fault plan consulted by every node's
    /// frame layer. Severed links force-close their connections and park
    /// frames in bounded pending queues until heal; lossy windows drop
    /// frames; duplication windows write them twice. Delay spikes and
    /// reorder windows are not reproducible on a real FIFO stream and are
    /// ignored (the schedule itself is byte-identical with the other
    /// substrates). External injections from the driver are never faulted.
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        *self.registry.faults.plan.lock() = Some(plan);
    }

    /// Snapshot of the frame-layer counters (`reconnects`,
    /// `frames_dropped`, `frames_duplicated`) aggregated over all links.
    pub fn link_stats(&self) -> LinkStats {
        self.registry.faults.stats()
    }

    /// Creates an external mailbox at the next location, backed by its own
    /// loopback listener: messages sent to it cross a socket and land in
    /// the returned receiver.
    pub fn port(&mut self) -> (Loc, Receiver<Msg>) {
        let (tx, rx) = channel::unbounded();
        let (addr, listener) = spawn_listener(&self.registry, Target::Port(tx));
        let loc = {
            let mut slots = self.registry.slots.lock();
            let loc = Loc::new(slots.len() as u32);
            slots.push(SlotInfo { addr, gate: None });
            loc
        };
        self.listener_handles.push(listener);
        (loc, rx)
    }

    /// Stops every thread and waits for all of them: control thread first,
    /// then node threads, then listeners (poison connect), then readers
    /// (writer EOF).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let _ = self.ctl.send(Ctl::Shutdown);
        if let Some(h) = self.ctl_handle.take() {
            let _ = h.join();
        }
        // Stop node threads; marking them crashed makes concurrent reader
        // deliveries drop instead of queueing into a dead inbox.
        for slot in self.registry.slots.lock().iter() {
            if let Some(gate) = &slot.gate {
                let mut gate = gate.lock();
                gate.crashed = true;
                let _ = gate.tx.send(NodeCtl::Stop);
            }
        }
        let nodes: Vec<_> = self.registry.nodes.lock().drain(..).collect();
        for h in nodes {
            let _ = h.join();
        }
        // Unblock every listener's accept with a poison connect.
        self.registry.shutdown.store(true, Ordering::SeqCst);
        let addrs: Vec<_> = self.registry.slots.lock().iter().map(|s| s.addr).collect();
        for addr in addrs {
            let _ = TcpStream::connect(addr);
        }
        for h in self.listener_handles.drain(..) {
            let _ = h.join();
        }
        // All writers are gone: readers see EOF and exit.
        let readers: Vec<_> = self.registry.readers.lock().drain(..).collect();
        for h in readers {
            let _ = h.join();
        }
    }
}

impl Default for TcpNet {
    fn default() -> Self {
        TcpNet::new()
    }
}

impl Drop for TcpNet {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The control thread: a timer heap of scheduled injections and fault
/// actions, with its own outbound links for external deliveries.
fn control_loop(registry: Arc<Registry>, start: Instant, rx: Receiver<Ctl>) {
    let mut links = Links::new(registry.clone(), None);
    let mut heap: BinaryHeap<Due> = BinaryHeap::new();
    let mut seq = 0u64;
    loop {
        let now = Instant::now();
        while heap.peek().map(|d| d.at <= now).unwrap_or(false) {
            let due = heap.pop().expect("peeked");
            match due.act {
                Act::Deliver(dest, msg) => links.send(dest, &msg),
                Act::Crash(loc) => {
                    if let Some(gate) = registry.gate_of(loc.index()) {
                        let mut gate = gate.lock();
                        gate.crashed = true;
                        let _ = gate.tx.send(NodeCtl::Stop);
                    }
                }
                Act::Restart(loc, process) => {
                    if let Some(gate) = registry.gate_of(loc.index()) {
                        let (tx, node_rx) = channel::unbounded::<NodeCtl>();
                        {
                            let mut gate = gate.lock();
                            gate.tx = tx;
                            gate.crashed = false;
                        }
                        spawn_node_thread(&registry, loc, start, process, node_rx);
                    }
                }
            }
        }
        let wait = heap
            .peek()
            .map(|d| d.at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(20))
            .min(Duration::from_millis(20));
        match rx.recv_timeout(wait) {
            Ok(Ctl::At { at, act }) => {
                seq += 1;
                heap.push(Due { at, seq, act });
            }
            Ok(Ctl::Shutdown) | Err(channel::RecvTimeoutError::Disconnected) => break,
            Err(channel::RecvTimeoutError::Timeout) => {}
        }
        links.tick();
    }
}

impl Runtime for TcpNet {
    fn add_node(&mut self, process: Box<dyn Process>) -> Loc {
        TcpNet::add_node(self, process)
    }

    fn node_count(&self) -> u32 {
        TcpNet::node_count(self)
    }

    fn now(&self) -> VTime {
        TcpNet::now(self)
    }

    fn send_at(&mut self, at: VTime, dest: Loc, msg: Msg) {
        TcpNet::send_at(self, at, dest, msg);
    }

    fn crash_at(&mut self, at: VTime, loc: Loc) {
        TcpNet::crash_at(self, at, loc);
    }

    fn restart_at(&mut self, at: VTime, loc: Loc, process: Box<dyn Process>) {
        TcpNet::restart_at(self, at, loc, process);
    }

    fn port(&mut self) -> (Loc, PortRx) {
        let (loc, rx) = TcpNet::port(self);
        (loc, PortRx::new(rx))
    }

    /// Real threads and sockets run on their own; letting the system
    /// execute for a duration is simply sleeping that long.
    fn run_for(&mut self, duration: Duration) {
        std::thread::sleep(duration);
    }

    fn install_fault_plan(&mut self, plan: FaultPlan) {
        TcpNet::install_fault_plan(self, plan);
    }

    fn fault_stats(&self) -> (u64, u64) {
        let s = self.link_stats();
        (s.frames_dropped, s.frames_duplicated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadowdb_consensus::parse_decide;
    use shadowdb_consensus::twothird::{propose_msg, TwoThird, TwoThirdConfig};
    use shadowdb_eventml::{Ctx, FnProcess, InterpretedProcess, SendInstr, Value};
    use shadowdb_runtime::{LinkFault, LinkSel};

    fn echo_counter() -> Box<dyn Process> {
        Box::new(FnProcess::new(0u32, |n, _c: &Ctx, m: &Msg| {
            *n += 1;
            match m.body.as_loc() {
                Some(from) => {
                    vec![SendInstr::now(
                        from,
                        Msg::new("pong", Value::Int(*n as i64)),
                    )]
                }
                None => vec![],
            }
        }))
    }

    #[test]
    fn echo_roundtrip_over_sockets() {
        let mut net = TcpNet::new();
        let echo = net.add_node(echo_counter());
        let (port, rx) = TcpNet::port(&mut net);
        net.send(echo, Msg::new("ping", Value::Loc(port)));
        net.send(echo, Msg::new("ping", Value::Loc(port)));
        let a = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let b = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(a.body, Value::Int(1));
        assert_eq!(b.body, Value::Int(2));
        net.shutdown();
    }

    /// A single link carries frames in FIFO order: a relay node forwards a
    /// numbered burst and the port sees it in sequence.
    #[test]
    fn fifo_per_link() {
        let mut net = TcpNet::new();
        let relay = net.add_node(Box::new(FnProcess::new(
            (),
            |_s, _c: &Ctx, m: &Msg| match (m.body.fst(), m.body.snd()) {
                (Some(to), Some(v)) => vec![SendInstr::now(to.loc(), Msg::new("seq", v.clone()))],
                _ => vec![],
            },
        )));
        let (port, rx) = TcpNet::port(&mut net);
        const N: i64 = 500;
        for i in 0..N {
            net.send(
                relay,
                Msg::new("fwd", Value::pair(Value::Loc(port), Value::Int(i))),
            );
        }
        for i in 0..N {
            let m = rx.recv_timeout(Duration::from_secs(10)).expect("in order");
            assert_eq!(m.body, Value::Int(i), "link reordered messages");
        }
        net.shutdown();
    }

    #[test]
    fn delayed_self_send_fires_later() {
        let mut net = TcpNet::new();
        let node = net.add_node(Box::new(FnProcess::new(
            (),
            |_s, ctx: &Ctx, m: &Msg| match m.header.name() {
                "start" => vec![SendInstr::after(
                    Duration::from_millis(80),
                    ctx.slf,
                    Msg::new("timer", m.body.clone()),
                )],
                "timer" => vec![SendInstr::now(m.body.loc(), Msg::new("fired", Value::Unit))],
                _ => vec![],
            },
        )));
        let (port, rx) = TcpNet::port(&mut net);
        let t0 = Instant::now();
        net.send(node, Msg::new("start", Value::Loc(port)));
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(
            t0.elapsed() >= Duration::from_millis(75),
            "{:?}",
            t0.elapsed()
        );
        net.shutdown();
    }

    /// The generated TwoThird consensus over real sockets: three members
    /// decide one value and notify the learner port.
    #[test]
    fn twothird_consensus_over_sockets() {
        let members = Loc::first_n(3);
        // The learner port will be loc 3 (first location after 3 nodes).
        let config = TwoThirdConfig::new(members, vec![Loc::new(3)]).with_auto_adopt();
        let class = TwoThird::new(config).class();
        let mut net = TcpNet::new();
        for _ in 0..3 {
            net.add_node(Box::new(InterpretedProcess::compile(&class)));
        }
        let (port, rx) = TcpNet::port(&mut net);
        assert_eq!(port, Loc::new(3));
        net.send(Loc::new(0), propose_msg(0, Value::Int(41)));
        net.send(Loc::new(1), propose_msg(0, Value::Int(42)));
        net.send(Loc::new(2), propose_msg(0, Value::Int(41)));
        let mut decisions = Vec::new();
        while decisions.len() < 3 {
            let m = rx
                .recv_timeout(Duration::from_secs(10))
                .expect("a decision");
            if let Some(d) = parse_decide(&m) {
                decisions.push(d);
            }
        }
        let first = decisions[0].1.clone();
        assert!(decisions.iter().all(|(i, v)| *i == 0 && *v == first));
        net.shutdown();
    }

    /// A crashed node's thread is gone: deliveries are dropped. After
    /// restart the location answers again with fresh state.
    #[test]
    fn crash_silences_node_until_restart() {
        let mut net = TcpNet::new();
        let node = net.add_node(echo_counter());
        let (port, rx) = TcpNet::port(&mut net);
        net.send(node, Msg::new("ping", Value::Loc(port)));
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap().body,
            Value::Int(1)
        );

        net.crash_at(VTime::ZERO, node);
        std::thread::sleep(Duration::from_millis(50));
        net.send(node, Msg::new("ping", Value::Loc(port)));
        assert!(
            rx.recv_timeout(Duration::from_millis(200)).is_err(),
            "crashed node must stay silent"
        );

        net.restart_at(VTime::ZERO, node, echo_counter());
        std::thread::sleep(Duration::from_millis(50));
        net.send(node, Msg::new("ping", Value::Loc(port)));
        // Fresh process: the counter restarts from 1.
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap().body,
            Value::Int(1)
        );
        net.shutdown();
    }

    /// Nodes and ports share one location sequence, as the deployment
    /// builders require for precomputing locations.
    #[test]
    fn dynamic_nodes_and_ports_share_locations() {
        let mut net = TcpNet::new();
        assert_eq!(TcpNet::node_count(&net), 0);
        let a = net.add_node(echo_counter());
        let (p, _rx) = TcpNet::port(&mut net);
        let b = net.add_node(echo_counter());
        assert_eq!((a, p, b), (Loc::new(0), Loc::new(1), Loc::new(2)));
        assert_eq!(TcpNet::node_count(&net), 3);
        net.shutdown();
    }

    /// A severed link force-closes its connection and parks frames; after
    /// heal the pending queue flushes in FIFO order over a fresh
    /// connection (a counted reconnect), with nothing lost.
    #[test]
    fn fault_plan_severs_then_heals_with_fifo_flush() {
        let mut net = TcpNet::new();
        let relay = net.add_node(echo_counter());
        let (port, rx) = TcpNet::port(&mut net);
        // Establish the link (and the counter baseline) before the fault.
        net.send(relay, Msg::new("ping", Value::Loc(port)));
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap().body,
            Value::Int(1)
        );

        let start = net.now();
        let end = start + Duration::from_millis(400);
        net.install_fault_plan(FaultPlan::new(7).with_rule(
            LinkSel::Pair(relay, port),
            start,
            end,
            LinkFault::partition(),
        ));
        for _ in 0..5 {
            net.send(relay, Msg::new("ping", Value::Loc(port)));
        }
        // Severed: replies are parked at the relay, not delivered.
        assert!(
            rx.recv_timeout(Duration::from_millis(250)).is_err(),
            "severed link must not deliver"
        );
        // After heal the parked replies arrive in send order.
        for i in 2..=6 {
            let m = rx
                .recv_timeout(Duration::from_secs(5))
                .expect("flushed after heal");
            assert_eq!(m.body, Value::Int(i), "flush must preserve FIFO");
        }
        let stats = net.link_stats();
        assert!(stats.reconnects >= 1, "{stats:?}");
        assert_eq!(stats.frames_dropped, 0, "{stats:?}");
        net.shutdown();
    }

    /// A duplication window writes each frame twice: the port sees two
    /// identical replies and the counter records the duplicate.
    #[test]
    fn fault_plan_duplicates_frames() {
        let mut net = TcpNet::new();
        let relay = net.add_node(echo_counter());
        let (port, rx) = TcpNet::port(&mut net);
        let start = net.now();
        net.install_fault_plan(FaultPlan::new(9).with_rule(
            LinkSel::Pair(relay, port),
            start,
            start + Duration::from_secs(5),
            LinkFault::duplicating(1.0),
        ));
        net.send(relay, Msg::new("ping", Value::Loc(port)));
        let a = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let b = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(a.body, Value::Int(1));
        assert_eq!(b.body, Value::Int(1));
        assert_eq!(net.link_stats().frames_duplicated, 1);
        net.shutdown();
    }

    /// A link severed forever cannot grow memory without bound: the
    /// pending queue caps at `PENDING_CAP` frames and evicts the oldest,
    /// counting each eviction as a dropped frame.
    #[test]
    fn severed_link_bounds_pending_queue_drop_oldest() {
        let mut net = TcpNet::new();
        let relay = net.add_node(echo_counter());
        let (port, _rx) = TcpNet::port(&mut net);
        net.install_fault_plan(FaultPlan::new(3).with_rule(
            LinkSel::Pair(relay, port),
            VTime::ZERO,
            VTime::MAX,
            LinkFault::partition(),
        ));
        let extra = 50u64;
        for _ in 0..(link::PENDING_CAP as u64 + extra) {
            net.send(relay, Msg::new("ping", Value::Loc(port)));
        }
        let deadline = Instant::now() + Duration::from_secs(20);
        while net.link_stats().frames_dropped < extra {
            assert!(
                Instant::now() < deadline,
                "expected >= {extra} evictions, stats: {:?}",
                net.link_stats()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        net.shutdown();
    }

    #[cfg(target_os = "linux")]
    fn os_thread_count() -> usize {
        std::fs::read_dir("/proc/self/task")
            .expect("procfs")
            .count()
    }

    /// Shutdown joins the control thread, every node thread, every
    /// listener, and every reader — repeated nets must not leak OS
    /// threads, even with timers and traffic in flight.
    #[test]
    #[cfg(target_os = "linux")]
    fn repeated_nets_leak_no_threads() {
        let before = os_thread_count();
        for i in 0..10u64 {
            let mut net = TcpNet::new();
            let echo = net.add_node(echo_counter());
            let timer = net.add_node(Box::new(FnProcess::new((), |_s, ctx: &Ctx, m: &Msg| {
                // Arm a far-future timer so shutdown always has an
                // in-flight delayed send to discard.
                vec![SendInstr::after(
                    Duration::from_secs(3600),
                    ctx.slf,
                    m.clone(),
                )]
            })));
            let (port, rx) = TcpNet::port(&mut net);
            net.send(timer, Msg::new("tick", Value::Int(i as i64)));
            net.send(echo, Msg::new("ping", Value::Loc(port)));
            let _ = rx.recv_timeout(Duration::from_secs(5));
            net.shutdown();
        }
        let after = os_thread_count();
        assert!(
            after <= before,
            "leaked {} threads across 10 nets",
            after - before
        );
    }
}
