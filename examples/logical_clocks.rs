//! The paper's running example: Lamport logical clocks (CLK, Fig. 3),
//! taken through the whole methodology of Fig. 2:
//!
//! 1. the constructive specification (a combinator program);
//! 2. compilation to a runnable GPM program;
//! 3. the program optimizer, with the bisimulation check of Fig. 7;
//! 4. compliance of the runnable program with the LoE semantics;
//! 5. an actual distributed run in the simulator, checked against
//!    Lamport's Clock Condition (Fig. 6).
//!
//! Run with: `cargo run --release --example logical_clocks`

use shadowdb_eventml::bisim::{check_bisimilar, check_complies_with_loe};
use shadowdb_eventml::optimize::optimize;
use shadowdb_eventml::{clk, InterpretedProcess, Value};
use shadowdb_loe::props::check_clock_condition;
use shadowdb_loe::{Loc, VTime};
use shadowdb_simnet::{NetworkConfig, SimBuilder};

fn main() {
    let n = 4u32;
    let spec = clk::clk_spec(clk::ring_handle(n));
    println!("CLK specification: {} AST nodes", spec.ast_nodes());

    // Compile and optimize.
    let interpreted = InterpretedProcess::compile_spec(&spec);
    let fused = optimize(spec.main());
    println!(
        "generated program: {} nodes; optimized: {} nodes",
        interpreted.program_nodes(),
        fused.program_nodes()
    );

    // Fig. 7's obligation: optimized ∼ original, on a message stream.
    let msgs: Vec<_> = (0..20).map(|i| clk::clk_msg(Value::Int(i), i)).collect();
    check_bisimilar(
        &mut interpreted.clone(),
        &mut fused.clone(),
        Loc::new(0),
        &msgs,
    )
    .expect("the optimizer must preserve behaviour");
    println!("bisimulation check (optimized ~ original): ok");

    // Arrow (c) of Fig. 2: the program complies with the LoE semantics.
    check_complies_with_loe(spec.main(), Loc::new(0), &msgs)
        .expect("the program must comply with its logical specification");
    println!("GPM-complies-with-LoE check: ok");

    // A real multi-process run: a ring of 4 processes forwarding a value,
    // with trace capture feeding the Clock Condition checker.
    let mut sim = SimBuilder::new(11)
        .network(NetworkConfig::lan())
        .capture_trace(true)
        .build();
    for _ in 0..n {
        sim.add_node(Box::new(InterpretedProcess::compile_spec(&spec)));
    }
    // Two concurrent tokens entering at different processes.
    sim.send_at(VTime::ZERO, Loc::new(0), clk::clk_msg(Value::str("a"), 0));
    sim.send_at(
        VTime::from_micros(40),
        Loc::new(2),
        clk::clk_msg(Value::str("b"), 0),
    );
    sim.run_until(VTime::from_millis(3)); // a few dozen hops

    let trace = sim.trace().expect("trace capture enabled");
    println!("captured {} events across {} processes", trace.len(), n);

    // Clock values via the denotational (LoE) reading of the Clock class.
    let clock = clk::clock_class();
    let violation = check_clock_condition(trace, |eo, e| {
        shadowdb_eventml::denote::denote(&clock, eo, e)
            .into_iter()
            .next()
            .map(|v| v.int())
    });
    assert_eq!(violation, None, "Lamport's Clock Condition must hold");
    println!("clock condition (e1 -> e2 ==> LC(e1) < LC(e2)): ok on the whole trace");

    // Show the first few events with their clocks.
    for event in trace.iter().take(8) {
        let lc = shadowdb_eventml::denote::denote(&clock, trace, event.id())
            .into_iter()
            .next()
            .map(|v| v.int())
            .unwrap_or(-1);
        println!(
            "  {:>4} at {} t={} LC={}",
            event.id().to_string(),
            event.loc(),
            event.time(),
            lc
        );
    }
}
