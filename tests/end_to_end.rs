//! Workspace integration tests: the whole stack, end to end.
//!
//! These check the two properties Sec. III-A names for the replicated
//! database — **durability** (an answered transaction is permanently
//! reflected in the surviving replicas) and **state-agreement** (replicas
//! processing transactions start from, and stay in, the same state) —
//! plus exactly-once execution under client retransmission, across both
//! replication protocols and the diverse engine trio.

use parking_lot::Mutex;
use shadowdb::deploy::{DeployOptions, PbrDeployment, SmrDeployment};
use shadowdb::diversity::DiversityPolicy;
use shadowdb::pbr::PbrOptions;
use shadowdb_loe::VTime;
use shadowdb_sqldb::Database;
use shadowdb_tob::ExecutionMode;
use shadowdb_workloads::tpcc::{TpccGen, TpccScale};
use shadowdb_workloads::{bank, TxnRequest};
use std::sync::Arc;
use std::time::Duration;

/// Deploy options whose loader also hands back a clone of every replica's
/// database handle, so tests can inspect final states.
fn options_with_dbs(
    n_clients: usize,
    txns: impl Fn(usize) -> Vec<TxnRequest> + 'static,
    loader: impl Fn(&Database) + 'static,
) -> (DeployOptions, Arc<Mutex<Vec<Database>>>) {
    let dbs: Arc<Mutex<Vec<Database>>> = Arc::new(Mutex::new(Vec::new()));
    let captured = dbs.clone();
    let options = DeployOptions::new(n_clients, txns, move |db| {
        loader(db);
        captured.lock().push(db.clone());
    });
    (options, dbs)
}

fn total_balance(db: &Database) -> i64 {
    db.execute("SELECT SUM(balance) FROM accounts")
        .expect("sums")
        .rows[0][0]
        .as_int()
        .expect("integer sum")
}

#[test]
fn smr_state_agreement_across_diverse_engines() {
    const ACCOUNTS: usize = 2_000;
    let mut sim = shadowdb_simnet::testing::default_net(1);
    let (mut options, dbs) = options_with_dbs(
        3,
        |client| {
            let mut g = bank::BankGen::new(client as u64, ACCOUNTS);
            (0..100).map(|_| g.next_txn()).collect()
        },
        |db| bank::load(db, ACCOUNTS).expect("loads"),
    );
    options.diversity = DiversityPolicy::Trio;
    let d = SmrDeployment::build(&mut sim, &options);
    sim.run_until_quiescent(VTime::from_secs(600));
    assert_eq!(d.committed(), 300);

    let dbs = dbs.lock();
    assert_eq!(dbs.len(), 3);
    // Different engines…
    let names: Vec<&str> = dbs.iter().map(|db| db.profile().name).collect();
    assert_eq!(names, vec!["h2", "hsqldb", "derby"]);
    // …identical states.
    let sums: Vec<i64> = dbs.iter().map(total_balance).collect();
    assert_eq!(sums[0], sums[1]);
    assert_eq!(sums[1], sums[2]);
    // And the sum is the initial money plus every committed deposit.
    let mut expected = (ACCOUNTS as i64) * 1_000;
    for client in 0..3u64 {
        let mut g = bank::BankGen::new(client, ACCOUNTS);
        for _ in 0..100 {
            if let TxnRequest::BankDeposit { amount, .. } = g.next_txn() {
                expected += amount;
            }
        }
    }
    assert_eq!(sums[0], expected, "conservation of money");
}

#[test]
fn pbr_failover_durability_and_state_agreement() {
    const ACCOUNTS: usize = 1_500;
    let mut sim = shadowdb_simnet::testing::default_net(2);
    let (mut options, dbs) = options_with_dbs(
        2,
        |client| {
            let mut g = bank::BankGen::new(10 + client as u64, ACCOUNTS);
            (0..150).map(|_| g.next_txn()).collect()
        },
        |db| bank::load(db, ACCOUNTS).expect("loads"),
    );
    options.diversity = DiversityPolicy::Trio;
    options.client_timeout = Duration::from_millis(800);
    options.mode = ExecutionMode::Compiled; // fast reconfiguration decisions
    let pbr = PbrOptions {
        heartbeat_every: Duration::from_millis(100),
        detect_after: Duration::from_millis(600),
        ..PbrOptions::default()
    };
    let d = PbrDeployment::build(&mut sim, &options, pbr);
    // Let some transactions commit, then kill the primary.
    let mut t = 20;
    while d.committed() < 40 {
        sim.run_until(VTime::from_millis(t));
        t += 20;
        assert!(t < 60_000, "no progress");
    }
    sim.crash_at(sim.now(), d.replicas[0]);
    sim.run_until_quiescent(VTime::from_secs(600));

    // Durability / exactly-once: every submitted transaction answered.
    assert_eq!(d.committed(), 300);
    let resends: u64 = d.stats.iter().map(|s| s.lock().resends).sum();
    assert!(resends > 0, "the outage must have caused retries");

    // State agreement among the surviving replicas (backup promoted to
    // primary + spare brought in by snapshot).
    let dbs = dbs.lock();
    let backup_sum = total_balance(&dbs[1]);
    let spare_sum = total_balance(&dbs[2]);
    assert_eq!(backup_sum, spare_sum, "survivors agree");
    // Durability: all answered deposits are in the surviving state.
    let mut answered_total = (ACCOUNTS as i64) * 1_000;
    for client in 0..2u64 {
        let mut g = bank::BankGen::new(10 + client, ACCOUNTS);
        for _ in 0..150 {
            if let TxnRequest::BankDeposit { amount, .. } = g.next_txn() {
                answered_total += amount;
            }
        }
    }
    assert_eq!(backup_sum, answered_total);
}

#[test]
fn tpcc_smr_replicas_agree_on_everything() {
    let scale = TpccScale::small();
    let mut sim = shadowdb_simnet::testing::default_net(3);
    let (mut options, dbs) = options_with_dbs(
        2,
        move |client| {
            let mut g = TpccGen::new(client as u64, scale, client as u64 + 1);
            (0..80).map(|_| TxnRequest::Tpcc(g.next_txn())).collect()
        },
        move |db| shadowdb_workloads::tpcc::load(db, &scale, 9).expect("loads"),
    );
    options.diversity = DiversityPolicy::Trio;
    let d = SmrDeployment::build(&mut sim, &options);
    sim.run_until_quiescent(VTime::from_secs(3_600));
    let answered: usize = d.stats.iter().map(|s| s.lock().completed.len()).sum();
    assert_eq!(answered, 160);

    let dbs = dbs.lock();
    for table in [
        "district",
        "customer",
        "orders",
        "new_order",
        "order_line",
        "history",
        "stock",
    ] {
        let counts: Vec<usize> = dbs.iter().map(|db| db.table_len(table)).collect();
        assert_eq!(counts[0], counts[1], "{table}");
        assert_eq!(counts[1], counts[2], "{table}");
    }
    // Fine-grained agreement: the order sequence of every district.
    for d_id in 1..=scale.districts {
        let next: Vec<i64> = dbs
            .iter()
            .map(|db| {
                db.execute(&format!(
                    "SELECT d_next_o_id FROM district WHERE d_w_id = 1 AND d_id = {d_id}"
                ))
                .expect("reads")
                .rows[0][0]
                    .as_int()
                    .expect("int")
            })
            .collect();
        assert_eq!(next[0], next[1]);
        assert_eq!(next[1], next[2]);
    }
    // The TPC-C consistency conditions hold on every replica.
    for db in dbs.iter() {
        shadowdb_workloads::tpcc::check_consistency(db).expect("TPC-C consistency");
    }
}

#[test]
fn smr_exactly_once_despite_duplicate_submissions() {
    const ACCOUNTS: usize = 500;
    let mut sim = shadowdb_simnet::testing::default_net(4);
    let (options, dbs) = options_with_dbs(
        1,
        |_| {
            (0..50)
                .map(|i| TxnRequest::BankDeposit {
                    account: i % 10,
                    amount: 7,
                })
                .collect()
        },
        |db| bank::load(db, ACCOUNTS).expect("loads"),
    );
    // An aggressive client timeout forces duplicate submissions even
    // without failures; dedup must make them no-ops.
    let mut options = options;
    options.client_timeout = Duration::from_millis(6);
    let d = SmrDeployment::build(&mut sim, &options);
    sim.run_until_quiescent(VTime::from_secs(600));
    assert_eq!(d.committed(), 50);
    let resends: u64 = d.stats.iter().map(|s| s.lock().resends).sum();
    assert!(resends > 0, "the tight timeout must fire");
    let sum = total_balance(&dbs.lock()[0]);
    assert_eq!(
        sum,
        (ACCOUNTS as i64) * 1_000 + 50 * 7,
        "each deposit applied exactly once despite {resends} resends"
    );
}

/// Mixed deposits and reads through SMR: the full client-observed history
/// is strictly serializable per the checker of
/// [`shadowdb::serializability`].
#[test]
fn smr_history_is_strictly_serializable() {
    use shadowdb::serializability::{check_bank_history, Observation};
    const ACCOUNTS: usize = 20; // few accounts → reads really constrain order

    let mut sim = shadowdb_simnet::testing::default_net(5);
    let txn_scripts: Vec<Vec<TxnRequest>> = (0..3)
        .map(|client| {
            (0..60)
                .map(|i| {
                    if (i + client) % 3 == 0 {
                        TxnRequest::BankRead {
                            account: ((i * 7 + client) % ACCOUNTS) as i64,
                        }
                    } else {
                        TxnRequest::BankDeposit {
                            account: ((i * 5 + client) % ACCOUNTS) as i64,
                            amount: 1 + (i % 9) as i64,
                        }
                    }
                })
                .collect()
        })
        .collect();
    let scripts = txn_scripts.clone();
    let (options, _dbs) = options_with_dbs(
        3,
        move |client| scripts[client].clone(),
        |db| bank::load(db, ACCOUNTS).expect("loads"),
    );
    let d = SmrDeployment::build(&mut sim, &options);
    sim.run_until_quiescent(VTime::from_secs(600));
    assert_eq!(d.committed(), 180);

    // Clients record the results they actually saw, so the checker runs on
    // the genuine observed history — not a replay-filled approximation.
    let mut observations: Vec<Observation> = Vec::new();
    for (client, stats) in d.stats.iter().enumerate() {
        let s = stats.lock();
        assert_eq!(s.completed.len(), txn_scripts[client].len());
        observations.extend(s.observations(&txn_scripts[client]));
    }
    observations.sort_by_key(|o| o.answered);
    check_bank_history(&observations, 1_000).expect("strictly serializable");
    // Replay the deposits to predict final balances for the cross-check
    // against replica state below.
    let mut balances = std::collections::HashMap::new();
    for o in &observations {
        if let TxnRequest::BankDeposit { account, amount } = &o.txn {
            *balances.entry(*account).or_insert(1_000i64) += amount;
        }
    }
    // Cross-check the replay's final state against every replica's actual
    // database: the serial witness and reality agree.
    let dbs = _dbs.lock();
    for db in dbs.iter() {
        for (account, expected) in &balances {
            let r = db
                .execute(&format!(
                    "SELECT balance FROM accounts WHERE id = {account}"
                ))
                .expect("reads");
            assert_eq!(
                r.rows[0][0],
                shadowdb_sqldb::SqlValue::Int(*expected),
                "account {account}"
            );
        }
    }
}
