//! Full ShadowDB deployments into any [`Runtime`].
//!
//! Mirrors the paper's testbed (Sec. IV): the broadcast service runs on
//! three machines, "databases are co-located with the processes of the
//! broadcast service", and clients run on a separate machine. PBR deploys
//! two active replicas plus a spare; SMR deploys replicas at every service
//! machine. The builders are generic over the execution substrate: the
//! same deployment graph runs under the simulator, on real threads
//! (`shadowdb-livenet`), and inside the model checker (`shadowdb-mck`).

use crate::client::{DbClient, DbClientStats, Submission};
use crate::diversity::DiversityPolicy;
use crate::msgs::ReplicaConfig;
use crate::pbr::{PbrOptions, PbrReplica};
use crate::shard::{GroupRoute, ShardRole, TwoPcProbe};
use crate::smr::SmrReplica;
use parking_lot::Mutex;
use shadowdb_loe::{Loc, VTime};
use shadowdb_runtime::Runtime;
use shadowdb_sqldb::Database;
use shadowdb_tob::deploy::BackendKind;
use shadowdb_tob::{ExecutionMode, TobDeployment, TobOptions};
use shadowdb_workloads::{ShardMap, TxnRequest};
use std::sync::Arc;
use std::time::Duration;

/// Options shared by both deployment shapes.
pub struct DeployOptions {
    /// Number of clients (each gets its own location).
    pub n_clients: usize,
    /// Produces the transaction list for client `i`.
    pub client_txns: Box<dyn Fn(usize) -> Vec<TxnRequest>>,
    /// Engine assignment across replicas.
    pub diversity: DiversityPolicy,
    /// Loads schema and initial data into one replica's database.
    pub loader: Box<dyn Fn(&Database)>,
    /// Broadcast-service execution mode.
    pub mode: ExecutionMode,
    /// Client retransmission timeout.
    pub client_timeout: Duration,
    /// Transactions-per-proposal bound in the broadcast service.
    pub max_batch: usize,
    /// Broadcast-service pipelining window (concurrent slot proposals per
    /// server). `None` uses the backend default (8 for Paxos, 1 for
    /// TwoThird).
    pub window: Option<usize>,
    /// PBR only: replicas in the active configuration (the paper runs 2,
    /// "the third database is used to replace the backup"; overlapped
    /// state transfer needs 3).
    pub active_replicas: usize,
    /// Number of broadcast-service machines (the paper uses 3).
    pub machines: u32,
    /// Consensus module of the broadcast service. Paxos matches the paper;
    /// TwoThird keeps the state space small enough for exhaustive model
    /// checking (Paxos leader timers re-arm forever, which a checker
    /// exploring all timings cannot bound).
    pub backend: BackendKind,
    /// Whether the builder schedules the client kick-off messages itself
    /// (at 1 ms on the runtime clock). Harnesses that must do work between
    /// deployment and workload start — e.g. installing a fault plan whose
    /// windows are anchored at the workload epoch — set this to `false`
    /// and send [`DbClient::start_msg`] to each client themselves.
    pub start_clients: bool,
}

impl DeployOptions {
    /// A small default: `n_clients` clients running the given per-client
    /// transaction scripts over an unloaded H2 database.
    pub fn new(
        n_clients: usize,
        client_txns: impl Fn(usize) -> Vec<TxnRequest> + 'static,
        loader: impl Fn(&Database) + 'static,
    ) -> DeployOptions {
        DeployOptions {
            n_clients,
            client_txns: Box::new(client_txns),
            diversity: DiversityPolicy::Uniform,
            loader: Box::new(loader),
            mode: ExecutionMode::Compiled,
            client_timeout: Duration::from_secs(20),
            max_batch: 64,
            window: None,
            active_replicas: 2,
            machines: 3,
            backend: BackendKind::Paxos,
            start_clients: true,
        }
    }
}

fn tob_per(backend: BackendKind) -> u32 {
    match backend {
        BackendKind::TwoThird => 2,
        BackendKind::Paxos => 4,
    }
}

/// A deployed primary-backup ShadowDB.
pub struct PbrDeployment {
    /// Replica locations: `[primary, backup, spare]`.
    pub replicas: Vec<Loc>,
    /// Client locations.
    pub clients: Vec<Loc>,
    /// Client measurement handles (one per client).
    pub stats: Vec<Arc<Mutex<DbClientStats>>>,
    /// The broadcast service underneath.
    pub tob: TobDeployment,
}

impl PbrDeployment {
    /// Builds the deployment into `rt` and schedules the start messages.
    /// The paper runs the PBR broadcast service in the interpreter; pass
    /// [`ExecutionMode::InterpretedOpt`] in `options.mode` to match.
    pub fn build<R: Runtime + ?Sized>(
        rt: &mut R,
        options: &DeployOptions,
        pbr: PbrOptions,
    ) -> PbrDeployment {
        let backend = options.backend;
        let per = tob_per(backend);
        let base = rt.node_count();
        let c = options.n_clients as u32;
        let first_server = base + c;
        let servers: Vec<Loc> = (0..options.machines)
            .map(|i| Loc::new(first_server + i * per))
            .collect();
        let replica_base = first_server + options.machines * per;
        let n_replicas = options.active_replicas as u32 + 1; // plus one spare
        let replicas: Vec<Loc> = (0..n_replicas)
            .map(|i| Loc::new(replica_base + i))
            .collect();

        // Clients first (locations 0..c).
        let mut stats = Vec::new();
        let mut clients = Vec::new();
        for i in 0..options.n_clients {
            let s = Arc::new(Mutex::new(DbClientStats::default()));
            stats.push(s.clone());
            let client = DbClient::new(
                Submission::Pbr {
                    replicas: replicas.clone(),
                },
                (options.client_txns)(i),
                s,
            )
            .with_timeout(options.client_timeout);
            clients.push(rt.add_node(Box::new(client)));
        }

        // The broadcast service; replicas subscribe (for reconfigurations).
        let tob = TobDeployment::build(
            rt,
            &TobOptions {
                machines: options.machines,
                backend,
                mode: options.mode,
                max_batch: options.max_batch,
                window: options.window,
                ..TobOptions::default()
            },
            replicas.clone(),
        );
        assert_eq!(tob.servers, servers);

        // Replicas are co-located with the service machines but run in
        // their own JVM, which the quad-core testbed schedules on separate
        // cores: model them with their own CPU timeline.
        let config = ReplicaConfig::initial(replicas[..options.active_replicas].to_vec());
        let spares = replicas[options.active_replicas..].to_vec();
        for (i, r) in replicas.iter().enumerate() {
            let db = options.diversity.database(i);
            (options.loader)(&db);
            let replica = PbrReplica::new(
                db,
                config.clone(),
                spares.clone(),
                servers.clone(),
                pbr.clone(),
            );
            let loc = rt.add_node(Box::new(replica));
            assert_eq!(loc, *r);
        }

        for r in &replicas {
            rt.send_at(VTime::ZERO, *r, PbrReplica::start_msg());
        }
        if options.start_clients {
            for cl in &clients {
                rt.send_at(VTime::from_millis(1), *cl, DbClient::start_msg());
            }
        }
        PbrDeployment {
            replicas,
            clients,
            stats,
            tob,
        }
    }

    /// Total committed transactions across clients.
    pub fn committed(&self) -> usize {
        self.stats.iter().map(|s| s.lock().committed()).sum()
    }
}

/// A deployed state-machine-replicated ShadowDB.
pub struct SmrDeployment {
    /// Replica locations (one per service machine).
    pub replicas: Vec<Loc>,
    /// Client locations.
    pub clients: Vec<Loc>,
    /// Client measurement handles.
    pub stats: Vec<Arc<Mutex<DbClientStats>>>,
    /// The broadcast service underneath.
    pub tob: TobDeployment,
}

impl SmrDeployment {
    /// Builds the deployment into `rt` and schedules the start messages.
    /// The paper runs the SMR broadcast service compiled (Lisp); the
    /// default [`ExecutionMode::Compiled`] matches.
    pub fn build<R: Runtime + ?Sized>(rt: &mut R, options: &DeployOptions) -> SmrDeployment {
        let backend = options.backend;
        let per = tob_per(backend);
        let base = rt.node_count();
        let c = options.n_clients as u32;
        let first_server = base + c;
        let servers: Vec<Loc> = (0..options.machines)
            .map(|i| Loc::new(first_server + i * per))
            .collect();
        let replica_base = first_server + options.machines * per;
        let replicas: Vec<Loc> = (0..options.machines)
            .map(|i| Loc::new(replica_base + i))
            .collect();

        let mut stats = Vec::new();
        let mut clients = Vec::new();
        for i in 0..options.n_clients {
            let s = Arc::new(Mutex::new(DbClientStats::default()));
            stats.push(s.clone());
            let client = DbClient::new(
                Submission::Smr {
                    servers: servers.clone(),
                },
                (options.client_txns)(i),
                s,
            )
            .with_timeout(options.client_timeout);
            clients.push(rt.add_node(Box::new(client)));
        }

        // Replicas subscribe to every delivery (they *are* the state
        // machines).
        let tob = TobDeployment::build(
            rt,
            &TobOptions {
                machines: options.machines,
                backend,
                mode: options.mode,
                max_batch: options.max_batch,
                window: options.window,
                ..TobOptions::default()
            },
            replicas.clone(),
        );
        assert_eq!(tob.servers, servers);

        // As under PBR: the database JVM gets its own core.
        for (i, r) in replicas.iter().enumerate() {
            let db = options.diversity.database(i);
            (options.loader)(&db);
            let loc = rt.add_node(Box::new(SmrReplica::new(db)));
            assert_eq!(loc, *r);
        }

        if options.start_clients {
            for cl in &clients {
                rt.send_at(VTime::from_millis(1), *cl, DbClient::start_msg());
            }
        }
        SmrDeployment {
            replicas,
            clients,
            stats,
            tob,
        }
    }

    /// Total committed transactions across clients.
    pub fn committed(&self) -> usize {
        self.stats.iter().map(|s| s.lock().committed()).sum()
    }
}

/// Loads schema and one shard's rows into a group database; the shard id
/// comes first so the same closure serves every group.
pub type ShardLoader = Box<dyn Fn(usize, &Database)>;

/// Options for a horizontally sharded deployment: `shards` independent
/// replica groups (each with its own broadcast service), one logical
/// database partitioned by [`ShardMap`].
pub struct ShardedOptions {
    /// Number of replica groups.
    pub shards: usize,
    /// Number of clients (each routes across all groups).
    pub n_clients: usize,
    /// Produces the transaction list for client `i`.
    pub client_txns: Box<dyn Fn(usize) -> Vec<TxnRequest>>,
    /// Engine assignment across replicas (applied within each group).
    pub diversity: DiversityPolicy,
    /// Loads schema and **only shard `shard`'s rows** into one of that
    /// group's databases. Unlike the unsharded [`DeployOptions::loader`],
    /// the shard id comes first so the same closure serves every group.
    pub loader: ShardLoader,
    /// Broadcast-service execution mode.
    pub mode: ExecutionMode,
    /// Client retransmission timeout.
    pub client_timeout: Duration,
    /// Transactions-per-proposal bound in each broadcast service.
    pub max_batch: usize,
    /// Broadcast-service pipelining window.
    pub window: Option<usize>,
    /// PBR only: active replicas per group.
    pub active_replicas: usize,
    /// Broadcast-service machines per group.
    pub machines: u32,
    /// Consensus module for every group's broadcast service.
    pub backend: BackendKind,
    /// Whether the builder schedules client kick-off itself.
    pub start_clients: bool,
    /// Optional cross-shard commit observer, shared by every replica; the
    /// chaos harness checks it with
    /// [`crate::shard::check_two_pc_atomicity`].
    pub probe: Option<TwoPcProbe>,
}

impl ShardedOptions {
    /// Defaults mirroring [`DeployOptions::new`], with a per-shard loader.
    pub fn new(
        shards: usize,
        n_clients: usize,
        client_txns: impl Fn(usize) -> Vec<TxnRequest> + 'static,
        loader: impl Fn(usize, &Database) + 'static,
    ) -> ShardedOptions {
        ShardedOptions {
            shards,
            n_clients,
            client_txns: Box::new(client_txns),
            diversity: DiversityPolicy::Uniform,
            loader: Box::new(loader),
            mode: ExecutionMode::Compiled,
            client_timeout: Duration::from_secs(20),
            max_batch: 64,
            window: None,
            active_replicas: 2,
            machines: 3,
            backend: BackendKind::Paxos,
            start_clients: true,
            probe: None,
        }
    }
}

/// One replica group of a sharded deployment.
pub struct ShardGroup {
    /// Replica locations; under PBR `[primary, backup, spare]`.
    pub replicas: Vec<Loc>,
    /// The group's broadcast service.
    pub tob: TobDeployment,
}

/// A deployed sharded ShadowDB: `shards` independent replica groups over
/// one [`Runtime`], with clients routing single-shard transactions
/// straight to the owning group and cross-shard transactions through
/// deterministic 2PC-over-TOB (see [`crate::shard`]).
///
/// Layout: groups first (each group's broadcast servers then its
/// replicas), clients **last** — the opposite of the unsharded builders —
/// so fault harnesses can target the contiguous core prefix.
pub struct ShardedDeployment {
    /// The keyspace partitioning.
    pub map: ShardMap,
    /// One entry per shard.
    pub groups: Vec<ShardGroup>,
    /// Client locations.
    pub clients: Vec<Loc>,
    /// Client measurement handles.
    pub stats: Vec<Arc<Mutex<DbClientStats>>>,
}

impl ShardedDeployment {
    /// Builds `shards` primary-backup groups.
    pub fn build_pbr<R: Runtime + ?Sized>(
        rt: &mut R,
        options: &ShardedOptions,
        pbr: PbrOptions,
    ) -> ShardedDeployment {
        Self::build(rt, options, Some(pbr))
    }

    /// Builds `shards` state-machine-replicated groups.
    pub fn build_smr<R: Runtime + ?Sized>(
        rt: &mut R,
        options: &ShardedOptions,
    ) -> ShardedDeployment {
        Self::build(rt, options, None)
    }

    fn build<R: Runtime + ?Sized>(
        rt: &mut R,
        options: &ShardedOptions,
        pbr: Option<PbrOptions>,
    ) -> ShardedDeployment {
        let map = ShardMap::new(options.shards);
        let backend = options.backend;
        let per = tob_per(backend);
        let base = rt.node_count();
        let n_replicas = match &pbr {
            Some(_) => options.active_replicas as u32 + 1, // plus one spare
            None => options.machines,
        };
        let group_span = options.machines * per + n_replicas;

        // Every group's layout is a pure function of `base`, so routes to
        // *all* groups are known before any node exists — replicas need
        // them to address 2PC records at peers.
        let mut server_locs: Vec<Vec<Loc>> = Vec::new();
        let mut replica_locs: Vec<Vec<Loc>> = Vec::new();
        for g in 0..options.shards {
            let gbase = base + g as u32 * group_span;
            server_locs.push(
                (0..options.machines)
                    .map(|i| Loc::new(gbase + i * per))
                    .collect(),
            );
            replica_locs.push(
                (0..n_replicas)
                    .map(|i| Loc::new(gbase + options.machines * per + i))
                    .collect(),
            );
        }
        let routes: Vec<GroupRoute> = (0..options.shards)
            .map(|g| match &pbr {
                Some(_) => GroupRoute::Pbr {
                    replicas: replica_locs[g].clone(),
                },
                None => GroupRoute::Smr {
                    servers: server_locs[g].clone(),
                },
            })
            .collect();

        let mut groups = Vec::new();
        for g in 0..options.shards {
            let tob = TobDeployment::build(
                rt,
                &TobOptions {
                    machines: options.machines,
                    backend,
                    mode: options.mode,
                    max_batch: options.max_batch,
                    window: options.window,
                    ..TobOptions::default()
                },
                replica_locs[g].clone(),
            );
            assert_eq!(tob.servers, server_locs[g]);
            let role = ShardRole {
                map,
                shard: g,
                routes: routes.clone(),
                probe: options.probe.clone(),
            };
            match &pbr {
                Some(pbr_opts) => {
                    let config =
                        ReplicaConfig::initial(replica_locs[g][..options.active_replicas].to_vec());
                    let spares = replica_locs[g][options.active_replicas..].to_vec();
                    for (i, r) in replica_locs[g].iter().enumerate() {
                        let db = options.diversity.database(i);
                        (options.loader)(g, &db);
                        let replica = PbrReplica::new(
                            db,
                            config.clone(),
                            spares.clone(),
                            server_locs[g].clone(),
                            pbr_opts.clone(),
                        )
                        .with_role(role.clone());
                        let loc = rt.add_node(Box::new(replica));
                        assert_eq!(loc, *r);
                    }
                }
                None => {
                    for (i, r) in replica_locs[g].iter().enumerate() {
                        let db = options.diversity.database(i);
                        (options.loader)(g, &db);
                        let replica = SmrReplica::new(db).with_role(role.clone());
                        let loc = rt.add_node(Box::new(replica));
                        assert_eq!(loc, *r);
                    }
                }
            }
            groups.push(ShardGroup {
                replicas: replica_locs[g].clone(),
                tob,
            });
        }

        // Clients last.
        let sub_groups: Vec<Submission> = (0..options.shards)
            .map(|g| match &pbr {
                Some(_) => Submission::Pbr {
                    replicas: replica_locs[g].clone(),
                },
                None => Submission::Smr {
                    servers: server_locs[g].clone(),
                },
            })
            .collect();
        let mut stats = Vec::new();
        let mut clients = Vec::new();
        for i in 0..options.n_clients {
            let s = Arc::new(Mutex::new(DbClientStats::default()));
            stats.push(s.clone());
            let client = DbClient::new(
                Submission::Sharded {
                    map,
                    groups: sub_groups.clone(),
                },
                (options.client_txns)(i),
                s,
            )
            .with_timeout(options.client_timeout);
            clients.push(rt.add_node(Box::new(client)));
        }

        if pbr.is_some() {
            for group in &groups {
                for r in &group.replicas {
                    rt.send_at(VTime::ZERO, *r, PbrReplica::start_msg());
                }
            }
        }
        if options.start_clients {
            for cl in &clients {
                rt.send_at(VTime::from_millis(1), *cl, DbClient::start_msg());
            }
        }
        ShardedDeployment {
            map,
            groups,
            clients,
            stats,
        }
    }

    /// Total committed transactions across clients.
    pub fn committed(&self) -> usize {
        self.stats.iter().map(|s| s.lock().committed()).sum()
    }

    /// Every replica location, flattened in shard order.
    pub fn all_replicas(&self) -> Vec<Loc> {
        self.groups
            .iter()
            .flat_map(|g| g.replicas.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadowdb_workloads::bank;

    fn bank_options(n_clients: usize, txns_each: usize) -> DeployOptions {
        DeployOptions::new(
            n_clients,
            move |i| {
                let mut g = bank::BankGen::new(100 + i as u64, 1_000);
                (0..txns_each).map(|_| g.next_txn()).collect()
            },
            |db| bank::load(db, 1_000).expect("bank loads"),
        )
    }

    #[test]
    fn pbr_normal_case_commits_everything() {
        let mut sim = shadowdb_simnet::testing::default_net(3);
        let d = PbrDeployment::build(&mut sim, &bank_options(2, 15), PbrOptions::default());
        sim.run_until_quiescent(VTime::from_secs(120));
        assert_eq!(d.committed(), 30);
        for s in &d.stats {
            assert_eq!(s.lock().resends, 0, "no failures, no resends");
        }
    }

    #[test]
    fn smr_commits_everything() {
        let mut sim = shadowdb_simnet::testing::default_net(4);
        let d = SmrDeployment::build(&mut sim, &bank_options(2, 12));
        sim.run_until_quiescent(VTime::from_secs(300));
        assert_eq!(d.committed(), 24);
    }

    #[test]
    fn smr_replica_crash_is_transparent() {
        let mut sim = shadowdb_simnet::testing::default_net(5);
        let d = SmrDeployment::build(&mut sim, &bank_options(2, 20));
        // Crash one replica early: clients still get all answers from the
        // survivors, with no retransmissions needed beyond the timeout-free
        // path.
        sim.crash_at(VTime::from_millis(50), d.replicas[2]);
        sim.run_until_quiescent(VTime::from_secs(300));
        assert_eq!(d.committed(), 40);
    }

    #[test]
    fn pbr_primary_crash_recovers_and_resumes() {
        let mut sim = shadowdb_simnet::testing::default_net(6);
        let pbr = PbrOptions {
            detect_after: Duration::from_millis(500),
            heartbeat_every: Duration::from_millis(100),
            ..PbrOptions::default()
        };
        let mut options = bank_options(2, 150);
        options.client_timeout = Duration::from_secs(2);
        options.mode = ExecutionMode::InterpretedOpt;
        let d = PbrDeployment::build(&mut sim, &options, pbr);
        // Let some transactions through, then kill the primary mid-run.
        let mut t = 10;
        while d.committed() < 10 {
            sim.run_until(VTime::from_millis(t));
            t += 10;
            assert!(t < 10_000, "no progress before the crash");
        }
        let before = d.committed();
        assert!(before < 300, "the crash must interrupt the run");
        sim.crash_at(sim.now(), d.replicas[0]);
        sim.run_until_quiescent(VTime::from_secs(600));
        assert_eq!(
            d.committed(),
            300,
            "all transactions answered after failover"
        );
        let resends: u64 = d.stats.iter().map(|s| s.lock().resends).sum();
        assert!(resends > 0, "clients must have retried during the outage");
    }

    fn sharded_bank_options(
        shards: usize,
        n_clients: usize,
        txns_each: usize,
        transfer_every: usize,
    ) -> ShardedOptions {
        const ROWS: usize = 64;
        ShardedOptions::new(
            shards,
            n_clients,
            move |i| {
                let mut g = bank::BankGen::new(500 + i as u64, ROWS);
                (0..txns_each)
                    .map(|k| {
                        if transfer_every > 0 && k % transfer_every == 0 {
                            g.next_transfer()
                        } else {
                            g.next_txn()
                        }
                    })
                    .collect()
            },
            move |shard, db| bank::load_shard(db, ROWS, shards, shard).expect("bank shard loads"),
        )
    }

    #[test]
    fn sharded_single_shard_never_runs_two_pc() {
        let mut sim = shadowdb_simnet::testing::default_net(8);
        let probe: TwoPcProbe = Arc::new(Mutex::new(Vec::new()));
        let mut options = sharded_bank_options(1, 2, 12, 3);
        options.probe = Some(probe.clone());
        let d = ShardedDeployment::build_pbr(&mut sim, &options, PbrOptions::default());
        sim.run_until_quiescent(VTime::from_secs(120));
        assert_eq!(d.committed(), 24);
        assert!(
            probe.lock().is_empty(),
            "one shard means every transaction is single-shard: no 2PC"
        );
    }

    #[test]
    fn sharded_pbr_cross_shard_commits_atomically() {
        let mut sim = shadowdb_simnet::testing::default_net(9);
        let probe: TwoPcProbe = Arc::new(Mutex::new(Vec::new()));
        let mut options = sharded_bank_options(2, 2, 12, 2);
        options.probe = Some(probe.clone());
        let d = ShardedDeployment::build_pbr(&mut sim, &options, PbrOptions::default());
        sim.run_until_quiescent(VTime::from_secs(300));
        assert_eq!(d.committed(), 24);
        let events = probe.lock();
        assert!(
            !events.is_empty(),
            "the workload must actually exercise cross-shard commit"
        );
        crate::shard::check_two_pc_atomicity(&events).expect("atomic cross-shard histories");
    }

    #[test]
    fn sharded_smr_cross_shard_commits_atomically() {
        let mut sim = shadowdb_simnet::testing::default_net(10);
        let probe: TwoPcProbe = Arc::new(Mutex::new(Vec::new()));
        let mut options = sharded_bank_options(2, 2, 10, 2);
        options.probe = Some(probe.clone());
        let d = ShardedDeployment::build_smr(&mut sim, &options);
        sim.run_until_quiescent(VTime::from_secs(300));
        assert_eq!(d.committed(), 20);
        let events = probe.lock();
        assert!(!events.is_empty(), "cross-shard transfers must appear");
        crate::shard::check_two_pc_atomicity(&events).expect("atomic cross-shard histories");
    }

    #[test]
    fn pbr_backup_crash_recovers_with_spare() {
        let mut sim = shadowdb_simnet::testing::default_net(7);
        let pbr = PbrOptions {
            detect_after: Duration::from_millis(500),
            heartbeat_every: Duration::from_millis(100),
            ..PbrOptions::default()
        };
        let mut options = bank_options(1, 30);
        options.client_timeout = Duration::from_secs(2);
        let d = PbrDeployment::build(&mut sim, &options, pbr);
        sim.run_until(VTime::from_secs(1));
        sim.crash_at(VTime::from_secs(1), d.replicas[1]);
        sim.run_until_quiescent(VTime::from_secs(600));
        assert_eq!(d.committed(), 30);
    }
}
