//! Fast non-criterion perf smoke test for the fused GPM hot path and the
//! message plane.
//!
//! Drives the fused (dispatch-optimized) TwoThird and CLK programs for a
//! fixed number of messages — standalone and through the `Runtime` seam —
//! plus the framed wire codec, a TCP loopback echo, and a deterministic
//! virtual-time PBR failover-recovery measurement;
//! reports each metric, and **fails** (exit 1) if
//! any drifts more than 30 % the wrong way against the baseline recorded
//! in `crates/bench/perf_smoke_baseline.json` (throughput legs gate on a
//! floor, the recovery-latency leg on a ceiling). The whole run takes
//! well under a second, so CI can afford it on every push — unlike the
//! criterion suite, which needs minutes.
//!
//! Regenerate the baseline (after an intentional perf change, on the
//! reference machine) with:
//!
//! ```text
//! PERF_SMOKE_WRITE_BASELINE=1 cargo run --release -p shadowdb-bench --bin perf_smoke
//! ```
//!
//! The allowed regression is deliberately loose (30 %) because absolute
//! msgs/sec depends on the host; the gate exists to catch cliffs (an
//! accidental per-step allocation or a disabled dispatch table is worth
//! 2×, far beyond tolerance), not to police single-digit drift. Set
//! `PERF_SMOKE_FACTOR` to scale the threshold for known-slow hosts
//! (e.g. `PERF_SMOKE_FACTOR=0.5` halves the required msgs/sec).

use shadowdb_consensus::twothird::{propose_msg, TwoThird, TwoThirdConfig};
use shadowdb_eventml::optimize::optimize;
use shadowdb_eventml::{
    clk, Ctx, FnProcess, FrameEncoder, FrameReader, Msg, Process, SendInstr, Value,
};
use shadowdb_loe::{Loc, VTime};
use shadowdb_runtime::Runtime;
use shadowdb_simnet::{Latency, NetworkConfig, SimBuilder};
use shadowdb_tcpnet::TcpNet;
use std::time::{Duration, Instant};

const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/perf_smoke_baseline.json");
const TOLERANCE: f64 = 0.70;

/// msgs/sec of the fused TwoThird program: repeated fresh 8-instance
/// proposal bursts, the `opt_speedup/fused` workload.
fn twothird_fused_rate() -> f64 {
    let config = TwoThirdConfig::new(Loc::first_n(3), vec![Loc::new(100)]).with_auto_adopt();
    let class = TwoThird::new(config).class();
    let template = optimize(&class);
    let msgs: Vec<_> = (0..8).map(|i| propose_msg(i, Value::Int(i))).collect();
    let ctx = Ctx::at(Loc::new(0));
    let mut out: Vec<SendInstr> = Vec::new();
    let reps = 2_000usize;
    // Warm-up: fault in the symbol table and code paths.
    for _ in 0..50 {
        let mut p = template.clone();
        for m in &msgs {
            out.clear();
            p.step_into(&ctx, m, &mut out);
        }
    }
    let t = Instant::now();
    for _ in 0..reps {
        let mut p = template.clone();
        for m in &msgs {
            out.clear();
            p.step_into(&ctx, m, &mut out);
        }
    }
    (reps * msgs.len()) as f64 / t.elapsed().as_secs_f64()
}

/// msgs/sec of the fused CLK handler in steady state: one long-lived
/// process, one message repeated.
fn clk_fused_rate() -> f64 {
    let class = clk::handler_class(clk::ring_handle(3));
    let mut p = optimize(&class);
    let m = clk::clk_msg(Value::Int(0), 3);
    let ctx = Ctx::at(Loc::new(0));
    let mut out: Vec<SendInstr> = Vec::new();
    let steps = 200_000usize;
    for _ in 0..1_000 {
        out.clear();
        p.step_into(&ctx, &m, &mut out);
    }
    let t = Instant::now();
    for _ in 0..steps {
        out.clear();
        p.step_into(&ctx, &m, &mut out);
    }
    steps as f64 / t.elapsed().as_secs_f64()
}

/// msgs/sec of the fused CLK ring hosted in the simulator but assembled
/// and driven purely through `&mut dyn Runtime` — the seam every
/// deployment builder now uses. The trait only mediates *construction*
/// (add_node / send_at / run_for); each delivered message still goes
/// through the fused dispatch table directly, so this rate must stay on
/// the same order as the simulator's native event loop. A cliff here
/// would mean the runtime abstraction grew a per-message virtual hop.
fn clk_runtime_rate() -> f64 {
    const RING: u32 = 3;
    let hop = Duration::from_micros(1); // zero latency would never advance time
    let net = NetworkConfig {
        latency: Latency::Fixed(hop),
        drop_probability: 0.0,
        faults: Default::default(),
    };
    let mut sim = SimBuilder::new(7).network(net).build();
    {
        let rt: &mut dyn Runtime = &mut sim;
        let class = clk::handler_class(clk::ring_handle(RING));
        for _ in 0..RING {
            rt.add_node(Box::new(optimize(&class)));
        }
        rt.send_at(VTime::ZERO, Loc::new(0), clk::clk_msg(Value::Int(0), 0));
        // Warm-up: ~20k hops.
        rt.run_for(Duration::from_millis(20));
    }
    let before = sim.stats().delivered;
    let t = Instant::now();
    (&mut sim as &mut dyn Runtime).run_for(Duration::from_millis(300));
    let wall = t.elapsed().as_secs_f64();
    (sim.stats().delivered - before) as f64 / wall
}

/// msgs/sec through the full wire path in-process: encode + frame into
/// the reused per-connection scratch buffer, reassemble, decode. Uses a
/// Fig-8-sized payload (the paper's broadcast experiments use 140-byte
/// messages). Steady state must be allocation-light: the encoder scratch
/// and reader buffer are reused across all iterations, so a cliff here
/// means the codec grew a per-message allocation or copy.
fn codec_roundtrip_rate() -> f64 {
    // Header + int + 128-byte payload ≈ 140 encoded bytes.
    let msg = Msg::new(
        "bcast",
        Value::pair(
            Value::Int(7),
            Value::Bytes(bytes::Bytes::from(vec![0xA5u8; 128])),
        ),
    );
    let mut enc = FrameEncoder::new();
    let mut rdr = FrameReader::new();
    let mut roundtrip = |msg: &Msg| {
        let frame = enc.encode(msg);
        rdr.extend(frame);
        rdr.next_msg().expect("decodes").expect("one whole frame")
    };
    let reps = 100_000usize;
    for _ in 0..1_000 {
        let got = roundtrip(&msg);
        assert_eq!(got.header, msg.header);
    }
    let t = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(roundtrip(&msg));
    }
    reps as f64 / t.elapsed().as_secs_f64()
}

/// msgs/sec of a ping/pong echo over real loopback TCP sockets: every
/// message is framed, crosses the kernel, and is decoded on the other
/// side. Requests are pipelined in one burst, so the rate measures the
/// transport's sustained throughput (including the injection path through
/// the control thread), not a per-message RTT.
fn tcp_echo_rate() -> f64 {
    let mut net = TcpNet::new();
    let echo = net.add_node(Box::new(FnProcess::new(
        (),
        |_s, _c: &Ctx, m: &Msg| match m.body.as_loc() {
            Some(from) => vec![SendInstr::now(from, Msg::new("pong", Value::Unit))],
            None => vec![],
        },
    )));
    let (port, rx) = net.port();
    let ping = || Msg::new("ping", Value::Loc(port));
    let recv = |n: usize| {
        for _ in 0..n {
            rx.recv_timeout(Duration::from_secs(30))
                .expect("echo reply");
        }
    };
    // Warm-up: establish both connections and fault in the code paths.
    for _ in 0..200 {
        net.send(echo, ping());
    }
    recv(200);
    let reps = 5_000usize;
    let t = Instant::now();
    for _ in 0..reps {
        net.send(echo, ping());
    }
    recv(reps);
    let rate = reps as f64 / t.elapsed().as_secs_f64();
    net.shutdown();
    rate
}

/// Sustained echoes/sec of self-driving pinger/echo pairs on the shard
/// event loops: after the initial burst every message is node-to-node
/// socket traffic — no injection path, no port channel in the measured
/// window — with 4 pairs spread across shards and 64 pings in flight per
/// pair, so readiness events drain many frames per `read` and the pongs
/// leave in one `writev`. This is the transport's ceiling the way the
/// tentpole means it; `tcp_echo_msgs_per_sec` above keeps measuring the
/// injection-path figure for continuity.
fn tcp_echo_evloop_rate() -> f64 {
    shadowdb_bench::netload::echo_rate(4, 64, 2_000, 25_000)
}

/// Virtual-time msgs/sec of the Paxos broadcast service with the slot
/// window open (8 concurrent proposals), at batch size 1 so pipelining —
/// not batching — carries the load: 8 closed-loop clients on a 2 ms-hop
/// network keep several slots in flight at once. The leg also asserts the
/// tentpole claim directly: the same workload at window 1 (the old
/// one-proposal-in-flight behavior) must be at least 2× slower. Virtual
/// time makes both numbers deterministic, so the gate tracks protocol
/// changes, not host noise.
fn tob_pipeline_msgs_per_sec() -> f64 {
    use shadowdb_tob::client::{ClientStats, TobClient};
    use shadowdb_tob::deploy::{BackendKind, TobDeployment, TobOptions};
    use std::sync::Arc;

    const CLIENTS: u32 = 8;
    const MSGS: u64 = 25;
    let run = |window: usize| -> f64 {
        let net = NetworkConfig {
            latency: Latency::Fixed(Duration::from_millis(2)),
            drop_probability: 0.0,
            faults: Default::default(),
        };
        let mut sim = SimBuilder::new(64).network(net).build();
        let options = TobOptions {
            backend: BackendKind::Paxos,
            max_batch: 1,
            window: Some(window),
            ..TobOptions::default()
        };
        // Clients take locs 0..CLIENTS; the service deploys after them.
        let servers: Vec<Loc> = (0..options.machines)
            .map(|i| Loc::new(CLIENTS + i * 4))
            .collect();
        let mut stats = Vec::new();
        let mut client_locs = Vec::new();
        for _ in 0..CLIENTS {
            let s = Arc::new(parking_lot::Mutex::new(ClientStats::default()));
            let loc = sim.add_node(Box::new(TobClient::new(
                servers.clone(),
                Value::str("payload"),
                MSGS,
                s.clone(),
            )));
            stats.push(s);
            client_locs.push(loc);
        }
        TobDeployment::build(&mut sim, &options, client_locs.clone());
        for c in &client_locs {
            sim.send_at(VTime::ZERO, *c, TobClient::start_msg());
        }
        sim.run_until_quiescent(VTime::from_secs(600));
        let mut done = 0usize;
        let mut last = VTime::ZERO;
        for s in &stats {
            let s = s.lock();
            done += s.completed.len();
            for (_, d) in &s.completed {
                last = last.max(*d);
            }
        }
        assert_eq!(done, (CLIENTS as u64 * MSGS) as usize, "window {window}");
        done as f64 / (last.as_micros() as f64 / 1e6)
    };
    let serial = run(1);
    let pipelined = run(8);
    println!("  (tob window 1: {serial:.1}/s, window 8: {pipelined:.1}/s)");
    assert!(
        pipelined >= 2.0 * serial,
        "window 8 must at least double window-1 throughput: {pipelined:.0} vs {serial:.0}"
    );
    pipelined
}

/// Speedup of the statement/plan cache on a point-update replay: the same
/// UPDATE text re-executed through `execute` (cache hit: no parse, no name
/// resolution, no index selection) versus `execute_uncached` (the
/// pre-cache path). The ratio is what the gate records — it is
/// host-independent to first order — and the tentpole floor of 1.3× is
/// asserted directly.
fn sqldb_cached_update_speedup() -> f64 {
    use shadowdb_sqldb::{Database, EngineProfile};
    use shadowdb_workloads::bank;

    let db = Database::new(EngineProfile::h2());
    bank::load(&db, 1_000).expect("bank loads");
    let sql = "UPDATE accounts SET balance = balance + 1 WHERE id = 500";
    let time_with = |uncached: bool| -> f64 {
        let reps = 20_000usize;
        let mut txn = db.begin().expect("begins");
        for _ in 0..500 {
            txn.execute(sql).expect("warms");
        }
        let t = Instant::now();
        for _ in 0..reps {
            let rs = if uncached {
                txn.execute_uncached(sql)
            } else {
                txn.execute(sql)
            };
            std::hint::black_box(rs.expect("updates"));
        }
        let dt = t.elapsed().as_secs_f64();
        txn.commit().expect("commits");
        dt
    };
    let uncached = time_with(true);
    let cached = time_with(false);
    let speedup = uncached / cached;
    assert!(
        speedup >= 1.3,
        "plan cache must beat re-parsing by ≥1.3×, got {speedup:.2}×"
    );
    speedup
}

/// Virtual-time aggregate bank throughput of a 4-group sharded
/// deployment over the throughput of the identical workload on a single
/// group — the tentpole claim of the sharding layer, asserted directly:
/// four groups must at least double one group. The workload is 48
/// closed-loop clients of single-shard deposits on a LAN-latency
/// network, enough offered load to saturate one primary's virtual CPU;
/// with four groups the same load spreads over four primaries and four
/// broadcast services. Virtual time makes both numbers deterministic, so
/// the gate tracks protocol and routing changes, not host noise.
fn sharded_bank_speedup() -> f64 {
    use shadowdb::deploy::{ShardedDeployment, ShardedOptions};
    use shadowdb::pbr::PbrOptions;
    use shadowdb_workloads::{bank, TxnRequest};

    const ROWS: usize = 256;
    const CLIENTS: usize = 48;
    const TXNS: usize = 50;
    // Deterministic account mixer: a linear account formula would walk
    // every client through the shards with the same stride, forming
    // rotating convoys that serialize the groups (see ablation_shards).
    fn mix(k: usize, client: usize) -> usize {
        let mut x = (k as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((client as u64) << 32 | 0xDEAD_BEEF);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        x as usize
    }
    let run = |shards: usize| -> f64 {
        let mut sim = SimBuilder::new(11).network(NetworkConfig::lan()).build();
        let options = ShardedOptions::new(
            shards,
            CLIENTS,
            |client| {
                (0..TXNS)
                    .map(|k| TxnRequest::BankDeposit {
                        account: (mix(k, client) % ROWS) as i64,
                        amount: 1 + (k % 50) as i64,
                    })
                    .collect()
            },
            move |shard, db| bank::load_shard(db, ROWS, shards, shard).expect("loads"),
        );
        let d = ShardedDeployment::build_pbr(&mut sim, &options, PbrOptions::default());
        sim.run_until_quiescent(VTime::from_secs(3_600));
        assert_eq!(d.committed(), CLIENTS * TXNS, "{shards} shard(s)");
        let mut all: Vec<(VTime, VTime)> = Vec::new();
        for s in &d.stats {
            let s = s.lock();
            let warm = s.completed.len() / 10;
            all.extend(s.completed.iter().skip(warm).map(|(a, b, _)| (*a, *b)));
        }
        let first = all.iter().map(|(a, _)| *a).min().expect("commits");
        let last = all.iter().map(|(_, b)| *b).max().expect("commits");
        all.len() as f64 / last.saturating_since(first).as_secs_f64().max(1e-9)
    };
    let one = run(1);
    let four = run(4);
    println!("  (bank 1 shard: {one:.0}/s, 4 shards: {four:.0}/s)");
    assert!(
        four >= 2.0 * one,
        "4 shards must at least double 1-shard bank throughput: {four:.0} vs {one:.0}"
    );
    four / one
}

/// Client-observed failover time on the simulator, in **virtual**
/// milliseconds: a PBR deployment runs a bank workload, the primary is
/// crashed mid-run, and the leg reports the gap between the crash and the
/// first transaction answered after it — detection silence, the
/// reconfiguration broadcast, and the client's retry all included. This
/// is the analogue of the paper's Fig. 10 recovery experiment (≈640 ms
/// from failure to the service processing transactions again).
///
/// Virtual time makes the number deterministic: it does not depend on the
/// host, so the gate on it is about protocol/timer changes (a slower
/// detector, a lost-reconfiguration retry storm), not machine noise.
fn failover_recovery_ms() -> f64 {
    use shadowdb::deploy::{DeployOptions, PbrDeployment};
    use shadowdb::pbr::PbrOptions;
    use shadowdb_workloads::bank;

    const ACCOUNTS: usize = 400;
    let mut sim = shadowdb_simnet::testing::default_net(640);
    let options = DeployOptions {
        client_timeout: Duration::from_millis(400),
        ..DeployOptions::new(
            2,
            |client| {
                let mut g = bank::BankGen::new(9 + client as u64, ACCOUNTS);
                (0..400).map(|_| g.next_txn()).collect()
            },
            |db| bank::load(db, ACCOUNTS).expect("loads"),
        )
    };
    let pbr = PbrOptions {
        heartbeat_every: Duration::from_millis(50),
        detect_after: Duration::from_millis(300),
        ..PbrOptions::default()
    };
    let d = PbrDeployment::build(&mut sim, &options, pbr);
    let committed =
        |d: &PbrDeployment| -> usize { d.stats.iter().map(|s| s.lock().completed.len()).sum() };
    // Let the service reach steady state, then kill the primary.
    while committed(&d) < 20 {
        sim.run_for(Duration::from_millis(5));
    }
    let t_crash = sim.now();
    sim.crash_at(t_crash, d.replicas[0]);
    // The outage ends when a transaction *submitted after* the crash is
    // answered — replies already in flight at the crash don't count.
    let first_post_crash_answer = |d: &PbrDeployment| {
        d.stats
            .iter()
            .flat_map(|s| {
                s.lock()
                    .completed
                    .iter()
                    .filter(|(submitted, _, _)| *submitted > t_crash)
                    .map(|(_, answered, _)| *answered)
                    .collect::<Vec<_>>()
            })
            .min()
    };
    let first_after = loop {
        if let Some(t) = first_post_crash_answer(&d) {
            break t;
        }
        sim.run_for(Duration::from_millis(10));
        assert!(
            sim.now() < t_crash + Duration::from_secs(600),
            "failover never completed"
        );
    };
    (first_after.as_micros() - t_crash.as_micros()) as f64 / 1_000.0
}

/// Client-observed time to replace a backup replica under a running bank
/// workload, in **virtual** milliseconds: a fresh replica is added
/// through the reconfiguration handle, streams its snapshot and catch-up
/// overlapped with live traffic, settles as a normal member, and the
/// victim is removed — `ReconfigHandle::replace_replica` measured
/// wall-to-wall while two clients keep committing. This is the analogue
/// of the paper's state-transfer methodology (Sec. IV-B's ~50 KB batches
/// feeding Sec. III-A's overlapped recovery), and the gate catches
/// regressions in the join path: a lost subscription anchor, a snapshot
/// retry storm, or a catch-up that stalls behind live traffic all show
/// up as a longer rejoin.
fn reconfig_catchup_ms() -> f64 {
    use shadowdb::deploy::{DeployOptions, PbrDeployment};
    use shadowdb::diversity::DiversityPolicy;
    use shadowdb::pbr::PbrOptions;
    use shadowdb_workloads::bank;

    const ACCOUNTS: usize = 400;
    let mut sim = shadowdb_simnet::testing::default_net(641);
    let options = DeployOptions {
        client_timeout: Duration::from_millis(400),
        ..DeployOptions::new(
            2,
            |client| {
                let mut g = bank::BankGen::new(17 + client as u64, ACCOUNTS);
                (0..400).map(|_| g.next_txn()).collect()
            },
            |db| bank::load(db, ACCOUNTS).expect("loads"),
        )
    };
    let pbr = PbrOptions {
        heartbeat_every: Duration::from_millis(50),
        detect_after: Duration::from_millis(300),
        ..PbrOptions::default()
    };
    let d = PbrDeployment::build(&mut sim, &options, pbr.clone());
    let mut handle = d.reconfig(&mut sim, pbr, DiversityPolicy::Uniform, |db| {
        bank::load(db, ACCOUNTS).expect("loads")
    });
    let committed =
        |d: &PbrDeployment| -> usize { d.stats.iter().map(|s| s.lock().completed.len()).sum() };
    // Let the service reach steady state, then replace a backup mid-load.
    while committed(&d) < 100 {
        sim.run_for(Duration::from_millis(5));
    }
    let before = committed(&d);
    let t0 = sim.now();
    handle
        .replace_replica(&mut sim, d.replicas[1], Duration::from_secs(60))
        .expect("replacement completes");
    let ms = (sim.now().as_micros() - t0.as_micros()) as f64 / 1_000.0;
    assert!(
        committed(&d) > before,
        "clients must keep committing during the replacement (no full-group pause)"
    );
    ms
}

/// Real-fsync WAL throughput with group commit versus a sync per
/// transaction: the same 2 000 bank-sized records appended to a
/// file-backed log under the OS temp dir, once committing every append
/// (the naive durable design) and once committing at 64-record group
/// boundaries (what the replicas do — one fsync per applied group). The
/// leg reports the grouped rate and asserts the tentpole claim directly:
/// group commit must be at least 5× the per-transaction-fsync rate. The
/// ratio is host-independent to first order — both runs pay the same
/// syscall path seconds apart — so the in-main floor tracks the commit
/// path (an accidental fsync per append, a whole-log rewrite on the hot
/// path), not disk speed.
fn wal_group_commit_txns_per_sec() -> f64 {
    use shadowdb_runtime::StorageMode;
    use shadowdb_wal::{Disk, Wal};

    const TXNS: usize = 2_000;
    const GROUP: usize = 64;
    let root = StorageMode::fresh_file_root("perf-wal");
    let mode = StorageMode::File { root: root.clone() };
    // A bank transaction's framed apply record is ~100 bytes.
    let body = Value::pair(
        Value::Int(7),
        Value::Bytes(bytes::Bytes::from(vec![0xA5u8; 96])),
    );
    let run = |name: &str, group: usize| -> f64 {
        let mut wal = Wal::open(Disk::open(&mode, name, Duration::ZERO));
        let t = Instant::now();
        for i in 0..TXNS {
            wal.append(i as i64, &body);
            if (i + 1) % group == 0 {
                wal.commit();
            }
        }
        wal.commit();
        TXNS as f64 / t.elapsed().as_secs_f64()
    };
    let per_txn = run("per-txn", 1);
    let grouped = run("grouped", GROUP);
    let _ = std::fs::remove_dir_all(&root);
    println!("  (wal fsync-per-txn: {per_txn:.0}/s, group of {GROUP}: {grouped:.0}/s)");
    assert!(
        grouped >= 5.0 * per_txn,
        "group commit must beat per-transaction fsync by ≥5×: {grouped:.0} vs {per_txn:.0} txns/sec"
    );
    grouped
}

/// Virtual-time cost of a restart **from disk**, in milliseconds: a PBR
/// deployment with durability runs a bank workload, the backup is
/// power-cycled mid-run, and the leg measures from the reboot to the
/// completed rejoin — WAL replay plus the network suffix catch-up. The
/// probe also proves the rejoin went through the catch-up path, never a
/// full state transfer; `main` asserts the durability tentpole's payoff
/// by comparing against `reconfig_catchup_ms`, which replaces a replica
/// *without* a disk and must stream the whole state.
fn restart_from_disk_ms() -> f64 {
    use shadowdb::deploy::{DeployOptions, DurabilityOptions, PbrDeployment};
    use shadowdb::diversity::DiversityPolicy;
    use shadowdb::msgs::ReplicaConfig;
    use shadowdb::pbr::{PbrOptions, PbrReplica, TransferKind, TransferProbe};
    use shadowdb_runtime::{schedule_node_faults, FaultPlan, LazyRecover, NodeFaultKind};
    use shadowdb_workloads::bank;
    use std::sync::Arc;

    const ACCOUNTS: usize = 400;
    const SNAPSHOT_EVERY: i64 = 64;
    let mut sim = shadowdb_simnet::testing::default_net(642);
    let transfers: TransferProbe = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let options = DeployOptions {
        client_timeout: Duration::from_millis(400),
        durability: Some(DurabilityOptions {
            snapshot_every: SNAPSHOT_EVERY,
            transfer_probe: Some(transfers.clone()),
            ..DurabilityOptions::default()
        }),
        ..DeployOptions::new(
            2,
            |client| {
                let mut g = bank::BankGen::new(23 + client as u64, ACCOUNTS);
                (0..400).map(|_| g.next_txn()).collect()
            },
            |db| bank::load(db, ACCOUNTS).expect("loads"),
        )
    };
    let pbr = PbrOptions {
        heartbeat_every: Duration::from_millis(50),
        detect_after: Duration::from_millis(400),
        ..PbrOptions::default()
    };
    let d = PbrDeployment::build(&mut sim, &options, pbr.clone());
    let committed =
        |d: &PbrDeployment| -> usize { d.stats.iter().map(|s| s.lock().completed.len()).sum() };
    // Let the backup's WAL accumulate real state before the power cycle.
    while committed(&d) < 100 {
        sim.run_for(Duration::from_millis(5));
    }
    let victim = d.replicas[1];
    let disk = d.disks[1].clone();
    let crash = sim.now() + Duration::from_millis(5);
    let reboot = crash + Duration::from_millis(40);
    let plan = FaultPlan::new(0)
        .with_crash(crash, victim)
        .with_durable_restart(reboot, victim);
    let recover = {
        let disk = disk.clone();
        let config = ReplicaConfig::initial(d.replicas[..2].to_vec());
        let spares = d.replicas[2..].to_vec();
        let servers = d.tob.servers.clone();
        let pbr = pbr.clone();
        move |loc: Loc, kind: NodeFaultKind| {
            assert_eq!((loc, kind), (victim, NodeFaultKind::RestartDurable));
            let disk = disk.clone();
            let config = config.clone();
            let spares = spares.clone();
            let servers = servers.clone();
            let pbr = pbr.clone();
            Some(Box::new(LazyRecover::new(move || {
                disk.begin_recovery(13);
                let db = DiversityPolicy::Uniform.database(1);
                bank::load(&db, ACCOUNTS).expect("loads");
                Box::new(PbrReplica::recover_from(
                    db,
                    config.clone(),
                    spares.clone(),
                    servers.clone(),
                    pbr.clone(),
                    None,
                    victim,
                    disk.clone(),
                    SNAPSHOT_EVERY,
                ))
            })) as Box<dyn Process>)
        }
    };
    schedule_node_faults(&mut sim, &plan, recover);
    sim.send_at(
        reboot + Duration::from_millis(2),
        victim,
        PbrReplica::start_msg(),
    );
    let rejoined = |t: &TransferProbe| {
        t.lock()
            .iter()
            .any(|(l, k)| (*l, *k) == (victim, TransferKind::Catchup))
    };
    while !rejoined(&transfers) {
        sim.run_for(Duration::from_millis(1));
        assert!(
            sim.now() < reboot + Duration::from_secs(60),
            "restart from disk never rejoined"
        );
    }
    assert!(
        !transfers
            .lock()
            .iter()
            .any(|(l, k)| (*l, *k) == (victim, TransferKind::Snapshot)),
        "restart from disk fell back to a full state transfer"
    );
    (sim.now().as_micros() - reboot.as_micros()) as f64 / 1_000.0
}

/// Minimal extraction of `"key": <number>` from the baseline JSON — the
/// file is machine-written with a fixed shape, so no JSON library needed.
fn read_baseline(json: &str, key: &str) -> Option<f64> {
    let at = json.find(&format!("\"{key}\""))?;
    let rest = &json[at..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Which direction of drift counts as a regression for a metric.
/// Virtual-time throughput speedup of the lease read fast path over
/// TOB-ordered execution on SMR at a 95%-read zipfian mix — the lease
/// tentpole's headline figure, gated in-leg at 3× (`ablation_reads`
/// sweeps the full read-fraction grid). Host-independent: both runs are
/// deterministic virtual-time deployments on the same simulated LAN,
/// so the ratio is pure protocol cost — with leases every read the
/// holder answers skips its total-order broadcast entirely.
fn read_leases_speedup_95r() -> f64 {
    use shadowdb::deploy::{DeployOptions, SmrDeployment};
    use shadowdb::smr::SmrLeaseOptions;
    use shadowdb_workloads::{bank, KvGen, KvOptions};

    const ROWS: usize = 256;
    const CLIENTS: usize = 8;
    const TXNS_EACH: usize = 30;
    let throughput = |leases: bool| -> f64 {
        let mut sim = shadowdb_simnet::testing::default_net(4_650 + leases as u64);
        let mut options = DeployOptions::new(
            CLIENTS,
            |client| {
                let opts = KvOptions {
                    rows: ROWS,
                    read_fraction: 0.95,
                    theta: 0.99,
                };
                KvGen::new(0x5EED + client as u64, opts).script(TXNS_EACH)
            },
            |db| bank::load(db, ROWS).expect("bank loads"),
        );
        if leases {
            options.smr_leases = Some(SmrLeaseOptions::default());
        }
        let d = SmrDeployment::build(&mut sim, &options);
        sim.run_until_quiescent(VTime::from_secs(3_600));
        let mut first = VTime::MAX;
        let mut last = VTime::ZERO;
        let mut n = 0usize;
        for s in &d.stats {
            let s = s.lock();
            assert_eq!(s.completed.len(), TXNS_EACH, "every transaction answers");
            for (a, b, _) in &s.completed {
                first = first.min(*a);
                last = last.max(*b);
                n += 1;
            }
        }
        n as f64 / last.saturating_since(first).as_secs_f64().max(1e-9)
    };
    let ordered = throughput(false);
    let leased = throughput(true);
    let speedup = leased / ordered;
    assert!(
        speedup >= 3.0,
        "lease fast path must be >= 3x over TOB-ordered reads at a 95%-read mix, \
         got {speedup:.2}x ({leased:.0} vs {ordered:.0} txns/sec)"
    );
    speedup
}

#[derive(Clone, Copy)]
enum Gate {
    /// Throughput: fail when the value drops below `baseline × TOLERANCE`
    /// (scaled by `PERF_SMOKE_FACTOR` for slow hosts).
    HigherBetter,
    /// Latency: fail when the value climbs above `baseline ÷ TOLERANCE`.
    /// `PERF_SMOKE_FACTOR < 1` (a slow host) *raises* the ceiling.
    LowerBetter,
}

fn main() {
    let measured = [
        (
            "twothird_fused_msgs_per_sec",
            twothird_fused_rate(),
            Gate::HigherBetter,
        ),
        (
            "clk_fused_msgs_per_sec",
            clk_fused_rate(),
            Gate::HigherBetter,
        ),
        (
            "clk_runtime_msgs_per_sec",
            clk_runtime_rate(),
            Gate::HigherBetter,
        ),
        (
            "codec_roundtrip_msgs_per_sec",
            codec_roundtrip_rate(),
            Gate::HigherBetter,
        ),
        ("tcp_echo_msgs_per_sec", tcp_echo_rate(), Gate::HigherBetter),
        (
            "tcp_echo_evloop_msgs_per_sec",
            tcp_echo_evloop_rate(),
            Gate::HigherBetter,
        ),
        (
            "tob_pipeline_msgs_per_sec",
            tob_pipeline_msgs_per_sec(),
            Gate::HigherBetter,
        ),
        (
            "sqldb_cached_update_speedup",
            sqldb_cached_update_speedup(),
            Gate::HigherBetter,
        ),
        (
            "sharded_bank_speedup_4x1",
            sharded_bank_speedup(),
            Gate::HigherBetter,
        ),
        (
            "failover_recovery_ms",
            failover_recovery_ms(),
            Gate::LowerBetter,
        ),
        (
            "reconfig_catchup_ms",
            reconfig_catchup_ms(),
            Gate::LowerBetter,
        ),
        (
            "wal_group_commit_txns_per_sec",
            wal_group_commit_txns_per_sec(),
            Gate::HigherBetter,
        ),
        (
            "restart_from_disk_ms",
            restart_from_disk_ms(),
            Gate::LowerBetter,
        ),
        (
            "read_leases_speedup_95r",
            read_leases_speedup_95r(),
            Gate::HigherBetter,
        ),
    ];

    // The event-loop acceptance gate, host-independent to first order:
    // the socket echo path must stay within 4× of the in-process codec
    // roundtrip (the thread-per-link transport sat at ~7×). Both rates
    // were measured seconds apart on this host, so the ratio tracks
    // transport overhead, not machine speed.
    let rate_of = |key: &str| {
        measured
            .iter()
            .find(|(k, ..)| *k == key)
            .map(|(_, v, _)| *v)
            .expect("leg present")
    };
    let codec = rate_of("codec_roundtrip_msgs_per_sec");
    let evloop = rate_of("tcp_echo_evloop_msgs_per_sec");
    let ratio = codec / evloop;
    println!("codec/evloop ratio: {ratio:.2}x (gate: <= 4x)");
    assert!(
        ratio <= 4.0,
        "event-loop echo must stay within 4x of the codec roundtrip, got {ratio:.2}x \
         ({codec:.0} vs {evloop:.0} msgs/sec)"
    );

    // The durability tentpole's payoff, also host-independent: rejoining
    // from the local WAL + a suffix catch-up must beat replacing a
    // replica from scratch (snapshot stream + catch-up). Both are
    // deterministic virtual-time figures from the same simulator.
    let restart = rate_of("restart_from_disk_ms");
    let reconfig = rate_of("reconfig_catchup_ms");
    println!("restart-from-disk vs fresh-replica transfer: {restart:.1} ms vs {reconfig:.1} ms");
    assert!(
        restart < reconfig,
        "restart from disk must beat a fresh replica's full transfer: \
         {restart:.1} ms vs {reconfig:.1} ms"
    );

    if std::env::var("PERF_SMOKE_WRITE_BASELINE").is_ok() {
        let mut body = String::from("{\n");
        for (i, (k, v, _)) in measured.iter().enumerate() {
            let sep = if i + 1 == measured.len() { "" } else { "," };
            body.push_str(&format!("  \"{k}\": {v:.1}{sep}\n"));
        }
        body.push_str("}\n");
        std::fs::write(BASELINE_PATH, body).expect("write baseline");
        println!("baseline written to {BASELINE_PATH}");
        for (k, v, _) in &measured {
            println!("  {k}: {v:.1}");
        }
        return;
    }

    let factor: f64 = match std::env::var("PERF_SMOKE_FACTOR") {
        Ok(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("PERF_SMOKE_FACTOR must be a number, got {s:?}");
            std::process::exit(2);
        }),
        Err(_) => 1.0,
    };
    let json = std::fs::read_to_string(BASELINE_PATH).unwrap_or_else(|e| {
        eprintln!("cannot read {BASELINE_PATH}: {e}");
        eprintln!("run with PERF_SMOKE_WRITE_BASELINE=1 to create it");
        std::process::exit(2);
    });
    let mut failed = false;
    for (k, v, gate) in &measured {
        let base = read_baseline(&json, k).unwrap_or_else(|| panic!("no baseline for {k}"));
        let bad = match gate {
            Gate::HigherBetter => {
                let floor = base * TOLERANCE * factor;
                println!(
                    "{k}: {v:.0} (baseline {base:.0}, floor {floor:.0}) .. {}",
                    if *v < floor { "FAIL" } else { "ok" }
                );
                *v < floor
            }
            Gate::LowerBetter => {
                let ceiling = base / (TOLERANCE * factor);
                println!(
                    "{k}: {v:.1} (baseline {base:.1}, ceiling {ceiling:.1}) .. {}",
                    if *v > ceiling { "FAIL" } else { "ok" }
                );
                *v > ceiling
            }
        };
        failed |= bad;
    }
    if failed {
        eprintln!("perf smoke FAILED: >30% drift vs baseline");
        std::process::exit(1);
    }
    println!("perf smoke passed");
}
