//! Outbound links: lazily established per-(sender, destination) TCP
//! connections with reconnect, capped exponential backoff, and a bounded
//! per-link pending queue for frames that cannot be written right now.
//!
//! Each sending thread (a node thread, or the control thread injecting
//! external messages) owns one [`Links`]. A link is a single TCP stream
//! written by a single thread, so messages on one link arrive in FIFO
//! order; the per-connection [`FrameEncoder`] scratch buffer makes
//! steady-state sends allocation-free (the pending queue only allocates
//! while a link is down).
//!
//! Node-owned links (constructed with an origin location) consult the
//! net's installed [`FaultPlan`] per frame: a severed link force-closes
//! the connection and parks frames in the pending queue until the
//! partition heals — modelling TCP's buffer-and-retransmit behaviour —
//! while lossy windows drop frames and duplication windows write them
//! twice. Delay spikes and reorder windows are not reproducible at the
//! frame layer of a real FIFO stream and are ignored here (documented
//! substrate-fidelity caveat; the *schedule* is still byte-identical).

use crate::registry::Registry;
use shadowdb_eventml::{FrameEncoder, Msg};
use shadowdb_loe::{Loc, VTime};
use shadowdb_runtime::LinkVerdict;
use std::collections::VecDeque;
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// First reconnect delay; doubles per failed attempt up to
/// [`BACKOFF_CAP`].
const BACKOFF_START: Duration = Duration::from_millis(1);
/// Ceiling on the backoff between connection attempts.
const BACKOFF_CAP: Duration = Duration::from_millis(50);
/// Maximum frames parked per link while it is down. When full, the
/// *oldest* frame is evicted (and counted as dropped): protocols assume
/// fair-lossy links at worst, and the newest frames are the ones whose
/// delivery still matters after a long outage.
pub const PENDING_CAP: usize = 1024;

/// The outbound state of one destination.
struct LinkState {
    /// Established stream, `None` until first use or after a break.
    conn: Option<TcpStream>,
    /// Encoded frames waiting for the link to come (back) up; bounded by
    /// [`PENDING_CAP`] with drop-oldest eviction.
    pending: VecDeque<Vec<u8>>,
    /// Earliest instant the next connection attempt is permitted.
    next_attempt: Instant,
    /// Current backoff step, reset on success.
    backoff: Duration,
    /// Whether this link ever connected (distinguishes a *re*connect).
    ever_connected: bool,
    /// Per-link fault counter: the `n` fed to `FaultPlan::decide`, making
    /// the coin sequence deterministic per (sender, dest) link.
    fault_seq: u64,
}

impl LinkState {
    fn new() -> LinkState {
        LinkState {
            conn: None,
            pending: VecDeque::new(),
            next_attempt: Instant::now(),
            backoff: BACKOFF_START,
            ever_connected: false,
            fault_seq: 0,
        }
    }
}

/// The outbound half of one sending thread.
pub struct Links {
    registry: Arc<Registry>,
    /// The sending location, if this is a node's link set. `None` marks
    /// the control/external injector, which bypasses the fault plane (the
    /// driver must always be able to reach the system it is testing).
    origin: Option<Loc>,
    /// Indexed by destination location.
    links: Vec<LinkState>,
    enc: FrameEncoder,
}

impl Links {
    /// No connections yet; they are established on first send per link.
    /// `origin` is the sending node's location, or `None` for the control
    /// thread (whose sends are never faulted).
    pub fn new(registry: Arc<Registry>, origin: Option<Loc>) -> Links {
        Links {
            registry,
            origin,
            links: Vec::new(),
            enc: FrameEncoder::new(),
        }
    }

    /// Encodes `msg` and writes the frame to the link to `dest`,
    /// establishing or re-establishing the connection as needed. Frames
    /// that cannot be written (link severed by the fault plane, listener
    /// unreachable) are parked in the bounded pending queue and flushed by
    /// [`Links::tick`] or a later send.
    pub fn send(&mut self, dest: Loc, msg: &Msg) {
        let idx = dest.index() as usize;
        if self.links.len() <= idx {
            self.links.resize_with(idx + 1, LinkState::new);
        }
        let mut copies = 1usize;
        if let Some(origin) = self.origin {
            let now = VTime::from_micros(self.registry.start.elapsed().as_micros() as u64);
            let guard = self.registry.faults.plan.lock();
            let verdict = guard.as_ref().and_then(|plan| {
                plan.active(origin, dest, now).then(|| {
                    let st = &mut self.links[idx];
                    let k = st.fault_seq;
                    st.fault_seq += 1;
                    plan.decide(origin, dest, now, k)
                })
            });
            drop(guard);
            match verdict {
                None => {}
                Some(LinkVerdict::Drop { severed: false }) => {
                    self.registry
                        .faults
                        .frames_dropped
                        .fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Some(LinkVerdict::Drop { severed: true }) => {
                    // Partition: force-close so the peer's reader sees the
                    // break, and park the frame for the post-heal flush.
                    if let Some(conn) = self.links[idx].conn.take() {
                        let _ = conn.shutdown(Shutdown::Both);
                    }
                    let frame = self.enc.encode(msg);
                    enqueue(&self.registry, &mut self.links[idx], frame);
                    return;
                }
                Some(LinkVerdict::Deliver {
                    duplicate: true, ..
                }) => {
                    copies = 2;
                    self.registry
                        .faults
                        .frames_duplicated
                        .fetch_add(1, Ordering::Relaxed);
                }
                Some(LinkVerdict::Deliver { .. }) => {}
            }
        }
        let frame = self.enc.encode(msg);
        for _ in 0..copies {
            transmit(&self.registry, &mut self.links[idx], idx, frame);
        }
    }

    /// Retries links with parked frames: reconnects (respecting backoff)
    /// and flushes in FIFO order, skipping links the fault plane still
    /// holds severed. Cheap when nothing is pending; called from the node
    /// poll loop.
    pub fn tick(&mut self) {
        if self.links.iter().all(|st| st.pending.is_empty()) {
            return;
        }
        let now = VTime::from_micros(self.registry.start.elapsed().as_micros() as u64);
        let plan = self.registry.faults.plan.lock().clone();
        for idx in 0..self.links.len() {
            if self.links[idx].pending.is_empty() {
                continue;
            }
            if let (Some(origin), Some(plan)) = (self.origin, plan.as_ref()) {
                if plan.cut(origin, Loc::new(idx as u32), now) {
                    continue;
                }
            }
            flush(&self.registry, &mut self.links[idx], idx);
        }
    }
}

/// Writes one frame on the fast path, falling back to the pending queue
/// when the link is down.
fn transmit(registry: &Registry, st: &mut LinkState, idx: usize, frame: &[u8]) {
    if st.pending.is_empty() {
        if let Some(conn) = st.conn.as_mut() {
            if conn.write_all(frame).is_ok() {
                return;
            }
            // Broken pipe: drop the stream and fall through to reconnect.
            st.conn = None;
        }
        if try_connect(registry, st, idx) {
            let conn = st.conn.as_mut().expect("just connected");
            if conn.write_all(frame).is_ok() {
                return;
            }
            st.conn = None;
        }
    }
    // Link down (or frames already queued ahead of this one): preserve
    // FIFO by parking the frame and flushing the queue.
    enqueue(registry, st, frame);
    flush(registry, st, idx);
}

/// Parks an encoded frame, evicting the oldest (counted as dropped) when
/// the queue is full.
fn enqueue(registry: &Registry, st: &mut LinkState, frame: &[u8]) {
    if st.pending.len() >= PENDING_CAP {
        st.pending.pop_front();
        registry
            .faults
            .frames_dropped
            .fetch_add(1, Ordering::Relaxed);
    }
    st.pending.push_back(frame.to_vec());
}

/// Drains the pending queue in FIFO order while the link cooperates.
fn flush(registry: &Registry, st: &mut LinkState, idx: usize) {
    while !st.pending.is_empty() {
        if st.conn.is_none() && !try_connect(registry, st, idx) {
            return;
        }
        let conn = st.conn.as_mut().expect("connected");
        let frame = st.pending.front().expect("non-empty");
        if conn.write_all(frame).is_ok() {
            st.pending.pop_front();
        } else {
            st.conn = None;
            return;
        }
    }
}

/// One non-blocking connection attempt, gated by the capped exponential
/// backoff. Returns whether `st.conn` is now established.
fn try_connect(registry: &Registry, st: &mut LinkState, idx: usize) -> bool {
    let now = Instant::now();
    if now < st.next_attempt {
        return false;
    }
    if registry.shutdown.load(Ordering::SeqCst) {
        return false;
    }
    let Some(addr) = registry.addr_of(idx as u32) else {
        return false;
    };
    match TcpStream::connect(addr) {
        Ok(stream) => {
            let _ = stream.set_nodelay(true);
            if st.ever_connected {
                registry.faults.reconnects.fetch_add(1, Ordering::Relaxed);
            }
            st.ever_connected = true;
            st.backoff = BACKOFF_START;
            st.conn = Some(stream);
            true
        }
        Err(_) => {
            st.next_attempt = now + st.backoff;
            st.backoff = (st.backoff * 2).min(BACKOFF_CAP);
            false
        }
    }
}
