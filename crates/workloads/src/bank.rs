//! The bank-account micro-benchmark (Sec. IV-B).
//!
//! "The micro-benchmark consists of a database of bank accounts, each
//! having an identifier, an owner, and a balance. … These transactions
//! deposit money on a randomly selected account. Rows are 16 bytes in
//! length and the database contains 50,000 rows."

use crate::txn::{TxnOutcome, TxnRequest};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use shadowdb_sqldb::{Database, SqlError, SqlValue, Transaction};

/// The paper's row count.
pub const DEFAULT_ROWS: usize = 50_000;

/// Creates the accounts table and loads `rows` accounts with zero-length
/// owner strings, making each row exactly 16 bytes (id 8 B + owner 0 B +
/// balance 8 B), as in the paper.
///
/// # Errors
///
/// Propagates engine errors.
pub fn load(db: &Database, rows: usize) -> Result<(), SqlError> {
    db.execute("CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, balance INT)")?;
    db.insert_rows(
        "accounts",
        (0..rows as i64).map(|i| {
            vec![
                SqlValue::Int(i),
                SqlValue::Text(String::new()),
                SqlValue::Int(1_000),
            ]
        }),
    )?;
    Ok(())
}

/// Loads only the accounts owned by `shard` of a `shards`-way hash
/// partition (`id mod shards == shard`): the per-shard loader for
/// sharded deployments, where each replica group must receive only its
/// own rows. `load_shard(db, rows, 1, 0)` is exactly [`load`].
///
/// # Errors
///
/// Propagates engine errors.
pub fn load_shard(db: &Database, rows: usize, shards: usize, shard: usize) -> Result<(), SqlError> {
    db.set_shard_scope(shadowdb_sqldb::ShardScope::bank(shards, shard));
    db.execute("CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, balance INT)")?;
    db.insert_rows(
        "accounts",
        (0..rows as i64)
            .filter(|i| i.rem_euclid(shards as i64) as usize == shard)
            .map(|i| {
                vec![
                    SqlValue::Int(i),
                    SqlValue::Text(String::new()),
                    SqlValue::Int(1_000),
                ]
            }),
    )?;
    Ok(())
}

/// Loads a variant with `row_bytes`-sized rows (16 B or 1 KB in
/// Fig. 10(b)): the owner column is padded so the whole row reaches the
/// target, with 3 columns for 16 B rows and 4 columns for larger rows, as
/// in the paper's state-transfer experiment.
///
/// # Errors
///
/// Propagates engine errors.
pub fn load_sized(db: &Database, rows: usize, row_bytes: usize) -> Result<(), SqlError> {
    if row_bytes <= 16 {
        return load(db, rows);
    }
    db.execute("CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, note TEXT, balance INT)")?;
    let pad = row_bytes.saturating_sub(16) / 2;
    db.insert_rows(
        "accounts",
        (0..rows as i64).map(|i| {
            vec![
                SqlValue::Int(i),
                SqlValue::Text("x".repeat(pad)),
                SqlValue::Text("y".repeat(row_bytes - 16 - pad)),
                SqlValue::Int(1_000),
            ]
        }),
    )?;
    Ok(())
}

/// The deposit stored procedure.
pub fn deposit(db: &Database, account: i64, amount: i64) -> Result<TxnOutcome, SqlError> {
    let mut txn = db.begin()?;
    let out = deposit_in(&mut txn, account, amount)?;
    txn.commit()?;
    Ok(out)
}

/// The deposit body, for an already-open transaction (group apply).
/// The reported cost is the virtual time this procedure added to `txn`.
pub fn deposit_in(
    txn: &mut Transaction,
    account: i64,
    amount: i64,
) -> Result<TxnOutcome, SqlError> {
    let start = txn.virtual_cost();
    let rs = txn.execute(&deposit_sql(account, amount))?;
    Ok(TxnOutcome {
        committed: true,
        result: vec![SqlValue::Int(rs.affected as i64)],
        cost: txn.virtual_cost() - start,
    })
}

/// Negative amounts (transfer debits) render as subtraction so the
/// statement stays within the parser's literal grammar.
fn deposit_sql(account: i64, amount: i64) -> String {
    if amount < 0 {
        let abs = amount.unsigned_abs();
        format!("UPDATE accounts SET balance = balance - {abs} WHERE id = {account}")
    } else {
        format!("UPDATE accounts SET balance = balance + {amount} WHERE id = {account}")
    }
}

/// The transfer stored procedure: debit `from`, credit `to`. Overdrafts
/// are allowed, so a transfer always commits — which makes its 2PC vote
/// independent of database state (vote stability under deterministic
/// re-execution).
pub fn transfer(db: &Database, from: i64, to: i64, amount: i64) -> Result<TxnOutcome, SqlError> {
    let mut txn = db.begin()?;
    let out = transfer_in(&mut txn, from, to, amount)?;
    txn.commit()?;
    Ok(out)
}

/// The transfer body, for an already-open transaction (group apply).
pub fn transfer_in(
    txn: &mut Transaction,
    from: i64,
    to: i64,
    amount: i64,
) -> Result<TxnOutcome, SqlError> {
    let start = txn.virtual_cost();
    let debited = txn.execute(&deposit_sql(from, -amount))?.affected;
    let credited = txn.execute(&deposit_sql(to, amount))?.affected;
    Ok(TxnOutcome {
        committed: true,
        result: vec![SqlValue::Int((debited + credited) as i64)],
        cost: txn.virtual_cost() - start,
    })
}

/// The read stored procedure.
pub fn read_balance(db: &Database, account: i64) -> Result<TxnOutcome, SqlError> {
    let mut txn = db.begin()?;
    let out = read_balance_in(&mut txn, account)?;
    txn.commit()?;
    Ok(out)
}

/// The read body, for an already-open transaction (group apply).
pub fn read_balance_in(txn: &mut Transaction, account: i64) -> Result<TxnOutcome, SqlError> {
    let start = txn.virtual_cost();
    let rs = txn.query(&format!(
        "SELECT balance FROM accounts WHERE id = {account}"
    ))?;
    let balance = rs
        .rows
        .first()
        .map(|r| r[0].clone())
        .unwrap_or(SqlValue::Null);
    Ok(TxnOutcome {
        committed: true,
        result: vec![balance],
        cost: txn.virtual_cost() - start,
    })
}

/// A deterministic generator of deposit requests on random accounts.
#[derive(Clone, Debug)]
pub struct BankGen {
    rng: SmallRng,
    rows: usize,
}

impl BankGen {
    /// Creates a generator over `rows` accounts.
    pub fn new(seed: u64, rows: usize) -> BankGen {
        BankGen {
            rng: SmallRng::seed_from_u64(seed),
            rows,
        }
    }

    /// The next deposit request.
    pub fn next_txn(&mut self) -> TxnRequest {
        TxnRequest::BankDeposit {
            account: self.rng.gen_range(0..self.rows as i64),
            amount: self.rng.gen_range(1..100),
        }
    }

    /// The next transfer request between two distinct random accounts.
    /// Under a `shards`-way hash partition (`id mod shards`) the two
    /// accounts usually land on different shards, making this the bank
    /// workload's cross-shard transaction.
    pub fn next_transfer(&mut self) -> TxnRequest {
        let from = self.rng.gen_range(0..self.rows as i64);
        let mut to = self.rng.gen_range(0..self.rows as i64 - 1);
        if to >= from {
            to += 1;
        }
        TxnRequest::BankTransfer {
            from,
            to,
            amount: self.rng.gen_range(1..100),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadowdb_sqldb::EngineProfile;

    #[test]
    fn load_and_deposit() {
        let db = Database::new(EngineProfile::h2());
        load(&db, 100).unwrap();
        assert_eq!(db.table_len("accounts"), 100);
        let out = deposit(&db, 42, 58).unwrap();
        assert!(out.committed);
        assert!(out.cost.as_micros() > 0);
        let out = read_balance(&db, 42).unwrap();
        assert_eq!(out.result, vec![SqlValue::Int(1_058)]);
    }

    #[test]
    fn shard_loader_scopes_and_rejects_misrouted_rows() {
        let db = Database::new(EngineProfile::h2());
        load_shard(&db, 10, 2, 0).unwrap();
        // Only even accounts were loaded.
        assert_eq!(db.table_len("accounts"), 5);
        assert!(read_balance(&db, 4).unwrap().result == vec![SqlValue::Int(1_000)]);
        // A row belonging to shard 1 is rejected at apply time, not
        // silently materialised: the lock table is scoped to shard 0.
        let err = db
            .execute("INSERT INTO accounts VALUES (5, 'x', 1000)")
            .unwrap_err();
        assert!(
            err.to_string().contains("shard scope"),
            "unexpected error: {err}"
        );
        // Own rows stay writable.
        assert!(deposit(&db, 4, 7).unwrap().committed);
    }

    #[test]
    fn rows_are_16_bytes() {
        let db = Database::new(EngineProfile::h2());
        load(&db, 10).unwrap();
        assert_eq!(db.byte_size(), 160);
    }

    #[test]
    fn sized_rows_match_target() {
        let db = Database::new(EngineProfile::h2());
        load_sized(&db, 10, 1_024).unwrap();
        assert_eq!(db.byte_size(), 10 * 1_024);
    }

    #[test]
    fn generator_is_deterministic_and_in_range() {
        let mut a = BankGen::new(9, 50);
        let mut b = BankGen::new(9, 50);
        for _ in 0..20 {
            let ta = a.next_txn();
            assert_eq!(ta, b.next_txn());
            if let TxnRequest::BankDeposit { account, amount } = ta {
                assert!((0..50).contains(&account));
                assert!((1..100).contains(&amount));
            } else {
                panic!("unexpected request");
            }
        }
    }

    #[test]
    fn transfer_moves_money_and_allows_overdraft() {
        let db = Database::new(EngineProfile::h2());
        load(&db, 10).unwrap();
        let out = transfer(&db, 1, 2, 300).unwrap();
        assert!(out.committed);
        assert_eq!(out.result, vec![SqlValue::Int(2)]);
        assert_eq!(
            read_balance(&db, 1).unwrap().result,
            vec![SqlValue::Int(700)]
        );
        assert_eq!(
            read_balance(&db, 2).unwrap().result,
            vec![SqlValue::Int(1_300)]
        );
        // Overdraft: balances may go negative, the transfer still commits.
        let out = transfer(&db, 1, 2, 5_000).unwrap();
        assert!(out.committed);
        assert_eq!(
            read_balance(&db, 1).unwrap().result,
            vec![SqlValue::Int(-4_300)]
        );
    }

    #[test]
    fn shard_loader_partitions_rows() {
        let shards = 3;
        let dbs: Vec<Database> = (0..shards)
            .map(|s| {
                let db = Database::new(EngineProfile::h2());
                load_shard(&db, 100, shards, s).unwrap();
                db
            })
            .collect();
        let total: usize = dbs.iter().map(|db| db.table_len("accounts")).sum();
        assert_eq!(total, 100);
        // Shard 1 holds exactly the ids congruent to 1 mod 3.
        assert_eq!(dbs[1].table_len("accounts"), 33);
        assert_eq!(
            read_balance(&dbs[1], 4).unwrap().result,
            vec![SqlValue::Int(1_000)]
        );
        assert_eq!(
            read_balance(&dbs[1], 3).unwrap().result,
            vec![SqlValue::Null]
        );
    }

    #[test]
    fn transfer_generator_is_deterministic_and_distinct() {
        let mut a = BankGen::new(11, 40);
        let mut b = BankGen::new(11, 40);
        for _ in 0..30 {
            let ta = a.next_transfer();
            assert_eq!(ta, b.next_transfer());
            if let TxnRequest::BankTransfer { from, to, amount } = ta {
                assert_ne!(from, to);
                assert!((0..40).contains(&from) && (0..40).contains(&to));
                assert!((1..100).contains(&amount));
            } else {
                panic!("unexpected request");
            }
        }
    }

    #[test]
    fn deposits_replay_identically() {
        // Determinism across replicas: same requests → same final state.
        let mk = || {
            let db = Database::new(EngineProfile::hsqldb());
            load(&db, 50).unwrap();
            db
        };
        let db1 = mk();
        let db2 = mk();
        let mut g = BankGen::new(3, 50);
        for _ in 0..100 {
            let t = g.next_txn();
            t.apply(&db1).unwrap();
            t.apply(&db2).unwrap();
        }
        let sum = |db: &Database| {
            db.execute("SELECT SUM(balance) FROM accounts")
                .unwrap()
                .rows[0][0]
                .clone()
        };
        assert_eq!(sum(&db1), sum(&db2));
    }
}
