//! Offline stand-in for the `criterion` crate.
//!
//! Unlike the other vendored stand-ins, this one cannot be a thin wrapper:
//! it is the measurement harness behind the repo's recorded benchmark
//! numbers. It performs real wall-clock measurement — warmup, then a fixed
//! number of timed samples, reporting the median ns/iteration — and prints
//! one line per benchmark. When `CRITERION_JSON` names a file, each result
//! is also appended there as a JSON line:
//!
//! ```text
//! {"group":"opt_speedup","bench":"fused","median_ns":123.4,"samples":60}
//! ```
//!
//! Medians over many samples make the numbers robust to scheduler noise;
//! confidence intervals, outlier classification, and HTML reports are out
//! of scope.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque to the optimizer: prevents dead-code elimination of results.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped per timing sample (sizing hint only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per sample.
    SmallInput,
    /// Large inputs: few per sample.
    LargeInput,
    /// One input per sample.
    PerIteration,
}

/// Measurement configuration shared by all groups.
#[derive(Clone, Debug)]
pub struct Criterion {
    warm_up: Duration,
    target_time: Duration,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(150),
            target_time: Duration::from_millis(900),
            samples: 60,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("\n== group {name} ==");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Runs one benchmark; `f` drives the [`Bencher`].
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            config: self.criterion.clone(),
            median_ns: 0.0,
            samples: 0,
        };
        f(&mut b);
        report(&self.name, id, b.median_ns, b.samples);
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

fn report(group: &str, bench: &str, median_ns: f64, samples: usize) {
    eprintln!("{group}/{bench:<24} time: {}", fmt_ns(median_ns));
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(
                f,
                "{{\"group\":\"{group}\",\"bench\":\"{bench}\",\"median_ns\":{median_ns:.2},\"samples\":{samples}}}"
            );
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    config: Criterion,
    median_ns: f64,
    samples: usize,
}

impl Bencher {
    /// Measures `routine` called in a loop.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        self.iter_batched(|| (), |()| routine(), BatchSize::SmallInput);
    }

    /// Measures `routine` over fresh inputs from `setup`; only the routine
    /// is timed. As in upstream criterion, `size` bounds how many inputs
    /// are prepared per timed batch: `SmallInput` prepares a whole sample
    /// at once, `LargeInput` batches of 10 (inputs stay cache-resident the
    /// way a deployed program is), `PerIteration` one at a time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warmup, and discover how many iterations fit one sample.
        let warm_deadline = Instant::now() + self.config.warm_up;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        loop {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            let _ = t.elapsed();
            warm_iters += 1;
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let warm_elapsed = warm_start.elapsed();
        // Aim each sample at ~target_time/samples of measured work, at
        // least 1 iteration.
        let per_iter_ns = (warm_elapsed.as_nanos() as f64 / warm_iters as f64).max(1.0);
        let sample_ns = self.config.target_time.as_nanos() as f64 / self.config.samples as f64;
        let iters_per_sample = ((sample_ns / per_iter_ns) as u64).clamp(1, 1_000_000);

        let batch = match size {
            BatchSize::SmallInput => iters_per_sample,
            BatchSize::LargeInput => 10,
            BatchSize::PerIteration => 1,
        }
        .max(1);
        let mut medians: Vec<f64> = Vec::with_capacity(self.config.samples);
        let mut inputs: Vec<I> = Vec::with_capacity(batch as usize);
        let mut outputs: Vec<O> = Vec::with_capacity(batch as usize);
        for _ in 0..self.config.samples {
            let mut remaining = iters_per_sample;
            let mut elapsed = Duration::ZERO;
            while remaining > 0 {
                let b = batch.min(remaining);
                inputs.clear();
                for _ in 0..b {
                    inputs.push(setup());
                }
                let t = Instant::now();
                for input in inputs.drain(..) {
                    outputs.push(black_box(routine(input)));
                }
                elapsed += t.elapsed();
                // As in upstream criterion, outputs are collected during
                // the batch and dropped outside the timed region.
                outputs.clear();
                remaining -= b;
            }
            medians.push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        medians.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        self.median_ns = medians[medians.len() / 2];
        self.samples = medians.len();
    }
}

/// Declares a function that runs the given benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut criterion = Criterion {
            warm_up: Duration::from_millis(5),
            target_time: Duration::from_millis(20),
            samples: 10,
        };
        let mut g = criterion.benchmark_group("selftest");
        let mut measured = 0.0;
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            measured = b.median_ns;
        });
        g.finish();
        assert!(measured > 0.0);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut criterion = Criterion {
            warm_up: Duration::from_millis(5),
            target_time: Duration::from_millis(20),
            samples: 10,
        };
        let mut g = criterion.benchmark_group("selftest");
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.into_iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
            assert!(b.median_ns > 0.0);
        });
        g.finish();
    }
}
