//! Causal relations over event orderings.
//!
//! The paper defines happens-before recursively (Sec. II-C2):
//!
//! ```text
//! e1 → e2  ==r  ∃e:E. (e < e2)
//!               ∧ ((¬(loc(e) = loc(e2))) ⇒ (e2 caused by e))
//!               ∧ ((e = e1) ∨ e1 → e)
//! ```
//!
//! For a concrete trace the immediate predecessors of `e2` are its local
//! predecessor and (if it was triggered by a message) the send event that
//! caused it; happens-before is the transitive closure over those edges.

use crate::event::EventOrder;
use crate::ids::EventId;

/// The immediate causal predecessors of `e`: local predecessor plus cause.
pub fn immediate_preds<M>(eo: &EventOrder<M>, e: EventId) -> Vec<EventId> {
    let mut preds = Vec::with_capacity(2);
    if let Some(p) = eo.local_pred(e) {
        preds.push(p);
    }
    if let Some(c) = eo.event(e).cause() {
        if !preds.contains(&c) {
            preds.push(c);
        }
    }
    preds
}

/// Lamport's happens-before `a → b`: reachability of `a` from `b` through
/// immediate causal predecessor edges.
pub fn happens_before<M>(eo: &EventOrder<M>, a: EventId, b: EventId) -> bool {
    if a == b {
        return false;
    }
    // Events are appended consistently with causality, so predecessors always
    // have smaller indices; once the walk drops below `a` it cannot reach it.
    let mut seen = vec![false; eo.len()];
    let mut stack = immediate_preds(eo, b);
    while let Some(e) = stack.pop() {
        if e == a {
            return true;
        }
        if seen[e.index()] || e.index() < a.index() {
            continue;
        }
        seen[e.index()] = true;
        stack.extend(immediate_preds(eo, e));
    }
    false
}

/// Whether `a` and `b` are concurrent (neither happens before the other).
pub fn concurrent<M>(eo: &EventOrder<M>, a: EventId, b: EventId) -> bool {
    a != b && !happens_before(eo, a, b) && !happens_before(eo, b, a)
}

/// All events that happen before `e`, in ascending id order.
pub fn causal_past<M>(eo: &EventOrder<M>, e: EventId) -> Vec<EventId> {
    let mut in_past = vec![false; eo.len()];
    let mut stack = immediate_preds(eo, e);
    while let Some(p) = stack.pop() {
        if !in_past[p.index()] {
            in_past[p.index()] = true;
            stack.extend(immediate_preds(eo, p));
        }
    }
    (0..eo.len() as u32)
        .map(EventId::new)
        .filter(|id| in_past[id.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Loc, VTime};

    fn l(i: u32) -> Loc {
        Loc::new(i)
    }
    fn t(us: u64) -> VTime {
        VTime::from_micros(us)
    }

    /// Builds the classic diagram: p0: a --m--> p1: b ; p0: c (after a);
    /// p2: d concurrent with everything.
    fn diamond() -> (EventOrder<&'static str>, [EventId; 4]) {
        let mut eo = EventOrder::new();
        let a = eo.record(l(0), t(1), "a", None, None);
        let b = eo.record(l(1), t(5), "b", Some(a), Some(l(0)));
        let c = eo.record(l(0), t(6), "c", None, None);
        let d = eo.record(l(2), t(3), "d", None, None);
        (eo, [a, b, c, d])
    }

    #[test]
    fn message_edge_orders() {
        let (eo, [a, b, _, _]) = diamond();
        assert!(happens_before(&eo, a, b));
        assert!(!happens_before(&eo, b, a));
    }

    #[test]
    fn local_edge_orders() {
        let (eo, [a, _, c, _]) = diamond();
        assert!(happens_before(&eo, a, c));
    }

    #[test]
    fn transitivity_through_chain() {
        let mut eo = EventOrder::new();
        let a = eo.record(l(0), t(1), 0, None, None);
        let b = eo.record(l(1), t(2), 1, Some(a), Some(l(0)));
        let c = eo.record(l(2), t(3), 2, Some(b), Some(l(1)));
        let d = eo.record(l(2), t(4), 3, None, None);
        assert!(happens_before(&eo, a, c));
        assert!(happens_before(&eo, a, d)); // a → c (message), c → d (local)
    }

    #[test]
    fn concurrency_detected() {
        let (eo, [a, b, _, d]) = diamond();
        assert!(concurrent(&eo, a, d));
        assert!(concurrent(&eo, b, d));
        assert!(!concurrent(&eo, a, b));
        assert!(!concurrent(&eo, a, a));
    }

    #[test]
    fn irreflexive() {
        let (eo, [a, ..]) = diamond();
        assert!(!happens_before(&eo, a, a));
    }

    #[test]
    fn causal_past_collects_all() {
        let mut eo = EventOrder::new();
        let a = eo.record(l(0), t(1), 0, None, None);
        let b = eo.record(l(0), t(2), 1, None, None);
        let c = eo.record(l(1), t(3), 2, Some(b), Some(l(0)));
        let x = eo.record(l(2), t(1), 9, None, None);
        let past = causal_past(&eo, c);
        assert_eq!(past, vec![a, b]);
        assert!(causal_past(&eo, x).is_empty());
    }

    #[test]
    fn preds_deduplicated() {
        // An event whose cause is also its local predecessor.
        let mut eo = EventOrder::new();
        let a = eo.record(l(0), t(1), 0, None, None);
        let b = eo.record(l(0), t(2), 1, Some(a), Some(l(0)));
        assert_eq!(immediate_preds(&eo, b), vec![a]);
    }
}
