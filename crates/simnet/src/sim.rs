//! The discrete-event simulation engine.

use crate::cost::{CostModel, ZeroCost};
use crate::net::{FaultPlan, LinkVerdict, NetworkConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use shadowdb_eventml::{Ctx, Msg, Process};
use shadowdb_loe::{EventId, EventOrder, Loc, VTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::time::Duration;

enum Action {
    Deliver {
        dest: Loc,
        msg: Msg,
        cause: Option<EventId>,
        sender: Option<Loc>,
    },
    Crash(Loc),
    Restart(Loc, Box<dyn Process>),
}

struct Item {
    time: VTime,
    seq: u64,
    action: Action,
}

impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Item {}
impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Item {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

struct NodeSlot {
    process: Box<dyn Process>,
    up: bool,
    /// Index of the machine whose CPU this node's work occupies.
    machine: usize,
    handled: u64,
}

/// Counters accumulated over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages delivered to (and handled by) a node.
    pub delivered: u64,
    /// Messages lost to background random loss.
    pub dropped_net: u64,
    /// Messages addressed to a crashed node.
    pub dropped_down: u64,
    /// Crash events executed.
    pub crashes: u64,
    /// Messages lost to the fault plan (partitions, lossy windows).
    pub dropped_fault: u64,
    /// Messages the fault plan delivered twice.
    pub duplicated_fault: u64,
}

/// Configures and creates a [`Simulation`].
pub struct SimBuilder {
    seed: u64,
    network: NetworkConfig,
    cost: Box<dyn CostModel>,
    capture_trace: bool,
}

impl SimBuilder {
    /// Starts a builder with the given determinism seed.
    pub fn new(seed: u64) -> SimBuilder {
        SimBuilder {
            seed,
            network: NetworkConfig::lan(),
            cost: Box::new(ZeroCost),
            capture_trace: false,
        }
    }

    /// Sets the network model (default: [`NetworkConfig::lan`]).
    pub fn network(mut self, network: NetworkConfig) -> SimBuilder {
        self.network = network;
        self
    }

    /// Sets the CPU service-time model (default: zero cost).
    pub fn cost_model(mut self, cost: impl CostModel + 'static) -> SimBuilder {
        self.cost = Box::new(cost);
        self
    }

    /// Captures every delivery as an event in an
    /// [`EventOrder`] for post-run property checking. Off by default (large
    /// runs produce large traces).
    pub fn capture_trace(mut self, on: bool) -> SimBuilder {
        self.capture_trace = on;
        self
    }

    /// Builds the simulation.
    pub fn build(self) -> Simulation {
        Simulation {
            now: VTime::ZERO,
            queue: BinaryHeap::new(),
            nodes: Vec::new(),
            machines: Vec::new(),
            faults: self.network.faults.clone(),
            network: self.network,
            cost: self.cost,
            rng: SmallRng::seed_from_u64(self.seed),
            seq: 0,
            fault_counters: HashMap::new(),
            link_last_arrival: HashMap::new(),
            trace: if self.capture_trace {
                Some(EventOrder::new())
            } else {
                None
            },
            stats: SimStats::default(),
            outbuf: Vec::new(),
        }
    }
}

/// A running simulated world.
pub struct Simulation {
    now: VTime,
    queue: BinaryHeap<Reverse<Item>>,
    nodes: Vec<NodeSlot>,
    /// Per-machine CPU availability (busy-until instants).
    machines: Vec<VTime>,
    network: NetworkConfig,
    cost: Box<dyn CostModel>,
    rng: SmallRng,
    seq: u64,
    /// The active fault schedule (seeded with the network's initial plan,
    /// replaceable via `Runtime::install_fault_plan`).
    faults: FaultPlan,
    /// Per-directed-link message counters driving the plan's pure
    /// per-message coin flips.
    fault_counters: HashMap<(Loc, Loc), u64>,
    /// FIFO enforcement per directed link.
    link_last_arrival: HashMap<(Loc, Loc), VTime>,
    trace: Option<EventOrder<Msg>>,
    stats: SimStats,
    /// Reusable buffer the stepped process writes its sends into; drained
    /// by [`Simulation::execute`], so the delivery hot path allocates
    /// nothing once the buffer has grown to the working-set size.
    outbuf: Vec<shadowdb_eventml::SendInstr>,
}

impl Simulation {
    /// Adds a node hosting `process` on its own machine; returns its
    /// location.
    pub fn add_node(&mut self, process: Box<dyn Process>) -> Loc {
        let loc = Loc::new(self.nodes.len() as u32);
        let machine = self.machines.len();
        self.machines.push(VTime::ZERO);
        self.nodes.push(NodeSlot {
            process,
            up: true,
            machine,
            handled: 0,
        });
        loc
    }

    /// Adds a node hosting `process` on the *same machine* as `peer`: the
    /// two share a CPU, so service time charged to one delays the other.
    /// The paper co-locates databases with broadcast-service processes
    /// (Sec. IV-B), which is exactly the contention this models.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is not a known node.
    pub fn add_node_colocated(&mut self, process: Box<dyn Process>, peer: Loc) -> Loc {
        let machine = self.nodes[peer.index() as usize].machine;
        let loc = Loc::new(self.nodes.len() as u32);
        self.nodes.push(NodeSlot {
            process,
            up: true,
            machine,
            handled: 0,
        });
        loc
    }

    /// The current virtual time.
    pub fn now(&self) -> VTime {
        self.now
    }

    /// Number of nodes added so far (the next node gets this index as its
    /// location).
    pub fn node_count(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// Replaces the CPU cost model (e.g. once service locations are known).
    pub fn set_cost_model(&mut self, cost: impl crate::cost::CostModel + 'static) {
        self.cost = Box::new(cost);
    }

    /// Run counters so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// The captured trace, if trace capture was enabled.
    pub fn trace(&self) -> Option<&EventOrder<Msg>> {
        self.trace.as_ref()
    }

    /// Whether the node at `loc` is up.
    ///
    /// # Panics
    ///
    /// Panics if `loc` was not created by [`Simulation::add_node`].
    pub fn node_up(&self, loc: Loc) -> bool {
        self.nodes[loc.index() as usize].up
    }

    /// Messages handled by the node at `loc`.
    pub fn node_handled(&self, loc: Loc) -> u64 {
        self.nodes[loc.index() as usize].handled
    }

    /// Injects a message from outside the system (no causing event), to be
    /// delivered at `time` (plus nothing — external injections bypass the
    /// network model).
    pub fn send_at(&mut self, time: VTime, dest: Loc, msg: Msg) {
        let time = time.max(self.now);
        self.push(
            time,
            Action::Deliver {
                dest,
                msg,
                cause: None,
                sender: None,
            },
        );
    }

    /// Schedules a crash of `loc` at `time`.
    pub fn crash_at(&mut self, time: VTime, loc: Loc) {
        let time = time.max(self.now);
        self.push(time, Action::Crash(loc));
    }

    /// Schedules a restart of `loc` at `time` with a fresh process (crash
    /// failures lose volatile state; the new process starts from whatever
    /// state it is constructed with, e.g. recovered from a snapshot).
    pub fn restart_at(&mut self, time: VTime, loc: Loc, process: Box<dyn Process>) {
        let time = time.max(self.now);
        self.push(time, Action::Restart(loc, process));
    }

    fn push(&mut self, time: VTime, action: Action) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Item { time, seq, action }));
    }

    /// Runs until the queue is exhausted or virtual time would exceed
    /// `limit`; returns the time of the last executed item (unlike
    /// [`Simulation::run_until`], the clock is *not* advanced to the
    /// limit when the queue drains earlier).
    pub fn run_until_quiescent(&mut self, limit: VTime) -> VTime {
        loop {
            let due = matches!(self.queue.peek(), Some(Reverse(i)) if i.time <= limit);
            if !due {
                break;
            }
            let Reverse(item) = self.queue.pop().expect("peeked a due item");
            self.now = self.now.max(item.time);
            self.execute(item);
        }
        // Include CPU work still draining after the last message (e.g. a
        // bulk insert charged by the final state-transfer chunk).
        let busy = self.machines.iter().copied().max().unwrap_or(VTime::ZERO);
        self.now = self.now.max(busy.min(limit));
        self.now
    }

    /// Executes all items scheduled at or before `deadline`, then advances
    /// the clock to `deadline`.
    pub fn run_until(&mut self, deadline: VTime) {
        loop {
            let due = matches!(self.queue.peek(), Some(Reverse(i)) if i.time <= deadline);
            if !due {
                break;
            }
            let Reverse(item) = self.queue.pop().expect("peeked a due item");
            self.now = self.now.max(item.time);
            self.execute(item);
        }
        self.now = self.now.max(deadline);
    }

    fn execute(&mut self, item: Item) {
        match item.action {
            Action::Crash(loc) => {
                // Fault plans may name locations that never materialized
                // (a planned joiner the run did not add): ignore, exactly
                // like crashing an already-crashed node is a no-op.
                if let Some(slot) = self.nodes.get_mut(loc.index() as usize) {
                    slot.up = false;
                    self.stats.crashes += 1;
                }
            }
            Action::Restart(loc, process) => {
                if let Some(slot) = self.nodes.get_mut(loc.index() as usize) {
                    slot.process = process;
                    slot.up = true;
                }
            }
            Action::Deliver {
                dest,
                msg,
                cause,
                sender,
            } => {
                let idx = dest.index() as usize;
                if idx >= self.nodes.len() {
                    // Under online reconfiguration a removed node's peers
                    // may still address it, and a fault plan may target a
                    // node added later than this delivery: count the loss
                    // like a delivery to a crashed node instead of
                    // treating the location as a wiring bug.
                    self.stats.dropped_down += 1;
                    return;
                }
                if !self.nodes[idx].up {
                    self.stats.dropped_down += 1;
                    return;
                }
                // CPU model: if the node's machine is busy, the message
                // waits for the CPU.
                let machine = self.nodes[idx].machine;
                if self.machines[machine] > item.time {
                    let at = self.machines[machine];
                    self.push(
                        at,
                        Action::Deliver {
                            dest,
                            msg,
                            cause,
                            sender,
                        },
                    );
                    return;
                }
                let start = self.now;
                let cost = self.cost.handle_cost(dest, &msg);
                self.nodes[idx].handled += 1;
                self.stats.delivered += 1;
                let event = self
                    .trace
                    .as_mut()
                    .map(|eo| eo.record(dest, start, msg.clone(), cause, sender));
                let ctx = Ctx::new(dest, start);
                let mut outbuf = std::mem::take(&mut self.outbuf);
                outbuf.clear();
                self.nodes[idx].process.step_into(&ctx, &msg, &mut outbuf);
                // Charge both the model cost and whatever the process
                // itself consumed (e.g. transaction execution).
                let step_cost = self.nodes[idx].process.take_step_cost();
                let leave = start + cost + step_cost;
                self.machines[machine] = leave;
                for instr in outbuf.drain(..) {
                    self.route(dest, leave, instr, event);
                }
                self.outbuf = outbuf;
            }
        }
    }

    /// Routes one send instruction emitted by `from` at time `leave`.
    fn route(
        &mut self,
        from: Loc,
        leave: VTime,
        instr: shadowdb_eventml::SendInstr,
        cause: Option<EventId>,
    ) {
        let depart = leave + instr.delay;
        if instr.dest == from {
            // Local (timer) delivery: no network.
            self.push(
                depart,
                Action::Deliver {
                    dest: instr.dest,
                    msg: instr.msg,
                    cause,
                    sender: Some(from),
                },
            );
            return;
        }
        if self.network.drops(from, instr.dest, &mut self.rng) {
            self.stats.dropped_net += 1;
            return;
        }
        // The fault plane: drop, duplicate, delay, or reorder per the
        // installed plan's windows.
        let mut extra = Duration::ZERO;
        let mut copies = 1;
        let mut reordering = false;
        if self.faults.active(from, instr.dest, depart) {
            let n = self.fault_counters.entry((from, instr.dest)).or_insert(0);
            let k = *n;
            *n += 1;
            match self.faults.decide(from, instr.dest, depart, k) {
                LinkVerdict::Drop { .. } => {
                    self.stats.dropped_fault += 1;
                    return;
                }
                LinkVerdict::Deliver {
                    extra_delay,
                    duplicate,
                } => {
                    extra = extra_delay;
                    if duplicate {
                        copies = 2;
                        self.stats.duplicated_fault += 1;
                    }
                    reordering = self.faults.reorders(from, instr.dest, depart);
                }
            }
        }
        let dest = instr.dest;
        let latency = self.network.latency.sample(from, dest, &mut self.rng);
        if copies > 1 {
            // The duplicate takes its own (jittered) trip.
            let dup_latency = self.network.latency.sample(from, dest, &mut self.rng);
            self.deliver_on_link(
                from,
                dest,
                depart + dup_latency + extra,
                reordering,
                instr.msg.clone(),
                cause,
            );
        }
        self.deliver_on_link(
            from,
            dest,
            depart + latency + extra,
            reordering,
            instr.msg,
            cause,
        );
    }

    /// Schedules a network delivery, enforcing per-link FIFO unless an
    /// active reorder window suspends it (deliveries then land wherever
    /// their jitter puts them, so later sends can overtake earlier ones).
    fn deliver_on_link(
        &mut self,
        from: Loc,
        dest: Loc,
        raw_arrival: VTime,
        reordering: bool,
        msg: Msg,
        cause: Option<EventId>,
    ) {
        let mut arrival = raw_arrival;
        if !reordering {
            // FIFO per link, as over a TCP connection.
            let last = self
                .link_last_arrival
                .entry((from, dest))
                .or_insert(VTime::ZERO);
            arrival = arrival.max(*last);
            *last = arrival;
        }
        self.push(
            arrival,
            Action::Deliver {
                dest,
                msg,
                cause,
                sender: Some(from),
            },
        );
    }

    /// Replaces the active fault schedule (the network's initial plan is
    /// installed at build time). Per-link fault counters reset so a fresh
    /// plan replays from coin flip zero.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
        self.fault_counters.clear();
    }
}

impl shadowdb_runtime::Runtime for Simulation {
    fn add_node(&mut self, process: Box<dyn Process>) -> Loc {
        Simulation::add_node(self, process)
    }

    fn add_node_colocated(&mut self, process: Box<dyn Process>, peer: Loc) -> Loc {
        Simulation::add_node_colocated(self, process, peer)
    }

    fn node_count(&self) -> u32 {
        Simulation::node_count(self)
    }

    fn now(&self) -> VTime {
        Simulation::now(self)
    }

    fn send_at(&mut self, at: VTime, dest: Loc, msg: Msg) {
        Simulation::send_at(self, at, dest, msg);
    }

    fn crash_at(&mut self, at: VTime, loc: Loc) {
        Simulation::crash_at(self, at, loc);
    }

    fn restart_at(&mut self, at: VTime, loc: Loc, process: Box<dyn Process>) {
        Simulation::restart_at(self, at, loc, process);
    }

    fn set_cost_model(&mut self, cost: Box<dyn shadowdb_runtime::CostModel>) {
        self.cost = cost;
    }

    /// A port is an ordinary simulated node running a
    /// [`shadowdb_runtime::PortProcess`]; it occupies the next location, so
    /// numbering matches every other substrate.
    fn port(&mut self) -> (Loc, shadowdb_runtime::PortRx) {
        let (tx, rx) = shadowdb_runtime::PortRx::pair();
        let loc = Simulation::add_node(self, Box::new(shadowdb_runtime::PortProcess::new(tx)));
        (loc, rx)
    }

    fn run_for(&mut self, duration: std::time::Duration) {
        let deadline = self.now + duration;
        self.run_until(deadline);
    }

    fn install_fault_plan(&mut self, plan: FaultPlan) {
        Simulation::install_fault_plan(self, plan);
    }

    fn fault_stats(&self) -> (u64, u64) {
        (self.stats.dropped_fault, self.stats.duplicated_fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Latency;
    use shadowdb_eventml::{FnProcess, SendInstr, Value};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn relay(next: Loc, hops_left: i64) -> Box<dyn Process> {
        let _ = hops_left;
        Box::new(FnProcess::new((), move |_s, _ctx: &Ctx, msg: &Msg| {
            let n = msg.body.int();
            if n > 0 {
                vec![SendInstr::now(next, Msg::new("hop", Value::Int(n - 1)))]
            } else {
                vec![]
            }
        }))
    }

    #[test]
    fn ring_terminates_and_counts() {
        let mut sim = SimBuilder::new(1).network(NetworkConfig::lan()).build();
        let a = sim.add_node(relay(Loc::new(1), 0));
        let b = sim.add_node(relay(Loc::new(0), 0));
        sim.send_at(VTime::ZERO, a, Msg::new("hop", Value::Int(10)));
        sim.run_until_quiescent(VTime::from_secs(10));
        assert_eq!(sim.stats().delivered, 11);
        assert!(sim.now() >= VTime::from_micros(10 * 100)); // ≥10 hops of ≥100µs
        assert!(sim.node_handled(a) >= 5 && sim.node_handled(b) >= 5);
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let mut sim = SimBuilder::new(42).network(NetworkConfig::lan()).build();
            let a = sim.add_node(relay(Loc::new(1), 0));
            let _b = sim.add_node(relay(Loc::new(0), 0));
            sim.send_at(VTime::ZERO, a, Msg::new("hop", Value::Int(50)));
            sim.run_until_quiescent(VTime::from_secs(10));
            sim.now().as_micros()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crash_drops_messages() {
        let mut sim = SimBuilder::new(1).build();
        let a = sim.add_node(relay(Loc::new(1), 0));
        let b = sim.add_node(relay(Loc::new(0), 0));
        sim.crash_at(VTime::from_millis(0), b);
        sim.send_at(VTime::from_millis(1), a, Msg::new("hop", Value::Int(5)));
        sim.run_until_quiescent(VTime::from_secs(1));
        assert!(!sim.node_up(b));
        assert_eq!(sim.stats().delivered, 1); // only a's event
        assert_eq!(sim.stats().dropped_down, 1);
    }

    #[test]
    fn unknown_locations_drop_instead_of_panicking() {
        // Regression for online reconfiguration: fault plans and stale
        // peers may address locations that do not exist (yet, or anymore).
        let mut sim = SimBuilder::new(1).build();
        let a = sim.add_node(relay(Loc::new(9), 0));
        let ghost = Loc::new(9);
        // Deliveries to an unknown node are counted losses, not panics —
        // both external injections and node-originated sends.
        sim.send_at(VTime::from_millis(1), ghost, Msg::new("x", Value::Unit));
        sim.send_at(VTime::from_millis(2), a, Msg::new("hop", Value::Int(1)));
        // Crash/restart of an unknown node is a no-op.
        sim.crash_at(VTime::from_millis(3), ghost);
        sim.restart_at(VTime::from_millis(4), ghost, relay(Loc::new(0), 0));
        sim.run_until_quiescent(VTime::from_secs(1));
        assert_eq!(sim.stats().dropped_down, 2);
        assert_eq!(sim.stats().crashes, 0);
        // A node added after the run started receives normally (locations
        // allocate sequentially, so the late node lands at the next slot).
        let late = sim.add_node(relay(Loc::new(0), 0));
        sim.send_at(sim.now(), late, Msg::new("hop", Value::Int(0)));
        sim.run_until_quiescent(VTime::from_secs(2));
        assert_eq!(sim.stats().dropped_down, 2);
        assert!(sim.node_up(late));
    }

    #[test]
    fn restart_revives_node() {
        let count = Arc::new(AtomicU64::new(0));
        let c = count.clone();
        let counting = move || {
            let c = c.clone();
            Box::new(FnProcess::new((), move |_s, _ctx: &Ctx, _m: &Msg| {
                c.fetch_add(1, Ordering::Relaxed);
                vec![]
            })) as Box<dyn Process>
        };
        let mut sim = SimBuilder::new(1).build();
        let a = sim.add_node(counting());
        sim.crash_at(VTime::from_millis(1), a);
        sim.send_at(VTime::from_millis(2), a, Msg::new("x", Value::Unit)); // lost
        sim.restart_at(VTime::from_millis(3), a, counting());
        sim.send_at(VTime::from_millis(4), a, Msg::new("x", Value::Unit)); // handled
        sim.run_until_quiescent(VTime::from_secs(1));
        assert_eq!(count.load(Ordering::Relaxed), 1);
        assert!(sim.node_up(a));
    }

    #[test]
    fn cpu_cost_serializes_node_work() {
        // Two messages arrive (almost) together; with a 10ms service time the
        // second handling starts after the first completes.
        let times = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let t2 = times.clone();
        let p = FnProcess::new((), move |_s, ctx: &Ctx, _m: &Msg| {
            t2.lock().push(ctx.now.as_micros());
            vec![]
        });
        let mut sim = SimBuilder::new(1)
            .cost_model(crate::cost::FnCost(|_l: Loc, _m: &Msg| {
                Duration::from_millis(10)
            }))
            .build();
        let a = sim.add_node(Box::new(p));
        sim.send_at(VTime::from_micros(0), a, Msg::new("x", Value::Unit));
        sim.send_at(VTime::from_micros(1), a, Msg::new("x", Value::Unit));
        sim.run_until_quiescent(VTime::from_secs(1));
        let times = times.lock();
        assert_eq!(times.len(), 2);
        assert_eq!(times[0], 0);
        assert_eq!(times[1], 10_000); // waited for the busy CPU
    }

    #[test]
    fn fifo_per_link_despite_jitter() {
        // A sender emits 20 numbered messages in one step; with jittered
        // latency they must still arrive in order (TCP FIFO).
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let s2 = seen.clone();
        let recv = FnProcess::new((), move |_s, _ctx: &Ctx, m: &Msg| {
            s2.lock().push(m.body.int());
            vec![]
        });
        let burst = FnProcess::new((), |_s, _ctx: &Ctx, m: &Msg| {
            if m.header.name() != "go" {
                return vec![];
            }
            (0..20)
                .map(|i| SendInstr::now(Loc::new(1), Msg::new("n", Value::Int(i))))
                .collect()
        });
        let mut sim = SimBuilder::new(99)
            .network(NetworkConfig {
                latency: Latency::Jittered {
                    base: Duration::from_micros(100),
                    jitter: Duration::from_micros(500),
                },
                drop_probability: 0.0,
                faults: FaultPlan::default(),
            })
            .build();
        let a = sim.add_node(Box::new(burst));
        let _b = sim.add_node(Box::new(recv));
        sim.send_at(VTime::ZERO, a, Msg::new("go", Value::Unit));
        sim.run_until_quiescent(VTime::from_secs(1));
        let seen = seen.lock();
        assert_eq!(*seen, (0..20).collect::<Vec<i64>>());
    }

    #[test]
    fn trace_capture_links_causality() {
        let mut sim = SimBuilder::new(1).capture_trace(true).build();
        let a = sim.add_node(relay(Loc::new(1), 0));
        let _b = sim.add_node(relay(Loc::new(0), 0));
        sim.send_at(VTime::ZERO, a, Msg::new("hop", Value::Int(3)));
        sim.run_until_quiescent(VTime::from_secs(1));
        let eo = sim.trace().unwrap();
        assert_eq!(eo.len(), 4);
        // Every event after the first was caused by the previous one.
        let ids: Vec<_> = eo.iter().map(|e| e.id()).collect();
        for w in ids.windows(2) {
            assert!(eo.happens_before(w[0], w[1]));
        }
    }

    #[test]
    fn fault_plan_partitions_then_heals() {
        let seen = Arc::new(AtomicU64::new(0));
        let s2 = seen.clone();
        let recv = FnProcess::new((), move |_s, _ctx: &Ctx, _m: &Msg| {
            s2.fetch_add(1, Ordering::Relaxed);
            vec![]
        });
        let fwd = FnProcess::new((), |_s, _ctx: &Ctx, m: &Msg| {
            if m.header.name() == "go" {
                vec![SendInstr::now(Loc::new(1), Msg::new("x", Value::Unit))]
            } else {
                vec![]
            }
        });
        let mut net = NetworkConfig::instant();
        net.faults =
            FaultPlan::new(1).with_isolation(Loc::new(1), VTime::ZERO, VTime::from_secs(1));
        let mut sim = SimBuilder::new(1).network(net).build();
        let a = sim.add_node(Box::new(fwd));
        let _b = sim.add_node(Box::new(recv));
        // During the cut: a's relay to b is lost (a's own injected "go"
        // bypasses the network model, as all external injections do).
        sim.send_at(VTime::from_millis(100), a, Msg::new("go", Value::Unit));
        // After heal: delivered.
        sim.send_at(VTime::from_millis(1_500), a, Msg::new("go", Value::Unit));
        sim.run_until_quiescent(VTime::from_secs(3));
        assert_eq!(seen.load(Ordering::Relaxed), 1);
        assert_eq!(sim.stats().dropped_fault, 1);
        assert_eq!(sim.fault_counters.len(), 1);
    }

    #[test]
    fn fault_plan_duplicates_deliveries() {
        use crate::net::{LinkFault, LinkSel};
        let seen = Arc::new(AtomicU64::new(0));
        let s2 = seen.clone();
        let recv = FnProcess::new((), move |_s, _ctx: &Ctx, _m: &Msg| {
            s2.fetch_add(1, Ordering::Relaxed);
            vec![]
        });
        let fwd = FnProcess::new((), |_s, _ctx: &Ctx, m: &Msg| {
            if m.header.name() == "go" {
                vec![SendInstr::now(Loc::new(1), Msg::new("x", Value::Unit))]
            } else {
                vec![]
            }
        });
        let mut net = NetworkConfig::instant();
        net.faults = FaultPlan::new(2).with_rule(
            LinkSel::Pair(Loc::new(0), Loc::new(1)),
            VTime::ZERO,
            VTime::from_secs(10),
            LinkFault::duplicating(1.0),
        );
        let mut sim = SimBuilder::new(1).network(net).build();
        let a = sim.add_node(Box::new(fwd));
        let _b = sim.add_node(Box::new(recv));
        sim.send_at(VTime::ZERO, a, Msg::new("go", Value::Unit));
        sim.run_until_quiescent(VTime::from_secs(1));
        assert_eq!(seen.load(Ordering::Relaxed), 2);
        assert_eq!(sim.stats().duplicated_fault, 1);
        let (dropped, duplicated) = shadowdb_runtime::Runtime::fault_stats(&sim);
        assert_eq!((dropped, duplicated), (0, 1));
    }

    #[test]
    fn fault_plan_reorder_window_breaks_fifo() {
        use crate::net::{LinkFault, LinkSel};
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let s2 = seen.clone();
        let recv = FnProcess::new((), move |_s, _ctx: &Ctx, m: &Msg| {
            s2.lock().push(m.body.int());
            vec![]
        });
        let burst = FnProcess::new((), |_s, _ctx: &Ctx, m: &Msg| {
            if m.header.name() != "go" {
                return vec![];
            }
            (0..30)
                .map(|i| SendInstr::now(Loc::new(1), Msg::new("n", Value::Int(i))))
                .collect()
        });
        let mut net = NetworkConfig::instant();
        net.faults = FaultPlan::new(3).with_rule(
            LinkSel::Pair(Loc::new(0), Loc::new(1)),
            VTime::ZERO,
            VTime::from_secs(10),
            LinkFault::reordering(Duration::from_millis(5)),
        );
        let mut sim = SimBuilder::new(9).network(net).build();
        let a = sim.add_node(Box::new(burst));
        let _b = sim.add_node(Box::new(recv));
        sim.send_at(VTime::ZERO, a, Msg::new("go", Value::Unit));
        sim.run_until_quiescent(VTime::from_secs(1));
        let seen = seen.lock();
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..30).collect::<Vec<i64>>(), "nothing lost");
        assert_ne!(*seen, sorted, "jitter inside the window reorders");
    }

    #[test]
    fn delayed_self_send_acts_as_timer() {
        let fired_at = Arc::new(AtomicU64::new(0));
        let f2 = fired_at.clone();
        let p = FnProcess::new((), move |_s, ctx: &Ctx, m: &Msg| match m.header.name() {
            "start" => vec![SendInstr::after(
                Duration::from_millis(250),
                ctx.slf,
                Msg::new("timeout", Value::Unit),
            )],
            "timeout" => {
                f2.store(ctx.now.as_micros(), Ordering::Relaxed);
                vec![]
            }
            _ => vec![],
        });
        let mut sim = SimBuilder::new(1).build();
        let a = sim.add_node(Box::new(p));
        sim.send_at(VTime::ZERO, a, Msg::new("start", Value::Unit));
        sim.run_until_quiescent(VTime::from_secs(1));
        assert_eq!(fired_at.load(Ordering::Relaxed), 250_000);
    }
}
