//! The per-node host state a shard event loop steps in place: the hosted
//! process, its self-send inbox, and its outbound links. Unlike the old
//! thread-per-node runtime there is no node thread — delivering a decoded
//! frame, firing a timer, and flushing a link all happen inline on the
//! owning shard's loop.

use crate::link::OutLink;
use shadowdb_eventml::{FrameEncoder, Msg, Process};
use shadowdb_loe::Loc;
use std::collections::{HashMap, VecDeque};

/// One hosted process and everything that dies with it on crash: volatile
/// state, the self-send inbox, and the outbound connections. Pending
/// timers are invalidated through `epoch` — entries armed by a previous
/// incarnation never fire into a restarted process.
pub struct NodeHost {
    /// The host's own location.
    pub slf: Loc,
    /// Incarnation number: bumped on every (re)start, checked by timers.
    pub epoch: u64,
    /// The hosted process.
    pub process: Box<dyn Process>,
    /// Zero-delay self-sends, drained by the shard loop between polls.
    pub inbox: VecDeque<Msg>,
    /// Outbound links by destination location.
    pub links: HashMap<u32, OutLink>,
    /// Per-connection scratch encoder: steady-state sends allocate
    /// nothing.
    pub enc: FrameEncoder,
}

impl NodeHost {
    /// A fresh incarnation of `process` at `slf`.
    pub fn new(slf: Loc, epoch: u64, process: Box<dyn Process>) -> NodeHost {
        NodeHost {
            slf,
            epoch,
            process,
            inbox: VecDeque::new(),
            links: HashMap::new(),
            enc: FrameEncoder::new(),
        }
    }
}
