//! Ablation: connection count × pipelining depth on the TCP event loop.
//!
//! The thread-per-core rework replaced one reader thread per link with N
//! sharded readiness loops; this harness quantifies how the transport
//! scales with both axes that rework targets: concurrent connections
//! (pinger/echo pairs, spread across shards by `loc % shards`) and the
//! pipelining depth per connection (pings in flight, i.e. how much work a
//! single readiness event can drain in one `read`).
//!
//! Depth 1 is the RTT-bound baseline — every echo pays a full
//! wake/read/step/write/wake round trip; deeper pipelines amortize the
//! event-loop overhead across frames per readiness event, and more pairs
//! exercise cross-shard parallelism.
//!
//! Emits a human-readable table plus one JSON line per configuration
//! (`{"pairs":p,"depth":d,"echoes_per_sec":r}`) for the record in
//! `BENCH_hotpaths.json` (group `netplane`).

use shadowdb_bench::{netload, output, scaled};

fn main() {
    output::banner(
        "Ablation — connections × pipelining over the TCP event loop",
        "thread-per-core shards, zero-copy frame decode",
    );
    let echoes = scaled(20_000, 10) as u64;
    let warm = (echoes / 10).max(100);
    output::kv("measured echoes per pair", echoes);
    output::kv("warm-up echoes per pair", warm);
    let mut json = Vec::new();
    for &depth in &[1usize, 8, 64] {
        let rows: Vec<(String, String)> = [1usize, 2, 4, 8]
            .iter()
            .map(|&pairs| {
                let rate = netload::echo_rate(pairs, depth, warm, echoes);
                json.push(format!(
                    "{{\"pairs\":{pairs},\"depth\":{depth},\"echoes_per_sec\":{rate:.0}}}"
                ));
                (format!("{pairs} pairs"), format!("{rate:>10.0}/s"))
            })
            .collect();
        output::pairs(
            &format!("echo throughput (depth {depth})"),
            "connections",
            "echoes/s",
            &rows,
        );
    }
    println!();
    for line in &json {
        println!("{line}");
    }
    println!();
    println!("depth 1 is RTT-bound: each echo pays a full readiness round");
    println!("trip, so adding pairs scales throughput almost linearly until");
    println!("the shards saturate. deeper pipelines batch many frames into");
    println!("each readiness event — one read() drains several pings, their");
    println!("pongs leave in one writev — so a single pair already runs");
    println!("orders above the RTT bound and extra pairs buy less.");
}
