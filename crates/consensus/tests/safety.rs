//! Exhaustive safety checking of the consensus protocols.
//!
//! These tests stand in for the paper's Nuprl safety proofs: on small
//! instances, *every* message interleaving (and every loss/crash placement
//! within a budget) is explored, and the protocol invariants are checked in
//! every reachable state. The paper reports that proof attempts caught a
//! deadlock in TwoThird and a bug in an early Synod spec that testing had
//! missed; the corresponding failure-finding power here is demonstrated by
//! the *Paxos Made Live* disk-corruption regression, where the checker
//! finds the agreement violation an amnesiac acceptor causes.

use shadowdb_consensus::synod::{self, SynodConfig};
use shadowdb_consensus::twothird::{propose_msg, TwoThird, TwoThirdConfig};
use shadowdb_consensus::{handcoded, parse_decide};
use shadowdb_eventml::process::HasherAdapter;
use shadowdb_eventml::{Ctx, InterpretedProcess, Msg, Process, SendInstr, Value};
use shadowdb_loe::Loc;
use shadowdb_mck::{explore, Options, Spec, World};
use std::collections::BTreeMap;
use std::hash::Hasher;

/// Agreement + validity over the learner's observations: all decisions for
/// an instance carry the same value, drawn from the proposed set.
fn tt_invariant(proposed: &'static [i64]) -> impl Fn(&World) -> Result<(), String> {
    move |w: &World| {
        let mut decided: BTreeMap<i64, Value> = BTreeMap::new();
        for (_, _, msg) in &w.observations {
            if let Some((inst, v)) = parse_decide(msg) {
                if let Some(prev) = decided.get(&inst) {
                    if *prev != v {
                        return Err(format!(
                            "agreement violated: instance {inst} decided {prev:?} and {v:?}"
                        ));
                    }
                }
                if !proposed.iter().any(|p| Value::Int(*p) == v) {
                    return Err(format!("validity violated: decided unproposed {v:?}"));
                }
                decided.insert(inst, v);
            }
        }
        Ok(())
    }
}

fn tt_member(n: u32) -> Box<dyn Process> {
    let config = TwoThirdConfig::new(Loc::first_n(n), vec![Loc::new(100)]);
    Box::new(InterpretedProcess::compile(&TwoThird::new(config).class()))
}

/// TwoThird with n = 3 and split proposals: agreement and validity hold in
/// every schedule.
#[test]
fn twothird_agreement_under_all_interleavings() {
    let spec = Spec {
        procs: (0..3).map(|_| tt_member(3)).collect(),
        env: vec![Loc::new(100)],
        init_msgs: vec![
            (Loc::new(0), propose_msg(0, Value::Int(1))),
            (Loc::new(1), propose_msg(0, Value::Int(2))),
            (Loc::new(2), propose_msg(0, Value::Int(1))),
        ],
    };
    let outcome = explore(
        spec,
        Options {
            max_depth: 40,
            max_states: 400_000,
            ..Options::default()
        },
        tt_invariant(&[1, 2]),
    );
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    assert!(!outcome.truncated, "state space should be fully explored");
    assert!(outcome.states_visited > 100);
}

/// TwoThird tolerates message loss: safety with a loss budget.
#[test]
fn twothird_safe_under_message_loss() {
    let spec = Spec {
        procs: (0..3).map(|_| tt_member(3)).collect(),
        env: vec![Loc::new(100)],
        init_msgs: vec![
            (Loc::new(0), propose_msg(0, Value::Int(1))),
            (Loc::new(1), propose_msg(0, Value::Int(2))),
            (Loc::new(2), propose_msg(0, Value::Int(2))),
        ],
    };
    let outcome = explore(
        spec,
        Options {
            max_depth: 40,
            max_states: 600_000,
            loss_budget: 2,
            ..Options::default()
        },
        tt_invariant(&[1, 2]),
    );
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
}

/// TwoThird remains safe when one member crashes at any point.
#[test]
fn twothird_safe_under_one_crash() {
    let spec = Spec {
        procs: (0..3).map(|_| tt_member(3)).collect(),
        env: vec![Loc::new(100)],
        init_msgs: vec![
            (Loc::new(0), propose_msg(0, Value::Int(1))),
            (Loc::new(1), propose_msg(0, Value::Int(2))),
            (Loc::new(2), propose_msg(0, Value::Int(1))),
        ],
    };
    let outcome = explore(
        spec,
        Options {
            max_depth: 40,
            max_states: 600_000,
            crash_budget: 1,
            ..Options::default()
        },
        tt_invariant(&[1, 2]),
    );
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
}

/// Synod agreement: one leader, three acceptors, two replicas racing two
/// different commands. Per-slot decisions must be unique across replicas.
#[test]
fn synod_per_slot_agreement_under_all_interleavings() {
    let config = SynodConfig {
        replicas: vec![Loc::new(0), Loc::new(1)],
        leaders: vec![Loc::new(2)],
        acceptors: vec![Loc::new(3), Loc::new(4), Loc::new(5)],
        learners: vec![Loc::new(100)],
    };
    let procs: Vec<Box<dyn Process>> = vec![
        Box::new(handcoded::HandReplica::new(config.clone())),
        Box::new(handcoded::HandReplica::new(config.clone())),
        Box::new(handcoded::HandLeader::new(config.clone())),
        Box::new(handcoded::HandAcceptor::new()),
        Box::new(handcoded::HandAcceptor::new()),
        Box::new(handcoded::HandAcceptor::new()),
    ];
    let spec = Spec {
        procs,
        env: vec![Loc::new(100)],
        init_msgs: vec![
            (Loc::new(2), synod::start_msg()),
            (Loc::new(0), synod::request_msg(Value::str("A"))),
            (Loc::new(1), synod::request_msg(Value::str("B"))),
        ],
    };
    let outcome = explore(
        spec,
        Options {
            max_depth: 26,
            max_states: 250_000,
            ..Options::default()
        },
        |w| {
            let mut decided: BTreeMap<i64, Value> = BTreeMap::new();
            for (_, _, msg) in &w.observations {
                if let Some((slot, v)) = parse_decide(msg) {
                    if let Some(prev) = decided.get(&slot) {
                        if *prev != v {
                            return Err(format!("slot {slot} decided {prev:?} and {v:?}"));
                        }
                    }
                    decided.insert(slot, v);
                }
            }
            Ok(())
        },
    );
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
}

// ---------------------------------------------------------------------------
// The Paxos Made Live disk-corruption regression
// ---------------------------------------------------------------------------

/// An acceptor whose "disk" can be corrupted: on a `corrupt` message it
/// forgets everything (promises and accepted pvalues) but keeps
/// participating — exactly the failure mode of the buggy Google extension
/// described in Sec. II-D of the paper.
struct AmnesiacAcceptor {
    inner: handcoded::HandAcceptor,
}

impl AmnesiacAcceptor {
    fn new() -> AmnesiacAcceptor {
        AmnesiacAcceptor {
            inner: handcoded::HandAcceptor::new(),
        }
    }
}

impl Process for AmnesiacAcceptor {
    fn step_into(&mut self, ctx: &Ctx, msg: &Msg, out: &mut Vec<SendInstr>) {
        if msg.header.name() == "corrupt" {
            self.inner = handcoded::HandAcceptor::new();
            return;
        }
        self.inner.step_into(ctx, msg, out)
    }
    fn clone_box(&self) -> Box<dyn Process> {
        Box::new(AmnesiacAcceptor {
            inner: self.inner.clone(),
        })
    }
    fn digest(&self, hasher: &mut dyn Hasher) {
        let mut h = HasherAdapter(hasher);
        self.inner.digest(&mut h);
    }
}

/// Parses either the generic `cs/decide` notification or a raw
/// `px/decision` (the observer in the corruption scenario stands directly
/// in for the replicas).
fn parse_any_decision(msg: &Msg) -> Option<(i64, Value)> {
    if let Some(d) = parse_decide(msg) {
        return Some(d);
    }
    if msg.header.name() == synod::DECISION_HEADER {
        let (slot, cmd) = msg.body.unpair();
        return Some((slot.int(), cmd.clone()));
    }
    None
}

/// Drives an explicit schedule: deliver messages matching `(dest, header)`
/// one at a time, in the given order, keeping undelivered messages pending.
struct Scripted {
    procs: Vec<(Loc, Box<dyn Process>)>,
    pending: Vec<(Loc, Msg)>,
    decisions: Vec<(i64, Value)>,
    learner: Loc,
}

impl Scripted {
    fn deliver_next(&mut self, dest: Loc, header: &str) {
        let pos = self
            .pending
            .iter()
            .position(|(d, m)| *d == dest && m.header.name() == header)
            .unwrap_or_else(|| panic!("no pending {header} for {dest}"));
        let (dest, msg) = self.pending.remove(pos);
        if dest == self.learner {
            if let Some(d) = parse_any_decision(&msg) {
                self.decisions.push(d);
            }
            return;
        }
        let proc = &mut self
            .procs
            .iter_mut()
            .find(|(l, _)| *l == dest)
            .expect("node")
            .1;
        for o in proc.step(&Ctx::at(dest), &msg) {
            if o.dest == self.learner {
                if let Some(d) = parse_any_decision(&o.msg) {
                    self.decisions.push(d);
                }
            } else {
                self.pending.push((o.dest, o.msg));
            }
        }
    }

    /// Delivers all pending messages matching `(dest, header)`.
    fn deliver_all(&mut self, dest: Loc, header: &str) {
        while self
            .pending
            .iter()
            .any(|(d, m)| *d == dest && m.header.name() == header)
        {
            self.deliver_next(dest, header);
        }
    }

    /// Drops all pending messages for a destination (models them still being
    /// in flight, never delivered).
    fn drop_all_for(&mut self, dest: Loc) {
        self.pending.retain(|(d, _)| *d != dest);
    }
}

/// Builds the corruption scenario: 2 leaders (locs 0, 1), 3 acceptors
/// (locs 2, 3, 4 — acceptor 3 amnesiac if `faulty`), decisions observed at
/// loc 100 (the "replicas" are the observer).
fn corruption_scenario(faulty: bool) -> Scripted {
    let config = SynodConfig {
        replicas: vec![Loc::new(100)],
        leaders: vec![Loc::new(0), Loc::new(1)],
        acceptors: vec![Loc::new(2), Loc::new(3), Loc::new(4)],
        learners: vec![Loc::new(100)],
    };
    let mid: Box<dyn Process> = if faulty {
        Box::new(AmnesiacAcceptor::new())
    } else {
        Box::new(handcoded::HandAcceptor::new())
    };
    let procs: Vec<(Loc, Box<dyn Process>)> = vec![
        (
            Loc::new(0),
            Box::new(handcoded::HandLeader::new(config.clone())),
        ),
        (
            Loc::new(1),
            Box::new(handcoded::HandLeader::new(config.clone())),
        ),
        (Loc::new(2), Box::new(handcoded::HandAcceptor::new())),
        (Loc::new(3), mid),
        (Loc::new(4), Box::new(handcoded::HandAcceptor::new())),
    ];
    let l0 = Loc::new(0);
    let l1 = Loc::new(1);
    let slot0 = Value::Int(0);
    let pending = vec![
        (l0, Msg::new(synod::START_HEADER, Value::Unit)),
        (l1, Msg::new(synod::START_HEADER, Value::Unit)),
        (
            l0,
            Msg::new(
                synod::PROPOSE_HEADER,
                Value::pair(slot0.clone(), Value::str("v1")),
            ),
        ),
        (
            l1,
            Msg::new(synod::PROPOSE_HEADER, Value::pair(slot0, Value::str("v2"))),
        ),
        (Loc::new(3), Msg::new("corrupt", Value::Unit)),
    ];
    Scripted {
        procs,
        pending,
        decisions: Vec::new(),
        learner: Loc::new(100),
    }
}

/// Replays the bug schedule. With a correct acceptor the second leader's
/// phase 1 *sees* the accepted value and re-proposes it, so agreement holds;
/// with the amnesiac acceptor the second quorum {3, 4} has no memory of v1
/// and decides v2 for the same slot.
fn run_corruption_schedule(s: &mut Scripted) {
    let (l0, l1) = (Loc::new(0), Loc::new(1));
    let (a2, a3, a4) = (Loc::new(2), Loc::new(3), Loc::new(4));
    // Leader 0 gets proposal and runs phase 1 with quorum {2, 3}.
    s.deliver_next(l0, synod::START_HEADER);
    s.deliver_next(l0, synod::PROPOSE_HEADER);
    s.deliver_next(a2, synod::P1A_HEADER);
    s.deliver_next(a3, synod::P1A_HEADER);
    s.drop_all_for(a4); // leader 0's p1a to acceptor 4 stays in flight
    s.deliver_all(l0, synod::P1B_HEADER);
    // Phase 2 with the same quorum: v1 is chosen for slot 0.
    s.deliver_next(a2, synod::P2A_HEADER);
    s.deliver_next(a3, synod::P2A_HEADER);
    s.deliver_all(l0, synod::P2B_HEADER);
    assert_eq!(
        s.decisions,
        vec![(0, Value::str("v1"))],
        "v1 must be decided first"
    );
    // Acceptor 3 loses its disk.
    s.deliver_next(a3, "corrupt");
    // Leader 1 wakes up with a higher ballot and quorum {3, 4}.
    s.deliver_next(l1, synod::START_HEADER);
    s.deliver_next(l1, synod::PROPOSE_HEADER);
    s.deliver_next(a3, synod::P1A_HEADER);
    s.deliver_next(a4, synod::P1A_HEADER);
    s.drop_all_for(a2);
    s.deliver_all(l1, synod::P1B_HEADER);
    // Leader 1 is preempted by leader 0's higher-or-equal ballot? No — its
    // ballot (0, loc1) > (0, loc0), so phase 1 succeeds on {3, 4}.
    s.deliver_all(a3, synod::P2A_HEADER);
    s.deliver_all(a4, synod::P2A_HEADER);
    s.deliver_all(l1, synod::P2B_HEADER);
}

#[test]
fn paxos_made_live_corruption_breaks_agreement() {
    let mut s = corruption_scenario(true);
    run_corruption_schedule(&mut s);
    // The amnesiac acceptor lets v2 be decided for slot 0 as well.
    assert_eq!(
        s.decisions,
        vec![(0, Value::str("v1")), (0, Value::str("v2"))],
        "the corruption bug must manifest as two decisions for slot 0"
    );
}

#[test]
fn durable_acceptor_preserves_agreement_on_same_schedule() {
    let mut s = corruption_scenario(false);
    run_corruption_schedule(&mut s);
    // Phase 1 of leader 1 sees v1 accepted at acceptor 3 and re-proposes it.
    assert_eq!(
        s.decisions,
        vec![(0, Value::str("v1")), (0, Value::str("v1"))],
        "with durable promises, slot 0 is re-decided with the same value"
    );
}
