//! YCSB-style key-value read/update-mix workload.
//!
//! The generator emits point reads and point updates over the bank
//! `accounts` table — reads are `TxnRequest::BankRead` and updates are
//! `TxnRequest::BankDeposit` — so kv histories flow through the exact
//! same collection and checking machinery as the bank workload
//! (`check_bank_history_concurrent` validates every read's real-time
//! bounds, fast path or not). Key choice is scrambled-zipfian as in
//! YCSB: a small set of hot keys absorbs most traffic, with the hot set
//! spread across the keyspace by a multiplicative hash so sharded
//! deployments don't alias every hot key onto one group.

use crate::TxnRequest;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Workload shape: keyspace size, read fraction, and skew.
#[derive(Clone, Copy, Debug)]
pub struct KvOptions {
    /// Number of keys (accounts) in play.
    pub rows: usize,
    /// Fraction of requests that are reads, in `[0, 1]` (YCSB-B is 0.95).
    pub read_fraction: f64,
    /// Zipfian skew parameter θ in `[0, 1)`; YCSB's default is 0.99,
    /// 0 is uniform.
    pub theta: f64,
}

impl KvOptions {
    /// YCSB-B: 95% reads, 5% updates, zipfian θ = 0.99.
    pub fn ycsb_b(rows: usize) -> KvOptions {
        KvOptions {
            rows,
            read_fraction: 0.95,
            theta: 0.99,
        }
    }
}

/// A deterministic generator of the kv mix.
#[derive(Clone, Debug)]
pub struct KvGen {
    rng: SmallRng,
    opts: KvOptions,
    // Precomputed zipfian constants (Gray et al.'s rejection-free method,
    // the one YCSB uses).
    zetan: f64,
    eta: f64,
    alpha: f64,
}

impl KvGen {
    /// Creates a generator; same `(seed, opts)` ⇒ same request sequence.
    pub fn new(seed: u64, opts: KvOptions) -> KvGen {
        let n = opts.rows.max(1) as f64;
        let theta = opts.theta.clamp(0.0, 0.9999);
        let zetan = zeta(opts.rows.max(1), theta);
        let zeta2 = zeta(2.min(opts.rows.max(1)), theta);
        let eta = (1.0 - (2.0 / n).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        KvGen {
            rng: SmallRng::seed_from_u64(seed),
            opts,
            zetan,
            eta,
            alpha: 1.0 / (1.0 - theta),
        }
    }

    /// The next request: a read with probability `read_fraction`, else a
    /// deposit of 1..100 — both on a zipfian-chosen key.
    pub fn next_txn(&mut self) -> TxnRequest {
        let account = self.next_key();
        if self.rng.gen_range(0.0..1.0) < self.opts.read_fraction {
            TxnRequest::BankRead { account }
        } else {
            TxnRequest::BankDeposit {
                account,
                amount: self.rng.gen_range(1..100),
            }
        }
    }

    /// A script of `n` requests (per-client convenience).
    pub fn script(&mut self, n: usize) -> Vec<TxnRequest> {
        (0..n).map(|_| self.next_txn()).collect()
    }

    /// Scrambled-zipfian key in `0..rows`.
    fn next_key(&mut self) -> i64 {
        let n = self.opts.rows.max(1);
        let rank = self.zipf_rank();
        // Scramble the rank across the keyspace (YCSB's ScrambledZipfian):
        // rank 0 is still the hottest key, it just isn't key 0.
        ((rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % n as u64) as i64
    }

    /// Zipfian rank in `0..rows`, rank 0 most popular.
    fn zipf_rank(&mut self) -> usize {
        let n = self.opts.rows.max(1);
        if self.opts.theta <= f64::EPSILON {
            return self.rng.gen_range(0..n);
        }
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        let theta = self.opts.theta.clamp(0.0, 0.9999);
        if uz < 1.0 + 0.5f64.powf(theta) {
            return 1;
        }
        let rank = ((n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as usize;
        rank.min(n - 1)
    }
}

/// The generalized harmonic number Σ 1/i^θ for i in 1..=n.
fn zeta(n: usize, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_per_seed() {
        let opts = KvOptions::ycsb_b(64);
        let a = KvGen::new(7, opts).script(200);
        let b = KvGen::new(7, opts).script(200);
        let c = KvGen::new(8, opts).script(200);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn read_fraction_respected() {
        let mut g = KvGen::new(1, KvOptions::ycsb_b(64));
        let reads = g.script(2_000).iter().filter(|t| t.is_read_only()).count();
        assert!(
            (1_800..=2_000).contains(&reads),
            "95% read mix produced {reads}/2000 reads"
        );
        let mut g = KvGen::new(
            1,
            KvOptions {
                read_fraction: 0.0,
                ..KvOptions::ycsb_b(64)
            },
        );
        assert!(g.script(500).iter().all(|t| !t.is_read_only()));
    }

    #[test]
    fn keys_in_range_and_zipfian_skewed() {
        let rows = 128;
        let mut g = KvGen::new(3, KvOptions::ycsb_b(rows));
        let mut freq: HashMap<i64, usize> = HashMap::new();
        for t in g.script(20_000) {
            let k = match t {
                TxnRequest::BankRead { account } => account,
                TxnRequest::BankDeposit { account, .. } => account,
                other => panic!("unexpected request {other:?}"),
            };
            assert!((0..rows as i64).contains(&k));
            *freq.entry(k).or_default() += 1;
        }
        let hottest = *freq.values().max().unwrap();
        // θ=0.99 concentrates ~18% of traffic on the hottest of 128 keys;
        // uniform would put ~0.8% there.
        assert!(
            hottest > 20_000 / 20,
            "zipfian skew missing: hottest key got {hottest}/20000"
        );
    }

    #[test]
    fn uniform_when_theta_zero() {
        let rows = 16;
        let mut g = KvGen::new(
            5,
            KvOptions {
                rows,
                read_fraction: 0.5,
                theta: 0.0,
            },
        );
        let mut freq: HashMap<i64, usize> = HashMap::new();
        for t in g.script(16_000) {
            let k = match t {
                TxnRequest::BankRead { account } => account,
                TxnRequest::BankDeposit { account, .. } => account,
                other => panic!("unexpected request {other:?}"),
            };
            *freq.entry(k).or_default() += 1;
        }
        assert_eq!(freq.len(), rows);
        assert!(freq.values().all(|&c| c > 16_000 / rows / 2));
    }
}
