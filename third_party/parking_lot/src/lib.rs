//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps the `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()`/`read()`/`write()` return guards directly, and a poisoned std
//! lock (a panic while held) is transparently recovered, matching
//! parking_lot's behaviour of not poisoning at all.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Instant;

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait_until can temporarily move the std guard
    // out (std's wait takes the guard by value); always Some otherwise.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Acquires the lock if free, without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = self
            .inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner);
        RwLockReadGuard { inner }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = self
            .inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner);
        RwLockWriteGuard { inner }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("data", &&*self.read())
            .finish()
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable for use with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (inner, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            let res = cv.wait_until(&mut done, Instant::now() + Duration::from_secs(5));
            assert!(
                !res.timed_out(),
                "notification should arrive well within 5s"
            );
        }
        t.join().unwrap();
    }
}
