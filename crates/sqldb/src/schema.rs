//! Table schemas.

use crate::value::{Row, SqlValue};
use crate::{Result, SqlError};

/// Column data types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit integer (`INT`, `BIGINT`).
    Int,
    /// 64-bit float (`REAL`, `DOUBLE`, `DECIMAL`).
    Real,
    /// String (`TEXT`, `VARCHAR(n)`, `CHAR(n)`).
    Text,
}

impl DataType {
    /// Whether `v` inhabits this type (NULL inhabits every type).
    pub fn admits(self, v: &SqlValue) -> bool {
        matches!(
            (self, v),
            (_, SqlValue::Null)
                | (DataType::Int, SqlValue::Int(_))
                | (DataType::Real, SqlValue::Real(_))
                | (DataType::Real, SqlValue::Int(_))
                | (DataType::Text, SqlValue::Text(_))
        )
    }
}

/// One column of a table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Column {
    /// Column name (stored lowercase; lookups are case-insensitive).
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

/// A table schema: named, typed columns and a (possibly composite) primary
/// key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name (lowercase).
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
    /// Indices of the primary-key columns, in key order.
    pub primary_key: Vec<usize>,
}

impl TableSchema {
    /// Creates a schema.
    ///
    /// # Errors
    ///
    /// Rejects empty or out-of-range primary keys and duplicate column
    /// names.
    pub fn new(name: &str, columns: Vec<Column>, primary_key: Vec<usize>) -> Result<TableSchema> {
        if primary_key.is_empty() {
            return Err(SqlError::Constraint(format!(
                "table {name} needs a primary key"
            )));
        }
        for &k in &primary_key {
            if k >= columns.len() {
                return Err(SqlError::Constraint(format!(
                    "primary key column {k} out of range in {name}"
                )));
            }
        }
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|d| d.name == c.name) {
                return Err(SqlError::Constraint(format!(
                    "duplicate column {} in {name}",
                    c.name
                )));
            }
        }
        Ok(TableSchema {
            name: name.to_lowercase(),
            columns,
            primary_key,
        })
    }

    /// Index of a column by (case-insensitive) name.
    pub fn col(&self, name: &str) -> Result<usize> {
        let lower = name.to_lowercase();
        self.columns
            .iter()
            .position(|c| c.name == lower)
            .ok_or_else(|| SqlError::Unknown(format!("column {name} in table {}", self.name)))
    }

    /// Extracts the primary-key values of a row.
    pub fn key_of(&self, row: &Row) -> Vec<SqlValue> {
        self.primary_key.iter().map(|&i| row[i].clone()).collect()
    }

    /// Validates a row against the schema (arity and types).
    pub fn check_row(&self, row: &Row) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(SqlError::Constraint(format!(
                "table {} expects {} values, got {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        for (c, v) in self.columns.iter().zip(row) {
            if !c.dtype.admits(v) {
                return Err(SqlError::Constraint(format!(
                    "value {v} does not fit column {} of type {:?}",
                    c.name, c.dtype
                )));
            }
        }
        Ok(())
    }

    /// Approximate byte size of a row under this schema.
    pub fn row_bytes(&self, row: &Row) -> usize {
        row.iter().map(SqlValue::byte_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "Accounts",
            vec![
                Column {
                    name: "id".into(),
                    dtype: DataType::Int,
                },
                Column {
                    name: "owner".into(),
                    dtype: DataType::Text,
                },
                Column {
                    name: "balance".into(),
                    dtype: DataType::Int,
                },
            ],
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn name_lowercased_and_lookup_case_insensitive() {
        let s = schema();
        assert_eq!(s.name, "accounts");
        assert_eq!(s.col("BALANCE").unwrap(), 2);
        assert!(s.col("missing").is_err());
    }

    #[test]
    fn key_extraction() {
        let s = schema();
        let row = vec![SqlValue::Int(7), SqlValue::from("a"), SqlValue::Int(0)];
        assert_eq!(s.key_of(&row), vec![SqlValue::Int(7)]);
    }

    #[test]
    fn row_validation() {
        let s = schema();
        assert!(s
            .check_row(&vec![
                SqlValue::Int(1),
                SqlValue::from("x"),
                SqlValue::Int(2)
            ])
            .is_ok());
        assert!(s.check_row(&vec![SqlValue::Int(1)]).is_err());
        assert!(s
            .check_row(&vec![
                SqlValue::from("oops"),
                SqlValue::from("x"),
                SqlValue::Int(2)
            ])
            .is_err());
        // NULL fits anywhere; INT fits REAL.
        let real = TableSchema::new(
            "t",
            vec![Column {
                name: "x".into(),
                dtype: DataType::Real,
            }],
            vec![0],
        )
        .unwrap();
        assert!(real.check_row(&vec![SqlValue::Int(3)]).is_ok());
        assert!(real.check_row(&vec![SqlValue::Null]).is_ok());
    }

    #[test]
    fn bad_schemas_rejected() {
        assert!(TableSchema::new("t", vec![], vec![]).is_err());
        let c = Column {
            name: "a".into(),
            dtype: DataType::Int,
        };
        assert!(TableSchema::new("t", vec![c.clone()], vec![3]).is_err());
        assert!(TableSchema::new("t", vec![c.clone(), c], vec![0]).is_err());
    }

    #[test]
    fn micro_benchmark_row_is_16_bytes() {
        // The paper's micro-benchmark uses 16-byte rows; our bank schema
        // produces exactly that with an empty owner string padded to 0.
        let s = schema();
        let row = vec![
            SqlValue::Int(1),
            SqlValue::Text(String::new()),
            SqlValue::Int(100),
        ];
        assert_eq!(s.row_bytes(&row), 16);
    }
}
