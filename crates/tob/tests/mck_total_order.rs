//! Exhaustive checking of the broadcast service itself.
//!
//! A minimal TOB deployment — two servers backed by a three-member
//! TwoThird consensus — carries two concurrent client messages. The model
//! checker explores *every* delivery interleaving and asserts the total
//! order property in each reachable state: the two subscribers never
//! observe different messages at the same sequence number, and no message
//! is delivered twice at one subscriber.

use shadowdb_consensus::twothird::{TwoThird, TwoThirdConfig};
use shadowdb_eventml::{InterpretedProcess, Process, Value};
use shadowdb_loe::Loc;
use shadowdb_mck::{explore, Options, Spec};
use shadowdb_tob::service::{service_class, Backend, TobConfig};
use shadowdb_tob::{broadcast_msg, parse_deliver};
use std::collections::BTreeMap;

#[test]
fn tob_total_order_checked_exhaustively() {
    // Locations: 0,1 = TOB servers; 2,3,4 = TwoThird members; 100,101 =
    // subscribers (environment).
    let servers = [Loc::new(0), Loc::new(1)];
    let members = vec![Loc::new(2), Loc::new(3), Loc::new(4)];
    let subs = vec![Loc::new(100), Loc::new(101)];
    let tt = TwoThirdConfig::new(members.clone(), servers.to_vec()).with_auto_adopt();
    let member_class = TwoThird::new(tt).class();

    let mut procs: Vec<Box<dyn Process>> = Vec::new();
    for (i, s) in servers.iter().enumerate() {
        let cfg = TobConfig::new(Backend::TwoThird { member: members[i] }, subs.clone())
            .with_max_batch(4);
        let _ = s;
        procs.push(Box::new(InterpretedProcess::compile(&service_class(&cfg))));
    }
    for _ in &members {
        procs.push(Box::new(InterpretedProcess::compile(&member_class)));
    }

    // Two clients submit one message each, to *different* servers — the
    // racing-slot case that exercises re-proposal.
    let spec = Spec {
        procs,
        env: subs.clone(),
        init_msgs: vec![
            (servers[0], broadcast_msg(Loc::new(200), 0, Value::str("a"))),
            (servers[1], broadcast_msg(Loc::new(201), 0, Value::str("b"))),
        ],
    };
    let outcome = explore(
        spec,
        // Bounds sized for CI: ~100 k states in seconds. The space has
        // been explored to 3 M states / depth 34 without violation; raise
        // the bounds to reproduce.
        Options {
            max_depth: 22,
            max_states: 30_000,
            ..Options::default()
        },
        |w| {
            // Per-subscriber: sequence numbers unique; across subscribers:
            // same seq ⇒ same message.
            let mut by_seq: BTreeMap<(Loc, i64), (Loc, i64)> = BTreeMap::new();
            let mut global: BTreeMap<i64, (Loc, i64)> = BTreeMap::new();
            for (sub, _, msg) in &w.observations {
                let Some(d) = parse_deliver(msg) else {
                    continue;
                };
                let ident = (d.client, d.msgid);
                if let Some(prev) = by_seq.insert((*sub, d.seq), ident) {
                    if prev != ident {
                        return Err(format!(
                            "subscriber {sub} saw two messages at seq {}",
                            d.seq
                        ));
                    }
                }
                if let Some(prev) = global.get(&d.seq) {
                    if *prev != ident {
                        return Err(format!(
                            "subscribers disagree at seq {}: {prev:?} vs {ident:?}",
                            d.seq
                        ));
                    }
                }
                global.insert(d.seq, ident);
            }
            // Integrity: a message id appears at most once per subscriber.
            for sub in [Loc::new(100), Loc::new(101)] {
                let mut seen = std::collections::BTreeSet::new();
                for ((s, _), ident) in &by_seq {
                    if *s == sub && !seen.insert(*ident) {
                        return Err(format!("{sub} delivered {ident:?} twice"));
                    }
                }
            }
            Ok(())
        },
    );
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    assert!(
        outcome.states_visited > 5_000,
        "the interleaving space should be non-trivial: {}",
        outcome.states_visited
    );
    eprintln!(
        "explored {} states (truncated: {})",
        outcome.states_visited, outcome.truncated
    );
}
