//! The fault-injection plane: one seeded schedule, three substrates.
//!
//! The paper's claim is not that ShadowDB is fast but that it is *correct
//! under failures*: the failure detector suspects silent peers, in-flight
//! transactions abort, and the group reconfigures through total-order
//! broadcast (recovery ≈ 640 ms in Fig. 10). Exercising those paths needs
//! more than crashing whole nodes: links must drop, duplicate, delay, and
//! partition. This module defines the substrate-independent model:
//!
//! * [`LinkFault`] — what a misbehaving link does to each message
//!   (drop probability, duplication probability, added delay, reorder
//!   window).
//! * [`FaultRule`] — a fault applied to a set of links
//!   ([`LinkSel`]) during a time window `[start, end)`; `end` is the heal
//!   time.
//! * [`FaultPlan`] — a timeline of link rules plus node crash/restart
//!   events, with an embedded seed.
//! * [`Nemesis`] — expands `(seed, profile, duration)` into a
//!   [`FaultPlan`] for a concrete topology. The expansion is a pure
//!   function of its inputs, so the *same schedule bytes* replay on
//!   simnet, livenet, and tcpnet.
//!
//! # Determinism, precisely
//!
//! Two layers, with different guarantees:
//!
//! 1. The **schedule** (which links fail, when, with what severity, which
//!    nodes crash/restart and when) is byte-for-byte identical for a given
//!    `(seed, profile, duration, topology)` on every substrate — it is
//!    computed here, once, by a SplitMix64 stream.
//! 2. **Per-message coin flips** (does *this* frame drop?) are a pure
//!    function of `(plan seed, link, per-link message counter)` — no RNG
//!    state is shared with the substrate. On the simulator, where message
//!    sequences are themselves deterministic, every run is bit-identical.
//!    On real threads the counter a given message draws depends on thread
//!    interleaving, so runs see statistically identical but not identical
//!    loss patterns. See DESIGN.md's fault-plane section for the full
//!    fidelity table.

use shadowdb_loe::{Loc, VTime};
use std::time::Duration;

/// SplitMix64 finalizer: the plan's only source of randomness.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps a hash to a uniform float in `[0, 1)`.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// What a faulty link does to each message while a rule is active.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFault {
    /// Probability a message is silently lost. `1.0` is a partition.
    pub drop_p: f64,
    /// Probability a delivered message is delivered twice.
    pub dup_p: f64,
    /// Fixed delay added to every delivery (a congestion spike).
    pub delay: Duration,
    /// Extra per-message delay drawn uniformly from `[0, reorder_window]`.
    /// A non-zero window suspends the link's FIFO guarantee on substrates
    /// that model one (simnet), letting later sends overtake earlier ones.
    pub reorder_window: Duration,
}

impl LinkFault {
    /// A fault that does nothing (building block for struct update syntax).
    pub const NONE: LinkFault = LinkFault {
        drop_p: 0.0,
        dup_p: 0.0,
        delay: Duration::ZERO,
        reorder_window: Duration::ZERO,
    };

    /// A full cut: every message lost until heal.
    pub fn partition() -> LinkFault {
        LinkFault {
            drop_p: 1.0,
            ..LinkFault::NONE
        }
    }

    /// Loses each message with probability `p`.
    pub fn lossy(p: f64) -> LinkFault {
        LinkFault {
            drop_p: p,
            ..LinkFault::NONE
        }
    }

    /// Delivers each message twice with probability `p`.
    pub fn duplicating(p: f64) -> LinkFault {
        LinkFault {
            dup_p: p,
            ..LinkFault::NONE
        }
    }

    /// Adds `d` to every delivery.
    pub fn delayed(d: Duration) -> LinkFault {
        LinkFault {
            delay: d,
            ..LinkFault::NONE
        }
    }

    /// Jitters each delivery by up to `w`, allowing reordering.
    pub fn reordering(w: Duration) -> LinkFault {
        LinkFault {
            reorder_window: w,
            ..LinkFault::NONE
        }
    }

    /// Whether this fault severs the link outright.
    pub fn is_cut(&self) -> bool {
        self.drop_p >= 1.0
    }
}

/// Which directed links a rule applies to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkSel {
    /// Exactly `from -> to` (asymmetric; add the mirror rule for a
    /// symmetric fault).
    Pair(Loc, Loc),
    /// Every message sent by this node (asymmetric: it can still hear).
    From(Loc),
    /// Every message sent to this node (asymmetric: it can still talk).
    To(Loc),
    /// Every link touching this node, both directions (symmetric
    /// isolation).
    Isolate(Loc),
    /// Both directions between the two groups.
    Between(Vec<Loc>, Vec<Loc>),
}

impl LinkSel {
    /// Whether the directed link `from -> to` is selected.
    pub fn matches(&self, from: Loc, to: Loc) -> bool {
        match self {
            LinkSel::Pair(f, t) => *f == from && *t == to,
            LinkSel::From(l) => *l == from,
            LinkSel::To(l) => *l == to,
            LinkSel::Isolate(l) => *l == from || *l == to,
            LinkSel::Between(a, b) => {
                (a.contains(&from) && b.contains(&to)) || (b.contains(&from) && a.contains(&to))
            }
        }
    }
}

/// One fault window: `fault` applies to `links` during `[start, end)`;
/// `end` is the heal time.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultRule {
    /// The links affected.
    pub links: LinkSel,
    /// When the fault begins.
    pub start: VTime,
    /// When the fault heals (exclusive).
    pub end: VTime,
    /// What the affected links do meanwhile.
    pub fault: LinkFault,
}

impl FaultRule {
    /// Whether this rule is in force for `from -> to` at `now`.
    pub fn active(&self, from: Loc, to: Loc, now: VTime) -> bool {
        self.start <= now && now < self.end && self.links.matches(from, to)
    }
}

/// What happens to a node at a scheduled instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeFaultKind {
    /// Crash-stop: volatile state lost, deliveries dropped.
    Crash,
    /// Restart with a fresh process (the runtime's driver supplies it).
    /// Models disk loss: the replacement starts amnesiac.
    Restart,
    /// Restart from durable storage: volatile state is lost but the
    /// node's disk survives, so the driver's factory may hand back a
    /// process that recovers from its WAL + snapshot. Models power
    /// loss / reboot rather than machine replacement.
    RestartDurable,
}

/// A scheduled crash or restart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeFault {
    /// When it happens.
    pub at: VTime,
    /// The victim.
    pub loc: Loc,
    /// Crash or restart.
    pub kind: NodeFaultKind,
}

/// The verdict for one message offered to the fault plane.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkVerdict {
    /// Deliver, possibly late and possibly twice.
    Deliver {
        /// Delay added on top of the substrate's normal link latency.
        extra_delay: Duration,
        /// Deliver a second copy (after an independent extra delay draw).
        duplicate: bool,
    },
    /// Lose the message.
    Drop {
        /// The drop came from a full cut (`drop_p >= 1`): socket
        /// substrates force-close the connection to exercise reconnect.
        severed: bool,
    },
}

impl LinkVerdict {
    /// The no-fault verdict.
    pub const CLEAN: LinkVerdict = LinkVerdict::Deliver {
        extra_delay: Duration::ZERO,
        duplicate: false,
    };
}

/// A complete fault schedule: link-fault windows plus node crash/restart
/// events, with the seed that drives per-message coin flips.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for per-message decisions (independent of the substrate RNG).
    pub seed: u64,
    /// Link-fault windows.
    pub rules: Vec<FaultRule>,
    /// Scheduled crashes and restarts.
    pub node_faults: Vec<NodeFault>,
}

impl FaultPlan {
    /// An empty plan with a seed (add rules with [`FaultPlan::with_rule`]).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
            node_faults: Vec::new(),
        }
    }

    /// Adds a link-fault window.
    pub fn with_rule(mut self, links: LinkSel, start: VTime, end: VTime, fault: LinkFault) -> Self {
        self.rules.push(FaultRule {
            links,
            start,
            end,
            fault,
        });
        self
    }

    /// Adds a symmetric partition isolating `loc` during `[start, end)`.
    pub fn with_isolation(self, loc: Loc, start: VTime, end: VTime) -> Self {
        self.with_rule(LinkSel::Isolate(loc), start, end, LinkFault::partition())
    }

    /// Adds a node crash at `at`.
    pub fn with_crash(mut self, at: VTime, loc: Loc) -> Self {
        self.node_faults.push(NodeFault {
            at,
            loc,
            kind: NodeFaultKind::Crash,
        });
        self
    }

    /// Adds a node restart at `at`.
    pub fn with_restart(mut self, at: VTime, loc: Loc) -> Self {
        self.node_faults.push(NodeFault {
            at,
            loc,
            kind: NodeFaultKind::Restart,
        });
        self
    }

    /// Adds a reboot-with-disk at `at` (see
    /// [`NodeFaultKind::RestartDurable`]).
    pub fn with_durable_restart(mut self, at: VTime, loc: Loc) -> Self {
        self.node_faults.push(NodeFault {
            at,
            loc,
            kind: NodeFaultKind::RestartDurable,
        });
        self
    }

    /// Rebases the whole schedule `by` later: every fault window and node
    /// event shifts by the same amount. A nemesis expansion is 0-based;
    /// shifting anchors it at the moment the workload actually starts —
    /// which, on a real-time runtime, is well after the clock began
    /// ticking (deployment builds in real time). The relative schedule is
    /// unchanged, so cross-substrate byte-identity is preserved.
    pub fn shifted(mut self, by: Duration) -> FaultPlan {
        for r in &mut self.rules {
            r.start += by;
            r.end += by;
        }
        for f in &mut self.node_faults {
            f.at += by;
        }
        self
    }

    /// Whether any rule touches `from -> to` at `now` (cheap pre-check so
    /// the healthy path skips the coin flips).
    pub fn active(&self, from: Loc, to: Loc, now: VTime) -> bool {
        self.rules.iter().any(|r| r.active(from, to, now))
    }

    /// Whether `from -> to` is fully cut at `now`.
    pub fn cut(&self, from: Loc, to: Loc, now: VTime) -> bool {
        self.rules
            .iter()
            .any(|r| r.active(from, to, now) && r.fault.is_cut())
    }

    /// The instant after which every link fault has healed and every node
    /// event has fired ([`VTime::ZERO`] for an empty plan).
    pub fn quiet_after(&self) -> VTime {
        let rules = self.rules.iter().map(|r| r.end);
        let nodes = self.node_faults.iter().map(|f| f.at);
        rules.chain(nodes).max().unwrap_or(VTime::ZERO)
    }

    /// Decides the fate of the `n`-th message the substrate offered for
    /// the directed link `from -> to` at time `now`.
    ///
    /// Pure: the same `(plan, from, to, now-window, n)` always returns the
    /// same verdict, independent of substrate RNG state or thread timing.
    pub fn decide(&self, from: Loc, to: Loc, now: VTime, n: u64) -> LinkVerdict {
        let mut extra = Duration::ZERO;
        let mut duplicate = false;
        let mut any = false;
        let link = ((from.index() as u64) << 32) | to.index() as u64;
        for (i, r) in self.rules.iter().enumerate() {
            if !r.active(from, to, now) {
                continue;
            }
            any = true;
            let h = mix64(
                self.seed ^ mix64(link ^ ((i as u64) << 56)) ^ mix64(n.wrapping_add(0x51_7c_c1)),
            );
            if r.fault.drop_p > 0.0 && unit(h) < r.fault.drop_p {
                return LinkVerdict::Drop {
                    severed: r.fault.is_cut(),
                };
            }
            if r.fault.dup_p > 0.0 && unit(mix64(h ^ 0xd0_b1e)) < r.fault.dup_p {
                duplicate = true;
            }
            extra += r.fault.delay;
            if !r.fault.reorder_window.is_zero() {
                let frac = unit(mix64(h ^ 0x0e_0e_0e));
                extra += Duration::from_micros(
                    (r.fault.reorder_window.as_micros() as f64 * frac) as u64,
                );
            }
        }
        if any {
            LinkVerdict::Deliver {
                extra_delay: extra,
                duplicate,
            }
        } else {
            LinkVerdict::CLEAN
        }
    }

    /// Whether the `n`-th message's verdict suspends FIFO (a reorder
    /// window is active on the link).
    pub fn reorders(&self, from: Loc, to: Loc, now: VTime) -> bool {
        self.rules
            .iter()
            .any(|r| r.active(from, to, now) && !r.fault.reorder_window.is_zero())
    }

    /// A stable fingerprint of the schedule — equal digests mean equal
    /// schedule bytes, the cross-substrate replay guarantee tests assert.
    pub fn digest(&self) -> u64 {
        let mut h = mix64(self.seed);
        let mut fold = |x: u64| h = mix64(h ^ mix64(x));
        for r in &self.rules {
            match &r.links {
                LinkSel::Pair(f, t) => {
                    fold(1);
                    fold(f.index() as u64);
                    fold(t.index() as u64);
                }
                LinkSel::From(l) => {
                    fold(2);
                    fold(l.index() as u64);
                }
                LinkSel::To(l) => {
                    fold(3);
                    fold(l.index() as u64);
                }
                LinkSel::Isolate(l) => {
                    fold(4);
                    fold(l.index() as u64);
                }
                LinkSel::Between(a, b) => {
                    fold(5);
                    for l in a.iter().chain(b) {
                        fold(l.index() as u64);
                    }
                }
            }
            fold(r.start.as_micros());
            fold(r.end.as_micros());
            fold(r.fault.drop_p.to_bits());
            fold(r.fault.dup_p.to_bits());
            fold(r.fault.delay.as_micros() as u64);
            fold(r.fault.reorder_window.as_micros() as u64);
        }
        for f in &self.node_faults {
            fold(match f.kind {
                NodeFaultKind::Crash => 6,
                NodeFaultKind::Restart => 7,
                // New tag: plans without durable restarts keep the exact
                // digests (and bytes) they had before the kind existed.
                NodeFaultKind::RestartDurable => 8,
            });
            fold(f.at.as_micros());
            fold(f.loc.index() as u64);
        }
        h
    }
}

/// The part of a deployment the nemesis needs to aim at.
#[derive(Clone, Debug)]
pub struct FaultTopology {
    /// Client locations: links to/from these tolerate loss, duplication,
    /// and reordering (clients retransmit; replicas deduplicate by cseq).
    pub clients: Vec<Loc>,
    /// Core locations (replicas and broadcast servers): inter-core links
    /// assume reliable FIFO channels, so only partitions-with-heal and
    /// delay spikes apply — matching the paper's "correct processes can
    /// eventually communicate" model, where a cut-off member is *removed*
    /// by reconfiguration rather than silently lossy.
    pub core: Vec<Loc>,
    /// The distinguished victim (the PBR primary, or any replica).
    pub victim: Loc,
    /// Per-shard replica groups of a sharded deployment, in shard order
    /// (group 0 is the 2PC coordinator group for transactions it
    /// participates in). Empty for unsharded deployments; profiles that
    /// target groups fall back to the victim when fewer than two exist.
    pub groups: Vec<Vec<Loc>>,
    /// The replica joining mid-run under online reconfiguration. A `Loc`
    /// here may exceed the deploy-time node count — plans address nodes by
    /// location, not by table index, so rules naming a not-yet-added node
    /// are valid and begin to bite the moment it exists. Profiles that
    /// target the joiner fall back to the victim when unset.
    pub joiner: Option<Loc>,
    /// The replica streaming state to the joiner (the incumbent primary).
    /// Falls back to the victim when unset.
    pub donor: Option<Loc>,
}

impl FaultTopology {
    /// All locations the nemesis may touch.
    pub fn everyone(&self) -> Vec<Loc> {
        self.clients.iter().chain(&self.core).copied().collect()
    }
}

/// Named fault scenarios a [`Nemesis`] can expand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NemesisProfile {
    /// Symmetrically cut the victim off from everyone, then heal; maybe
    /// cut again. The paper's primary-failure scenario, via partition.
    PartitionVictim,
    /// Bursts of loss + duplication + reordering on client↔core links.
    LossyClientLinks,
    /// Congestion windows adding fixed delay to inter-core links.
    DelaySpikes,
    /// Crash the victim once, no restart (the group reconfigures on).
    CrashVictim,
    /// Repeated crash/restart of the victim.
    CrashRestartStorm,
    /// Partition + lossy clients + a delay spike, interleaved.
    Mixed,
    /// Crash the victim — pointed at a shard's primary by sharded
    /// harnesses — in the middle of the run, while cross-shard commits
    /// are in flight. The group must fail over and finish (or abort)
    /// every open 2PC from its replicated log.
    ShardPrimaryCrash,
    /// Partition the coordinator group (shard 0) from a participant
    /// group, then heal: prepared-but-undecided transactions must block,
    /// not diverge, and drain after the heal. Falls back to isolating
    /// the victim when the topology has fewer than two groups.
    CoordinatorPartition,
    /// Repeated power loss on the victim: kill it and reboot it *from
    /// its disk* ([`NodeFaultKind::RestartDurable`]) after a short
    /// outage. Down-times are drawn well below a deployment's failure
    /// detection window, so the group never reconfigures — the victim
    /// must catch up from its own WAL + snapshot plus a short network
    /// suffix, not a full state transfer. The kill lands whenever the
    /// schedule says, including mid-fsync: whatever was appended but not
    /// yet synced becomes a torn tail the recovery scan must survive.
    /// Deliberately NOT in [`NemesisProfile::ALL`]: it only makes sense
    /// against a harness that supplies a durable restart factory (the
    /// generic soaks restart amnesiac processes).
    PowerLoss,
    /// Lease-read stress: partition the victim — pointed at the current
    /// lease holder (the PBR primary, or the rank-0 SMR claimant) — from
    /// the rest of the *core* while leaving its client links up, then
    /// heal. The deposed holder keeps receiving reads it could answer
    /// from stale state; its lease must self-expire before a successor
    /// starts serving, which the holder-interval probes and the
    /// serializability checker both verify end to end. Deliberately NOT
    /// in [`NemesisProfile::ALL`]: it only pays off against a harness
    /// that enables the read-lease fast path (without leases it is a
    /// weaker [`NemesisProfile::PartitionVictim`]).
    StalePrimaryReads,
    /// Online-reconfiguration stress: crash the *joiner* mid-transfer,
    /// and in a later, separate window crash the *donor* (the incumbent
    /// primary streaming the snapshot). The group must reconfigure past
    /// each loss without losing committed transactions. Deliberately NOT
    /// in [`NemesisProfile::ALL`]: it only makes sense against a harness
    /// that actually drives a reconfiguration (the generic soaks run
    /// static memberships, where killing two replicas of a small group
    /// wedges it by design).
    CrashDuringTransfer,
}

impl NemesisProfile {
    /// Every generic profile, for seed sweeps over static-membership
    /// deployments ([`NemesisProfile::CrashDuringTransfer`] and
    /// [`NemesisProfile::PowerLoss`] are excluded — they require a
    /// reconfiguration-driving or durable-restart-capable harness).
    pub const ALL: [NemesisProfile; 8] = [
        NemesisProfile::PartitionVictim,
        NemesisProfile::LossyClientLinks,
        NemesisProfile::DelaySpikes,
        NemesisProfile::CrashVictim,
        NemesisProfile::CrashRestartStorm,
        NemesisProfile::Mixed,
        NemesisProfile::ShardPrimaryCrash,
        NemesisProfile::CoordinatorPartition,
    ];
}

/// A tiny deterministic stream over [`mix64`] used only for schedule
/// expansion.
struct Stream(u64);

impl Stream {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.0)
    }

    /// Uniform float in `[lo, hi)`.
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + unit(self.next()) * (hi - lo)
    }

    /// A fraction of `d` drawn from `[lo, hi)` (as multiples of `d`).
    fn frac_of(&mut self, d: Duration, lo: f64, hi: f64) -> Duration {
        Duration::from_micros((d.as_micros() as f64 * self.range(lo, hi)) as u64)
    }
}

/// Expands `(seed, profile, duration)` into a [`FaultPlan`] — the same
/// triple always yields the same schedule on every substrate.
#[derive(Clone, Copy, Debug)]
pub struct Nemesis {
    /// Schedule seed (also becomes the plan's coin-flip seed).
    pub seed: u64,
    /// The scenario to expand.
    pub profile: NemesisProfile,
    /// Total window faults are drawn from; every fault heals by
    /// `0.85 * duration`, leaving the tail for post-heal convergence.
    pub duration: Duration,
}

impl Nemesis {
    /// Creates a nemesis scheduler.
    pub fn new(seed: u64, profile: NemesisProfile, duration: Duration) -> Nemesis {
        Nemesis {
            seed,
            profile,
            duration,
        }
    }

    /// Expands the schedule against a topology.
    pub fn plan(&self, topo: &FaultTopology) -> FaultPlan {
        let mut s = Stream(mix64(self.seed ^ (self.profile as u64) << 8));
        let d = self.duration;
        let mut plan = FaultPlan::new(mix64(self.seed ^ 0xfa_17));
        let start_of = |s: &mut Stream, d: Duration| VTime::ZERO + s.frac_of(d, 0.10, 0.30);
        match self.profile {
            NemesisProfile::PartitionVictim => {
                let start = start_of(&mut s, d);
                let end = start + s.frac_of(d, 0.20, 0.35);
                plan = plan.with_isolation(topo.victim, start, end);
                if s.next().is_multiple_of(2) {
                    let start2 = VTime::ZERO + s.frac_of(d, 0.55, 0.65);
                    let end2 = start2 + s.frac_of(d, 0.10, 0.18);
                    plan = plan.with_isolation(topo.victim, start2, end2);
                }
            }
            NemesisProfile::LossyClientLinks => {
                let bursts = 2 + s.next() % 3;
                for _ in 0..bursts {
                    let start = VTime::ZERO + s.frac_of(d, 0.05, 0.60);
                    let end = start + s.frac_of(d, 0.08, 0.22);
                    let fault = LinkFault {
                        drop_p: s.range(0.05, 0.30),
                        dup_p: s.range(0.05, 0.30),
                        delay: Duration::ZERO,
                        reorder_window: Duration::from_micros((d.as_micros() as f64 * 0.01) as u64),
                    };
                    plan = plan.with_rule(
                        LinkSel::Between(topo.clients.clone(), topo.core.clone()),
                        start,
                        end,
                        fault,
                    );
                }
            }
            NemesisProfile::DelaySpikes => {
                let spikes = 1 + s.next() % 3;
                for _ in 0..spikes {
                    let start = VTime::ZERO + s.frac_of(d, 0.05, 0.60);
                    let end = start + s.frac_of(d, 0.05, 0.20);
                    let delay = s.frac_of(d, 0.002, 0.02);
                    plan = plan.with_rule(
                        LinkSel::Between(topo.core.clone(), topo.core.clone()),
                        start,
                        end,
                        LinkFault::delayed(delay),
                    );
                }
            }
            NemesisProfile::CrashVictim => {
                plan = plan.with_crash(VTime::ZERO + s.frac_of(d, 0.15, 0.40), topo.victim);
            }
            NemesisProfile::CrashRestartStorm => {
                let rounds = 2 + s.next() % 3;
                let deadline = VTime::ZERO + d.mul_f64(0.85);
                let mut at = start_of(&mut s, d);
                for _ in 0..rounds {
                    let down = s.frac_of(d, 0.03, 0.10);
                    if at + down > deadline {
                        break;
                    }
                    plan = plan.with_crash(at, topo.victim);
                    plan = plan.with_restart(at + down, topo.victim);
                    at = at + down + s.frac_of(d, 0.05, 0.12);
                }
            }
            NemesisProfile::ShardPrimaryCrash => {
                // Later than CrashVictim's window: the workload is in full
                // swing and cross-shard transactions are mid-protocol.
                plan = plan.with_crash(VTime::ZERO + s.frac_of(d, 0.25, 0.50), topo.victim);
            }
            NemesisProfile::CoordinatorPartition => {
                let start = start_of(&mut s, d);
                let end = start + s.frac_of(d, 0.15, 0.30);
                if topo.groups.len() >= 2 {
                    plan = plan.with_rule(
                        LinkSel::Between(topo.groups[0].clone(), topo.groups[1].clone()),
                        start,
                        end,
                        LinkFault::partition(),
                    );
                } else {
                    plan = plan.with_isolation(topo.victim, start, end);
                }
            }
            NemesisProfile::PowerLoss => {
                // Short outages: well under any sane failure-detection
                // window (the chaos harness floors detection at 10% of
                // the run), so membership never changes and the rebooted
                // replica must rejoin the *same* group from its disk.
                let rounds = 2 + s.next() % 2;
                let deadline = VTime::ZERO + d.mul_f64(0.80);
                let mut at = start_of(&mut s, d);
                for _ in 0..rounds {
                    let down = s.frac_of(d, 0.01, 0.04);
                    if at + down > deadline {
                        break;
                    }
                    plan = plan.with_crash(at, topo.victim);
                    plan = plan.with_durable_restart(at + down, topo.victim);
                    at = at + down + s.frac_of(d, 0.08, 0.15);
                }
            }
            NemesisProfile::StalePrimaryReads => {
                // Cut the holder off from every other core node — but not
                // from the clients, whose reads keep arriving at a node
                // whose lease is quietly running out. Heal, then cut once
                // more after the successor has settled in.
                let others: Vec<Loc> = topo
                    .core
                    .iter()
                    .copied()
                    .filter(|l| *l != topo.victim)
                    .collect();
                let start = start_of(&mut s, d);
                let end = start + s.frac_of(d, 0.20, 0.30);
                plan = plan.with_rule(
                    LinkSel::Between(vec![topo.victim], others.clone()),
                    start,
                    end,
                    LinkFault::partition(),
                );
                if s.next().is_multiple_of(2) {
                    let start2 = VTime::ZERO + s.frac_of(d, 0.60, 0.68);
                    let end2 = start2 + s.frac_of(d, 0.08, 0.15);
                    plan = plan.with_rule(
                        LinkSel::Between(vec![topo.victim], others),
                        start2,
                        end2,
                        LinkFault::partition(),
                    );
                }
            }
            NemesisProfile::CrashDuringTransfer => {
                // The reconfig harness starts its replace early (≈0.10 of
                // the window); the snapshot stream is in flight shortly
                // after. Two separate incidents: first the joiner dies
                // mid-stream (the group must abandon it and re-replace),
                // then — once a second transfer is underway — the donor
                // dies (a surviving member must take over and re-stream).
                let joiner = topo.joiner.unwrap_or(topo.victim);
                let donor = topo.donor.unwrap_or(topo.victim);
                plan = plan.with_crash(VTime::ZERO + s.frac_of(d, 0.15, 0.30), joiner);
                plan = plan.with_crash(VTime::ZERO + s.frac_of(d, 0.55, 0.75), donor);
            }
            NemesisProfile::Mixed => {
                let start = start_of(&mut s, d);
                let end = start + s.frac_of(d, 0.15, 0.25);
                plan = plan.with_isolation(topo.victim, start, end);
                let lstart = VTime::ZERO + s.frac_of(d, 0.40, 0.55);
                let lend = lstart + s.frac_of(d, 0.10, 0.20);
                plan = plan.with_rule(
                    LinkSel::Between(topo.clients.clone(), topo.core.clone()),
                    lstart,
                    lend,
                    LinkFault {
                        drop_p: s.range(0.05, 0.20),
                        dup_p: s.range(0.05, 0.20),
                        delay: Duration::ZERO,
                        reorder_window: Duration::from_micros((d.as_micros() as f64 * 0.01) as u64),
                    },
                );
                let dstart = VTime::ZERO + s.frac_of(d, 0.10, 0.50);
                plan = plan.with_rule(
                    LinkSel::Between(topo.core.clone(), topo.core.clone()),
                    dstart,
                    dstart + s.frac_of(d, 0.05, 0.15),
                    LinkFault::delayed(s.frac_of(d, 0.002, 0.01)),
                );
            }
        }
        debug_assert!(plan
            .rules
            .iter()
            .all(|r| r.end <= VTime::ZERO + d.mul_f64(0.86)));
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> FaultTopology {
        FaultTopology {
            clients: vec![Loc::new(0), Loc::new(1)],
            core: vec![Loc::new(2), Loc::new(3), Loc::new(4)],
            victim: Loc::new(2),
            groups: Vec::new(),
            joiner: None,
            donor: None,
        }
    }

    fn sharded_topo() -> FaultTopology {
        FaultTopology {
            clients: vec![Loc::new(8), Loc::new(9)],
            core: (0..8).map(Loc::new).collect(),
            victim: Loc::new(2),
            groups: vec![
                vec![Loc::new(2), Loc::new(3)],
                vec![Loc::new(6), Loc::new(7)],
            ],
            joiner: None,
            donor: None,
        }
    }

    #[test]
    fn same_triple_same_schedule_bytes() {
        for profile in NemesisProfile::ALL {
            let a = Nemesis::new(42, profile, Duration::from_secs(10)).plan(&topo());
            let b = Nemesis::new(42, profile, Duration::from_secs(10)).plan(&topo());
            assert_eq!(a, b);
            assert_eq!(a.digest(), b.digest());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a =
            Nemesis::new(1, NemesisProfile::PartitionVictim, Duration::from_secs(10)).plan(&topo());
        let b =
            Nemesis::new(2, NemesisProfile::PartitionVictim, Duration::from_secs(10)).plan(&topo());
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn partition_cuts_both_directions_then_heals() {
        let plan =
            FaultPlan::new(7).with_isolation(Loc::new(2), VTime::from_secs(1), VTime::from_secs(2));
        let inside = VTime::from_millis(1_500);
        assert!(plan.cut(Loc::new(2), Loc::new(3), inside));
        assert!(plan.cut(Loc::new(3), Loc::new(2), inside));
        assert!(matches!(
            plan.decide(Loc::new(2), Loc::new(3), inside, 0),
            LinkVerdict::Drop { severed: true }
        ));
        // Unrelated link untouched, and the healthy pre-check is cheap.
        assert!(!plan.active(Loc::new(3), Loc::new(4), inside));
        assert_eq!(
            plan.decide(Loc::new(3), Loc::new(4), inside, 0),
            LinkVerdict::CLEAN
        );
        // Healed.
        let after = VTime::from_secs(2);
        assert!(!plan.cut(Loc::new(2), Loc::new(3), after));
        assert_eq!(
            plan.decide(Loc::new(2), Loc::new(3), after, 9),
            LinkVerdict::CLEAN
        );
        assert_eq!(plan.quiet_after(), VTime::from_secs(2));
    }

    #[test]
    fn decide_is_pure_and_counter_sensitive() {
        let plan = FaultPlan::new(3).with_rule(
            LinkSel::Pair(Loc::new(0), Loc::new(1)),
            VTime::ZERO,
            VTime::from_secs(1),
            LinkFault::lossy(0.5),
        );
        let now = VTime::from_millis(10);
        let verdicts: Vec<_> = (0..64)
            .map(|n| plan.decide(Loc::new(0), Loc::new(1), now, n))
            .collect();
        assert_eq!(
            verdicts,
            (0..64)
                .map(|n| plan.decide(Loc::new(0), Loc::new(1), now, n))
                .collect::<Vec<_>>()
        );
        let drops = verdicts
            .iter()
            .filter(|v| matches!(v, LinkVerdict::Drop { .. }))
            .count();
        assert!(drops > 10 && drops < 54, "drops={drops}");
        // A 50% loss rule never reports itself as a severed cut.
        assert!(verdicts
            .iter()
            .all(|v| !matches!(v, LinkVerdict::Drop { severed: true })));
    }

    #[test]
    fn duplication_and_delay_compose() {
        let plan = FaultPlan::new(5)
            .with_rule(
                LinkSel::From(Loc::new(0)),
                VTime::ZERO,
                VTime::from_secs(1),
                LinkFault::duplicating(1.0),
            )
            .with_rule(
                LinkSel::To(Loc::new(1)),
                VTime::ZERO,
                VTime::from_secs(1),
                LinkFault::delayed(Duration::from_millis(2)),
            );
        match plan.decide(Loc::new(0), Loc::new(1), VTime::ZERO, 0) {
            LinkVerdict::Deliver {
                extra_delay,
                duplicate,
            } => {
                assert!(duplicate);
                assert_eq!(extra_delay, Duration::from_millis(2));
            }
            v => panic!("unexpected verdict {v:?}"),
        }
    }

    #[test]
    fn reorder_window_flags_fifo_suspension() {
        let plan = FaultPlan::new(11).with_rule(
            LinkSel::Pair(Loc::new(0), Loc::new(1)),
            VTime::ZERO,
            VTime::from_secs(1),
            LinkFault::reordering(Duration::from_millis(4)),
        );
        assert!(plan.reorders(Loc::new(0), Loc::new(1), VTime::from_millis(5)));
        assert!(!plan.reorders(Loc::new(1), Loc::new(0), VTime::from_millis(5)));
        assert!(!plan.reorders(Loc::new(0), Loc::new(1), VTime::from_secs(1)));
        // Draws land inside the window.
        for n in 0..32 {
            if let LinkVerdict::Deliver { extra_delay, .. } =
                plan.decide(Loc::new(0), Loc::new(1), VTime::ZERO, n)
            {
                assert!(extra_delay <= Duration::from_millis(4));
            }
        }
    }

    #[test]
    fn nemesis_heals_before_the_tail() {
        for profile in NemesisProfile::ALL {
            for seed in 0..20 {
                let d = Duration::from_secs(8);
                let plan = Nemesis::new(seed, profile, d).plan(&topo());
                assert!(
                    plan.quiet_after() <= VTime::ZERO + d.mul_f64(0.86),
                    "{profile:?}/{seed} quiet_after={:?}",
                    plan.quiet_after()
                );
            }
        }
    }

    #[test]
    fn coordinator_partition_cuts_cross_group_links_only() {
        for seed in 0..10 {
            let plan = Nemesis::new(
                seed,
                NemesisProfile::CoordinatorPartition,
                Duration::from_secs(10),
            )
            .plan(&sharded_topo());
            assert_eq!(plan.rules.len(), 1);
            let mid = plan.rules[0].start + (plan.rules[0].end - plan.rules[0].start) / 2;
            // Coordinator group ↔ participant group: cut, both ways.
            assert!(plan.cut(Loc::new(2), Loc::new(6), mid));
            assert!(plan.cut(Loc::new(7), Loc::new(3), mid));
            // Intra-group and client links stay up.
            assert!(!plan.active(Loc::new(2), Loc::new(3), mid));
            assert!(!plan.active(Loc::new(8), Loc::new(2), mid));
            assert!(!plan.active(Loc::new(8), Loc::new(6), mid));
        }
    }

    #[test]
    fn coordinator_partition_falls_back_to_victim_isolation() {
        let plan = Nemesis::new(
            3,
            NemesisProfile::CoordinatorPartition,
            Duration::from_secs(10),
        )
        .plan(&topo());
        assert_eq!(plan.rules.len(), 1);
        let mid = plan.rules[0].start + (plan.rules[0].end - plan.rules[0].start) / 2;
        assert!(plan.cut(Loc::new(2), Loc::new(3), mid));
        assert!(plan.cut(Loc::new(3), Loc::new(2), mid));
    }

    #[test]
    fn shard_primary_crash_fires_mid_run() {
        for seed in 0..10 {
            let d = Duration::from_secs(10);
            let plan =
                Nemesis::new(seed, NemesisProfile::ShardPrimaryCrash, d).plan(&sharded_topo());
            assert_eq!(plan.node_faults.len(), 1);
            let f = plan.node_faults[0];
            assert_eq!(f.loc, Loc::new(2));
            assert_eq!(f.kind, NodeFaultKind::Crash);
            assert!(f.at >= VTime::ZERO + d.mul_f64(0.25));
            assert!(f.at <= VTime::ZERO + d.mul_f64(0.50));
        }
    }

    #[test]
    fn power_loss_reboots_from_disk_with_short_outages() {
        for seed in 0..20 {
            let d = Duration::from_secs(10);
            let plan = Nemesis::new(seed, NemesisProfile::PowerLoss, d).plan(&topo());
            assert!(plan.rules.is_empty());
            assert!(plan.node_faults.len() >= 2, "at least one full round");
            assert!(plan.node_faults.len().is_multiple_of(2));
            for pair in plan.node_faults.chunks(2) {
                let (kill, boot) = (pair[0], pair[1]);
                assert_eq!(kill.kind, NodeFaultKind::Crash);
                assert_eq!(boot.kind, NodeFaultKind::RestartDurable);
                assert_eq!(kill.loc, Loc::new(2));
                assert_eq!(boot.loc, Loc::new(2));
                // Outage stays below the chaos detection floor (10% of d).
                assert!(boot.at - kill.at < d.mul_f64(0.05));
            }
            assert!(plan.quiet_after() <= VTime::ZERO + d.mul_f64(0.85));
        }
    }

    #[test]
    fn durable_restart_digests_differently_but_leaves_old_plans_alone() {
        let at = VTime::from_secs(1);
        let amnesiac = FaultPlan::new(9).with_restart(at, Loc::new(2));
        let durable = FaultPlan::new(9).with_durable_restart(at, Loc::new(2));
        assert_ne!(amnesiac.digest(), durable.digest());
        // Schedules that never use the new kind are untouched: same
        // bytes, same digest as before the variant existed.
        let again = FaultPlan::new(9).with_restart(at, Loc::new(2));
        assert_eq!(amnesiac, again);
        assert_eq!(amnesiac.digest(), again.digest());
    }

    #[test]
    fn crash_during_transfer_hits_joiner_then_donor() {
        let mut t = topo();
        // The joiner does not exist at deploy time: its location is past
        // every deploy-time node. Plans address by location, so the
        // schedule is still expressible and deterministic.
        t.joiner = Some(Loc::new(9));
        t.donor = Some(Loc::new(2));
        for seed in 0..10 {
            let d = Duration::from_secs(10);
            let plan = Nemesis::new(seed, NemesisProfile::CrashDuringTransfer, d).plan(&t);
            assert_eq!(plan.node_faults.len(), 2);
            let (j, dn) = (plan.node_faults[0], plan.node_faults[1]);
            assert_eq!(j.loc, Loc::new(9));
            assert_eq!(dn.loc, Loc::new(2));
            assert!(j.at < dn.at, "joiner dies in the earlier window");
            assert!(dn.at <= VTime::ZERO + d.mul_f64(0.75));
        }
        // Without explicit targets the profile degrades to the victim.
        let fallback = Nemesis::new(
            1,
            NemesisProfile::CrashDuringTransfer,
            Duration::from_secs(10),
        )
        .plan(&topo());
        assert!(fallback.node_faults.iter().all(|f| f.loc == Loc::new(2)));
    }

    #[test]
    fn rules_may_name_locations_beyond_the_deployed_table() {
        // Regression: fault rules survive membership change. A rule naming
        // a location that does not exist yet must be constructible,
        // digestable, and must select the link once the node appears.
        let late = Loc::new(77);
        let plan = FaultPlan::new(13).with_isolation(late, VTime::ZERO, VTime::from_secs(1));
        assert!(plan.cut(late, Loc::new(0), VTime::from_millis(1)));
        assert!(plan.cut(Loc::new(0), late, VTime::from_millis(1)));
        let _ = plan.digest();
    }

    #[test]
    fn lossy_profile_spares_core_links() {
        for seed in 0..10 {
            let plan = Nemesis::new(
                seed,
                NemesisProfile::LossyClientLinks,
                Duration::from_secs(10),
            )
            .plan(&topo());
            for r in &plan.rules {
                // Inter-core links keep their reliable-FIFO assumption.
                assert!(!r.links.matches(Loc::new(2), Loc::new(3)));
                assert!(r.links.matches(Loc::new(0), Loc::new(2)));
                assert!(r.links.matches(Loc::new(2), Loc::new(0)));
            }
        }
    }
}
