//! Table storage: row heap plus B-tree indexes.

use crate::expr::Expr;
use crate::schema::TableSchema;
use crate::value::{Row, SqlValue};
use crate::{Result, SqlError};
use std::collections::{BTreeMap, BTreeSet};

/// Identifies a row within its table for the lifetime of the table.
pub type RowId = u64;

/// A resolved access path: *which* index a predicate probes and with what
/// key. Depends only on the schema and the set of indexes — never on row
/// data — so a cached path stays valid across DML and needs recomputing
/// only after DDL.
#[derive(Clone, Debug, PartialEq)]
pub enum AccessPath {
    /// Point lookup: the full primary key is pinned by equalities.
    PkPoint(Vec<SqlValue>),
    /// Range scan over a non-empty primary-key prefix.
    PkPrefix(Vec<SqlValue>),
    /// Probe of a secondary index with a fully pinned key.
    Secondary {
        /// Index name (re-resolved by name at execution time).
        index: String,
        /// The pinned key.
        key: Vec<SqlValue>,
    },
    /// No usable index: walk the heap.
    FullScan,
}

/// A secondary index over a subset of columns.
#[derive(Clone, Debug)]
pub struct SecondaryIndex {
    /// Index name.
    pub name: String,
    /// Indexed column positions, in key order.
    pub columns: Vec<usize>,
    /// key -> row ids (non-unique).
    map: BTreeMap<Vec<SqlValue>, BTreeSet<RowId>>,
}

/// A table: schema, heap, primary-key index, secondary indexes.
#[derive(Clone, Debug)]
pub struct Table {
    schema: TableSchema,
    rows: BTreeMap<RowId, Row>,
    next_rowid: RowId,
    pk: BTreeMap<Vec<SqlValue>, RowId>,
    secondary: Vec<SecondaryIndex>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: TableSchema) -> Table {
        Table {
            schema,
            rows: BTreeMap::new(),
            next_rowid: 0,
            pk: BTreeMap::new(),
            secondary: Vec::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Adds a secondary index over `columns`, indexing existing rows.
    ///
    /// # Errors
    ///
    /// Fails if an index with the same name exists or a column is unknown.
    pub fn create_index(&mut self, name: &str, columns: &[String]) -> Result<()> {
        if self.secondary.iter().any(|i| i.name == name) {
            return Err(SqlError::Constraint(format!("index {name} already exists")));
        }
        let cols: Result<Vec<usize>> = columns.iter().map(|c| self.schema.col(c)).collect();
        let mut idx = SecondaryIndex {
            name: name.to_owned(),
            columns: cols?,
            map: BTreeMap::new(),
        };
        for (&rid, row) in &self.rows {
            let key: Vec<SqlValue> = idx.columns.iter().map(|&c| row[c].clone()).collect();
            idx.map.entry(key).or_default().insert(rid);
        }
        self.secondary.push(idx);
        Ok(())
    }

    /// Inserts a row.
    ///
    /// # Errors
    ///
    /// Fails on arity/type mismatch or duplicate primary key.
    pub fn insert(&mut self, row: Row) -> Result<RowId> {
        self.schema.check_row(&row)?;
        let key = self.schema.key_of(&row);
        if self.pk.contains_key(&key) {
            return Err(SqlError::Constraint(format!(
                "duplicate primary key {key:?} in {}",
                self.schema.name
            )));
        }
        let rid = self.next_rowid;
        self.next_rowid += 1;
        for idx in &mut self.secondary {
            let ikey: Vec<SqlValue> = idx.columns.iter().map(|&c| row[c].clone()).collect();
            idx.map.entry(ikey).or_default().insert(rid);
        }
        self.pk.insert(key, rid);
        self.rows.insert(rid, row);
        Ok(rid)
    }

    /// Fetches a row by id.
    pub fn get(&self, rid: RowId) -> Option<&Row> {
        self.rows.get(&rid)
    }

    /// Re-inserts a previously deleted row under its *original* id (the
    /// undo path: a transaction that deleted and re-inserted a key must
    /// roll back to exactly the ids it started from).
    ///
    /// # Errors
    ///
    /// Fails if the id or primary key is already in use, or on schema
    /// violations.
    pub fn restore(&mut self, rid: RowId, row: Row) -> Result<()> {
        self.schema.check_row(&row)?;
        if self.rows.contains_key(&rid) {
            return Err(SqlError::Constraint(format!(
                "row id {rid} already occupied"
            )));
        }
        let key = self.schema.key_of(&row);
        if self.pk.contains_key(&key) {
            return Err(SqlError::Constraint(format!(
                "duplicate primary key {key:?}"
            )));
        }
        for idx in &mut self.secondary {
            let ikey: Vec<SqlValue> = idx.columns.iter().map(|c| row[*c].clone()).collect();
            idx.map.entry(ikey).or_default().insert(rid);
        }
        self.pk.insert(key, rid);
        self.rows.insert(rid, row);
        self.next_rowid = self.next_rowid.max(rid + 1);
        Ok(())
    }

    /// Deletes a row by id, returning it.
    pub fn delete(&mut self, rid: RowId) -> Option<Row> {
        let row = self.rows.remove(&rid)?;
        self.pk.remove(&self.schema.key_of(&row));
        for idx in &mut self.secondary {
            let ikey: Vec<SqlValue> = idx.columns.iter().map(|&c| row[c].clone()).collect();
            if let Some(set) = idx.map.get_mut(&ikey) {
                set.remove(&rid);
                if set.is_empty() {
                    idx.map.remove(&ikey);
                }
            }
        }
        Some(row)
    }

    /// Replaces a row in place, maintaining all indexes.
    ///
    /// # Errors
    ///
    /// Fails on schema violations or if the new primary key collides with a
    /// different row.
    pub fn update(&mut self, rid: RowId, new_row: Row) -> Result<Row> {
        self.schema.check_row(&new_row)?;
        let old = self
            .rows
            .get(&rid)
            .cloned()
            .ok_or_else(|| SqlError::Unknown(format!("row id {rid}")))?;
        let old_key = self.schema.key_of(&old);
        let new_key = self.schema.key_of(&new_row);
        if new_key != old_key {
            if self.pk.contains_key(&new_key) {
                return Err(SqlError::Constraint(format!(
                    "update collides on primary key {new_key:?}"
                )));
            }
            self.pk.remove(&old_key);
            self.pk.insert(new_key, rid);
        }
        for idx in &mut self.secondary {
            let old_ikey: Vec<SqlValue> = idx.columns.iter().map(|&c| old[c].clone()).collect();
            let new_ikey: Vec<SqlValue> = idx.columns.iter().map(|&c| new_row[c].clone()).collect();
            if old_ikey != new_ikey {
                if let Some(set) = idx.map.get_mut(&old_ikey) {
                    set.remove(&rid);
                    if set.is_empty() {
                        idx.map.remove(&old_ikey);
                    }
                }
                idx.map.entry(new_ikey).or_default().insert(rid);
            }
        }
        self.rows.insert(rid, new_row);
        Ok(old)
    }

    /// Looks up a row id by full primary key.
    pub fn lookup_pk(&self, key: &[SqlValue]) -> Option<RowId> {
        self.pk.get(key).copied()
    }

    /// The row ids a predicate may match, using the cheapest access path:
    /// point lookup on a full primary key, range scan on a key prefix
    /// (primary or secondary), or a full scan.
    pub fn candidates(&self, filter: Option<&Expr>) -> Vec<RowId> {
        self.candidates_via(&self.plan_path(filter))
    }

    /// Chooses the cheapest access path for a bound predicate. The choice
    /// depends only on the schema and the index set, so callers may cache
    /// it across statements and invalidate on DDL.
    pub fn plan_path(&self, filter: Option<&Expr>) -> AccessPath {
        if let Some(f) = filter {
            let prefix = f.pk_prefix(&self.schema);
            if prefix.len() == self.schema.primary_key.len() {
                return AccessPath::PkPoint(prefix);
            }
            if !prefix.is_empty() {
                return AccessPath::PkPrefix(prefix);
            }
            // Try a secondary index with a fully pinned key prefix.
            if let Some((idx, key)) = self.secondary_match(f) {
                return AccessPath::Secondary {
                    index: idx.name.clone(),
                    key,
                };
            }
        }
        AccessPath::FullScan
    }

    /// Executes a previously chosen access path against current data. An
    /// index that no longer exists degrades to an empty probe — callers
    /// invalidate cached paths on DDL before that can be observed.
    pub fn candidates_via(&self, path: &AccessPath) -> Vec<RowId> {
        match path {
            AccessPath::PkPoint(key) => self.lookup_pk(key).into_iter().collect(),
            AccessPath::PkPrefix(prefix) => self.pk_prefix_range(prefix),
            AccessPath::Secondary { index, key } => self
                .secondary
                .iter()
                .find(|i| &i.name == index)
                .and_then(|i| i.map.get(key))
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default(),
            AccessPath::FullScan => self.rows.keys().copied().collect(),
        }
    }

    /// Rows whose primary key starts with `prefix`.
    fn pk_prefix_range(&self, prefix: &[SqlValue]) -> Vec<RowId> {
        self.pk
            .range(prefix.to_vec()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, rid)| *rid)
            .collect()
    }

    fn secondary_match(&self, f: &Expr) -> Option<(&SecondaryIndex, Vec<SqlValue>)> {
        // Reuse the pk_prefix machinery by building a pseudo-schema whose
        // "primary key" is the index's columns.
        for idx in &self.secondary {
            let pseudo = TableSchema {
                name: self.schema.name.clone(),
                columns: self.schema.columns.clone(),
                primary_key: idx.columns.clone(),
            };
            let prefix = f.pk_prefix(&pseudo);
            if prefix.len() == idx.columns.len() {
                return Some((idx, prefix));
            }
        }
        None
    }

    /// Iterates over `(row id, row)` pairs in heap order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows.iter().map(|(rid, row)| (*rid, row))
    }

    /// Approximate total data size in bytes.
    pub fn byte_size(&self) -> usize {
        self.rows.values().map(|r| self.schema.row_bytes(r)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::schema::{Column, DataType};

    fn accounts() -> Table {
        Table::new(
            TableSchema::new(
                "accounts",
                vec![
                    Column {
                        name: "id".into(),
                        dtype: DataType::Int,
                    },
                    Column {
                        name: "owner".into(),
                        dtype: DataType::Text,
                    },
                    Column {
                        name: "balance".into(),
                        dtype: DataType::Int,
                    },
                ],
                vec![0],
            )
            .unwrap(),
        )
    }

    fn row(id: i64, owner: &str, bal: i64) -> Row {
        vec![SqlValue::Int(id), SqlValue::from(owner), SqlValue::Int(bal)]
    }

    #[test]
    fn insert_lookup_delete() {
        let mut t = accounts();
        let rid = t.insert(row(1, "a", 10)).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup_pk(&[SqlValue::Int(1)]), Some(rid));
        assert_eq!(t.delete(rid).unwrap()[2], SqlValue::Int(10));
        assert!(t.is_empty());
        assert_eq!(t.lookup_pk(&[SqlValue::Int(1)]), None);
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = accounts();
        t.insert(row(1, "a", 10)).unwrap();
        assert!(matches!(
            t.insert(row(1, "b", 20)),
            Err(SqlError::Constraint(_))
        ));
    }

    #[test]
    fn update_maintains_pk_index() {
        let mut t = accounts();
        let rid = t.insert(row(1, "a", 10)).unwrap();
        t.update(rid, row(2, "a", 10)).unwrap();
        assert_eq!(t.lookup_pk(&[SqlValue::Int(1)]), None);
        assert_eq!(t.lookup_pk(&[SqlValue::Int(2)]), Some(rid));
        // Colliding key change rejected.
        let rid3 = t.insert(row(3, "c", 0)).unwrap();
        assert!(t.update(rid3, row(2, "c", 0)).is_err());
    }

    #[test]
    fn secondary_index_used_and_maintained() {
        let mut t = accounts();
        for i in 0..10 {
            t.insert(row(i, if i % 2 == 0 { "even" } else { "odd" }, i * 10))
                .unwrap();
        }
        t.create_index("by_owner", &["owner".into()]).unwrap();
        let f = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Col(1)),
            Box::new(Expr::Lit(SqlValue::from("even"))),
        );
        assert_eq!(t.candidates(Some(&f)).len(), 5);
        // Update moves a row between index keys.
        let rid = t.lookup_pk(&[SqlValue::Int(0)]).unwrap();
        t.update(rid, row(0, "odd", 0)).unwrap();
        assert_eq!(t.candidates(Some(&f)).len(), 4);
        // Delete removes from the index.
        let rid2 = t.lookup_pk(&[SqlValue::Int(2)]).unwrap();
        t.delete(rid2);
        assert_eq!(t.candidates(Some(&f)).len(), 3);
    }

    #[test]
    fn pk_point_lookup_path() {
        let mut t = accounts();
        for i in 0..100 {
            t.insert(row(i, "x", 0)).unwrap();
        }
        let f = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Col(0)),
            Box::new(Expr::Lit(SqlValue::Int(42))),
        );
        let c = t.candidates(Some(&f));
        assert_eq!(c.len(), 1);
        assert_eq!(t.get(c[0]).unwrap()[0], SqlValue::Int(42));
    }

    #[test]
    fn composite_pk_prefix_range() {
        let mut t = Table::new(
            TableSchema::new(
                "orders",
                vec![
                    Column {
                        name: "w".into(),
                        dtype: DataType::Int,
                    },
                    Column {
                        name: "d".into(),
                        dtype: DataType::Int,
                    },
                    Column {
                        name: "id".into(),
                        dtype: DataType::Int,
                    },
                ],
                vec![0, 1, 2],
            )
            .unwrap(),
        );
        for w in 0..2 {
            for d in 0..3 {
                for id in 0..4 {
                    t.insert(vec![SqlValue::Int(w), SqlValue::Int(d), SqlValue::Int(id)])
                        .unwrap();
                }
            }
        }
        // w = 1 AND d = 2 pins a prefix of 2 of 3 key columns → 4 rows.
        let f = Expr::And(
            Box::new(Expr::Cmp(
                CmpOp::Eq,
                Box::new(Expr::Col(0)),
                Box::new(Expr::Lit(SqlValue::Int(1))),
            )),
            Box::new(Expr::Cmp(
                CmpOp::Eq,
                Box::new(Expr::Col(1)),
                Box::new(Expr::Lit(SqlValue::Int(2))),
            )),
        );
        assert_eq!(t.candidates(Some(&f)).len(), 4);
    }

    #[test]
    fn plan_path_is_data_independent_but_index_dependent() {
        let mut t = accounts();
        for i in 0..4 {
            t.insert(row(i, "x", 0)).unwrap();
        }
        let f = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Col(1)),
            Box::new(Expr::Lit(SqlValue::from("x"))),
        );
        // Without an index on `owner` the path is a full scan…
        let before = t.plan_path(Some(&f));
        assert_eq!(before, AccessPath::FullScan);
        // …and stays valid (same candidates) across DML.
        t.insert(row(9, "x", 0)).unwrap();
        assert_eq!(t.candidates_via(&before).len(), 5);
        // A new index changes the chosen path; the *old* path still
        // executes (it is the cache's job to refresh it).
        t.create_index("by_owner", &["owner".into()]).unwrap();
        let after = t.plan_path(Some(&f));
        assert!(matches!(after, AccessPath::Secondary { .. }));
        assert_eq!(t.candidates_via(&after).len(), 5);
        assert_eq!(t.candidates_via(&before).len(), 5);
    }

    #[test]
    fn byte_size_tracks_rows() {
        let mut t = accounts();
        t.insert(row(1, "", 10)).unwrap();
        assert_eq!(t.byte_size(), 16);
        t.insert(row(2, "abcd", 10)).unwrap();
        assert_eq!(t.byte_size(), 36);
    }
}
