//! Property-based tests of the storage engine's invariants.
//!
//! The engine is the one hand-written component under the replication
//! protocols (the paper trusts H2/HSQLDB/Derby; we built ours), so its
//! invariants get the heaviest randomized testing:
//!
//! * a `BTreeMap` model predicts every committed read;
//! * rollback is a perfect inverse of any statement sequence;
//! * indexes and heap never disagree;
//! * snapshot → batches → restore is lossless for arbitrary data.

use proptest::prelude::*;
use shadowdb_sqldb::{Database, EngineProfile, RowBatch, Snapshot, SqlValue};
use std::collections::BTreeMap;

/// A model operation over a single-table integer store.
#[derive(Clone, Debug)]
enum Op {
    Insert { id: i64, v: i64 },
    Update { id: i64, v: i64 },
    Delete { id: i64 },
    AddDelta { id: i64, d: i64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..40, any::<i16>()).prop_map(|(id, v)| Op::Insert { id, v: v as i64 }),
        (0i64..40, any::<i16>()).prop_map(|(id, v)| Op::Update { id, v: v as i64 }),
        (0i64..40).prop_map(|id| Op::Delete { id }),
        (0i64..40, -50i64..50).prop_map(|(id, d)| Op::AddDelta { id, d }),
    ]
}

fn fresh() -> Database {
    let db = Database::new(EngineProfile::h2());
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        .expect("ddl");
    db
}

/// Applies one op to both the engine and the model; they must agree on
/// whether it succeeded.
fn apply(db: &Database, model: &mut BTreeMap<i64, i64>, op: &Op) {
    match op {
        Op::Insert { id, v } => {
            let r = db.execute(&format!("INSERT INTO t VALUES ({id}, {v})"));
            if model.contains_key(id) {
                assert!(r.is_err(), "duplicate PK must be rejected");
            } else {
                r.expect("insert succeeds");
                model.insert(*id, *v);
            }
        }
        Op::Update { id, v } => {
            let r = db
                .execute(&format!("UPDATE t SET v = {v} WHERE id = {id}"))
                .expect("runs");
            assert_eq!(r.affected, usize::from(model.contains_key(id)));
            if let Some(slot) = model.get_mut(id) {
                *slot = *v;
            }
        }
        Op::Delete { id } => {
            let r = db
                .execute(&format!("DELETE FROM t WHERE id = {id}"))
                .expect("runs");
            assert_eq!(r.affected, usize::from(model.remove(id).is_some()));
        }
        Op::AddDelta { id, d } => {
            db.execute(&format!("UPDATE t SET v = v + {d} WHERE id = {id}"))
                .expect("runs");
            if let Some(slot) = model.get_mut(id) {
                *slot += *d;
            }
        }
    }
}

fn assert_matches_model(db: &Database, model: &BTreeMap<i64, i64>) {
    let rs = db
        .execute("SELECT id, v FROM t ORDER BY id")
        .expect("reads");
    let got: Vec<(i64, i64)> = rs
        .rows
        .iter()
        .map(|r| (r[0].as_int().expect("int"), r[1].as_int().expect("int")))
        .collect();
    let want: Vec<(i64, i64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
    assert_eq!(got, want);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The engine agrees with a map model over arbitrary CRUD sequences.
    #[test]
    fn engine_matches_map_model(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let db = fresh();
        let mut model = BTreeMap::new();
        for op in &ops {
            apply(&db, &mut model, op);
        }
        assert_matches_model(&db, &model);
        // Aggregates agree too.
        let rs = db.execute("SELECT COUNT(*), SUM(v) FROM t").expect("aggregates");
        prop_assert_eq!(rs.rows[0][0].as_int().expect("count"), model.len() as i64);
        let sum = model.values().sum::<i64>();
        let got_sum = rs.rows[0][1].as_int();
        if model.is_empty() {
            prop_assert!(rs.rows[0][1].is_null());
        } else {
            prop_assert_eq!(got_sum, Some(sum));
        }
    }

    /// Rolling back any suffix of operations restores the exact state.
    #[test]
    fn rollback_is_a_perfect_inverse(
        committed in proptest::collection::vec(arb_op(), 0..25),
        rolled_back in proptest::collection::vec(arb_op(), 1..25),
    ) {
        let db = fresh();
        let mut model = BTreeMap::new();
        for op in &committed {
            apply(&db, &mut model, op);
        }
        // Run a batch inside one transaction, then roll it back.
        {
            let mut txn = db.begin().expect("begins");
            for op in &rolled_back {
                let sql = match op {
                    Op::Insert { id, v } => format!("INSERT INTO t VALUES ({id}, {v})"),
                    Op::Update { id, v } => format!("UPDATE t SET v = {v} WHERE id = {id}"),
                    Op::Delete { id } => format!("DELETE FROM t WHERE id = {id}"),
                    Op::AddDelta { id, d } => {
                        format!("UPDATE t SET v = v + {d} WHERE id = {id}")
                    }
                };
                let _ = txn.execute(&sql); // duplicate-PK failures are fine
            }
            txn.rollback().expect("rolls back");
        }
        assert_matches_model(&db, &model);
    }

    /// Secondary indexes return exactly what a full scan returns.
    #[test]
    fn index_agrees_with_scan(values in proptest::collection::vec((0i64..30, 0i64..5), 1..40)) {
        let db = Database::new(EngineProfile::h2());
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp INT, v INT)").expect("ddl");
        db.execute("CREATE INDEX by_grp ON t (grp)").expect("index");
        for (next_id, (id_hint, grp)) in values.iter().enumerate() {
            let _ = db.execute(&format!(
                "INSERT INTO t VALUES ({next_id}, {grp}, {id_hint})"
            ));
        }
        for grp in 0..5 {
            let indexed = db
                .execute(&format!("SELECT id FROM t WHERE grp = {grp} ORDER BY id"))
                .expect("indexed read");
            // Force a scan by using a predicate the planner cannot index.
            let scanned = db
                .execute(&format!("SELECT id FROM t WHERE grp + 0 = {grp} ORDER BY id"))
                .expect("scan read");
            prop_assert_eq!(indexed.rows, scanned.rows);
        }
    }

    /// snapshot → ~50 KB batches → wire → restore is lossless.
    #[test]
    fn state_transfer_is_lossless(
        rows in proptest::collection::vec((any::<i16>(), "[a-z]{0,12}", any::<bool>()), 0..50),
        batch_bytes in 32usize..4096,
    ) {
        let db = Database::new(EngineProfile::hsqldb());
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT, r REAL)").expect("ddl");
        for (id, (v, name, neg)) in rows.iter().enumerate() {
            let r = if *neg { -0.5 } else { 1.25 } * f64::from(*v);
            db.execute(&format!("INSERT INTO t VALUES ({id}, '{name}', {r})")).expect("insert");
        }
        let snap = db.snapshot();
        let wire: Vec<_> = snap.to_batches(batch_bytes).iter().map(RowBatch::encode).collect();
        let back: Result<Vec<RowBatch>, _> = wire.into_iter().map(RowBatch::decode).collect();
        let restored = Snapshot::from_batches(&back.expect("decodes")).expect("reassembles");
        let dst = Database::new(EngineProfile::derby());
        dst.restore(&restored).expect("restores");
        prop_assert_eq!(dst.table_len("t"), rows.len());
        let a = db.execute("SELECT id, name, r FROM t ORDER BY id").expect("reads");
        let b = dst.execute("SELECT id, name, r FROM t ORDER BY id").expect("reads");
        prop_assert_eq!(a.rows, b.rows);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_total_on_garbage(input in "[ -~]{0,80}") {
        let _ = shadowdb_sqldb::sql::parse(&input);
    }

    /// Parse → execute of generated predicates matches direct evaluation.
    #[test]
    fn where_clauses_filter_correctly(threshold in -100i64..100) {
        let db = fresh();
        for i in 0..20 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i * 10 - 100)).expect("ins");
        }
        let rs = db
            .execute(&format!("SELECT id FROM t WHERE v >= {threshold} AND NOT id = 3"))
            .expect("reads");
        let got: Vec<i64> = rs.rows.iter().map(|r| r[0].as_int().expect("int")).collect();
        let want: Vec<i64> = (0..20)
            .filter(|i| i * 10 - 100 >= threshold && *i != 3)
            .collect();
        prop_assert_eq!(got, want);
    }
}

/// Concurrent disjoint-row writers on a row-locking engine never abort and
/// never lose updates (a sanity check of the real lock manager under real
/// threads).
#[test]
fn concurrent_row_writers_are_linearizable() {
    let db = Database::new(EngineProfile::innodb());
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        .expect("ddl");
    for i in 0..8 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, 0)"))
            .expect("insert");
    }
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let db = db.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    db.execute(&format!("UPDATE t SET v = v + 1 WHERE id = {i}"))
                        .expect("no aborts on disjoint rows");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("finishes");
    }
    let rs = db.execute("SELECT SUM(v) FROM t").expect("sums");
    assert_eq!(rs.rows[0][0], SqlValue::Int(8 * 50));
}

/// Table-locking engines serialize concurrent writers without losing
/// updates either (they just wait or abort; committed work is correct).
#[test]
fn concurrent_table_writers_do_not_lose_committed_updates() {
    let db = Database::new(EngineProfile::h2());
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        .expect("ddl");
    db.execute("INSERT INTO t VALUES (0, 0)").expect("insert");
    let committed = std::sync::Arc::new(std::sync::atomic::AtomicI64::new(0));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let db = db.clone();
            let committed = committed.clone();
            std::thread::spawn(move || {
                for _ in 0..40 {
                    if db.execute("UPDATE t SET v = v + 1 WHERE id = 0").is_ok() {
                        committed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("finishes");
    }
    let rs = db.execute("SELECT v FROM t").expect("reads");
    assert_eq!(
        rs.rows[0][0],
        SqlValue::Int(committed.load(std::sync::atomic::Ordering::Relaxed)),
        "value reflects exactly the committed updates"
    );
}
