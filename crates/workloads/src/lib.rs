//! Benchmark workloads: the bank micro-benchmark and TPC-C.
//!
//! Sec. IV-B evaluates ShadowDB with two workloads:
//!
//! * a **micro-benchmark** over "a database of bank accounts, each having
//!   an identifier, an owner, and a balance", 50 000 rows of 16 bytes,
//!   where update transactions "deposit money on a randomly selected
//!   account" — [`bank`];
//! * **TPC-C** configured with one warehouse, all five transaction types —
//!   [`tpcc`].
//!
//! Transactions are *stored procedures*: a client submits a
//! [`TxnRequest`] ("submitting a transaction T involves sending T's type
//! and its parameters to a server"), and every replica executes it
//! deterministically against its local database. Requests encode to and
//! from the untyped [`Value`](shadowdb_eventml::Value) universe for
//! transport through the broadcast service.

pub mod bank;
pub mod kv;
pub mod shard;
pub mod tpcc;
pub mod txn;

pub use kv::{KvGen, KvOptions};
pub use shard::{ShardMap, TwoPcRecord, TxnId};
pub use txn::{apply_group, TxnOutcome, TxnRequest};
